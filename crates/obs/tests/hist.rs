//! Histogram correctness suite: quantiles against a sorted reference on
//! deterministic and xorshift-seeded inputs, bucket-boundary edge cases,
//! merge associativity, and lossless concurrent recording.

use obs::{Histogram, SUB_BITS, SUB_BUCKETS};
use std::sync::Arc;

/// Reference quantile: the `ceil(q*n)`-th smallest sample of a sorted slice.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

/// Maximum value the histogram may report for a sample `v`: the upper bound
/// of its log-linear bucket, i.e. within one sub-bucket width above `v`.
fn allowed_upper(v: u64) -> u64 {
    if v < 2 * SUB_BUCKETS {
        v
    } else {
        v.saturating_add(v >> SUB_BITS)
    }
}

fn check_against_reference(samples: &[u64]) {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
        let got = h.quantile(q);
        let want = reference_quantile(&sorted, q);
        assert!(
            got >= want && got <= allowed_upper(want),
            "q={q}: got {got}, reference {want} (allowed up to {})",
            allowed_upper(want)
        );
    }
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(
        h.sum(),
        samples
            .iter()
            .copied()
            .reduce(|a, b| a.wrapping_add(b))
            .unwrap_or(0)
    );
    assert_eq!(h.max(), sorted.last().copied().unwrap_or(0));
}

#[test]
fn quantiles_match_sorted_reference_deterministic() {
    // Uniform ramp, small exact range.
    check_against_reference(&(0..1000u64).collect::<Vec<_>>());
    // Heavily skewed: many tiny values, a few huge outliers.
    let mut skewed: Vec<u64> = vec![3; 10_000];
    skewed.extend([1_000_000, 2_000_000, u64::MAX / 2]);
    check_against_reference(&skewed);
    // Constant stream.
    check_against_reference(&vec![77u64; 500]);
    // Single sample.
    check_against_reference(&[123_456_789]);
}

#[test]
fn quantiles_match_sorted_reference_xorshift() {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // A few magnitude regimes: full-range, microsecond-scale, sub-octave.
    for modulus in [u64::MAX, 10_000_000, 1_000, 64] {
        let samples: Vec<u64> = (0..20_000).map(|_| next() % modulus).collect();
        check_against_reference(&samples);
    }
}

#[test]
fn bucket_boundaries_are_tight() {
    // Values below two octaves (0..2*SUB_BUCKETS) are recorded exactly.
    for v in 0..(2 * SUB_BUCKETS) {
        let h = Histogram::new();
        h.record(v);
        assert_eq!(h.quantile(0.5), v, "sub-bucket value {v} must be exact");
    }
    // Powers of two are bucket lower bounds: reported value stays within one
    // sub-bucket width even at the extremes.
    for shift in SUB_BITS + 1..64 {
        for v in [1u64 << shift, (1u64 << shift) - 1, (1u64 << shift) + 1] {
            let h = Histogram::new();
            h.record(v);
            let got = h.quantile(1.0);
            assert!(got >= v && got <= allowed_upper(v), "v={v} got={got}");
        }
    }
    // The top of the range is representable.
    let h = Histogram::new();
    h.record(u64::MAX);
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.max(), u64::MAX);
}

#[test]
fn merge_is_associative_and_matches_concatenation() {
    let streams: [Vec<u64>; 3] = [
        (0..500).map(|i| i * 7).collect(),
        (0..300).map(|i| 1_000_000 + i * 13).collect(),
        vec![42; 200],
    ];
    let hists: Vec<Histogram> = streams
        .iter()
        .map(|s| {
            let h = Histogram::new();
            for &v in s {
                h.record(v);
            }
            h
        })
        .collect();

    // (a + b) + c
    let left = Histogram::new();
    left.merge(&hists[0]);
    left.merge(&hists[1]);
    left.merge(&hists[2]);
    // a + (b + c)
    let bc = Histogram::new();
    bc.merge(&hists[1]);
    bc.merge(&hists[2]);
    let right = Histogram::new();
    right.merge(&hists[0]);
    right.merge(&bc);
    // Direct recording of the concatenated stream.
    let direct = Histogram::new();
    for s in &streams {
        for &v in s {
            direct.record(v);
        }
    }

    for h in [&left, &right] {
        assert_eq!(h.snapshot(), direct.snapshot());
    }
}

#[test]
fn concurrent_record_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ t;
                for _ in 0..PER_THREAD {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    h.record(state % 1_000_000);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    assert_eq!(h.count(), THREADS * PER_THREAD);
    // The bucket walk must agree with the aggregate count: quantile(1.0)
    // internally sums every bucket, so a mismatch would surface as a panic or
    // an impossible value here.
    assert!(h.quantile(1.0) >= h.quantile(0.5));
    assert!(h.max() < 1_000_000 + (1_000_000 >> SUB_BITS));
}
