//! Named metric registry with Prometheus text-exposition rendering.
//!
//! A [`Registry`] owns every counter, gauge and histogram by
//! `(family name, label set)` and renders them in the Prometheus text format
//! (counters as `counter`, histograms as `summary` with fixed quantiles).
//! Registration is idempotent: asking for an existing `(name, labels)` pair
//! returns a handle to the *same* underlying metric, so a store that is
//! replaced at runtime keeps its counter continuity.

use std::fmt::Write as _;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

use crate::hist::Histogram;

/// A monotonically increasing counter handle.
///
/// Dereferences to the underlying [`AtomicU64`], so existing code holding
/// `&AtomicU64` accessors keeps working unchanged after a field migrates to
/// `Counter`.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (starts at zero).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::detached()
    }
}

impl Deref for Counter {
    type Target = AtomicU64;
    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// A gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (starts at 0.0).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::detached()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    /// Multiplier applied to raw histogram values when rendering (e.g.
    /// `1e-9` renders nanosecond samples as seconds).
    scale: f64,
    metric: Metric,
}

/// Quantiles rendered for every histogram family.
pub const RENDERED_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// A registry of named metrics, rendered on demand.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.read().unwrap();
        f.debug_struct("Registry")
            .field("metrics", &entries.len())
            .finish()
    }
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lookup<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: impl Fn(&Metric) -> Option<T>,
    ) -> Option<T> {
        let entries = self.entries.read().unwrap();
        entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((k0, v0), (k1, v1))| k0 == k1 && v0 == v1)
            })
            .and_then(|e| pick(&e.metric))
    }

    /// Register (or fetch) a counter. `name` should follow Prometheus
    /// conventions and end in `_total`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        if let Some(c) = self.lookup(name, labels, |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        }) {
            return c;
        }
        let c = Counter::detached();
        self.push(name, help, labels, 1.0, Metric::Counter(c.clone()));
        c
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        if let Some(g) = self.lookup(name, labels, |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        }) {
            return g;
        }
        let g = Gauge::detached();
        self.push(name, help, labels, 1.0, Metric::Gauge(g.clone()));
        g
    }

    /// Register (or fetch) a histogram. Raw recorded values are multiplied by
    /// `scale` at render time (pass `1e-9` for nanosecond samples rendered as
    /// seconds, `1.0` for dimensionless values).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Arc<Histogram> {
        if let Some(h) = self.lookup(name, labels, |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        }) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        self.push(name, help, labels, scale, Metric::Histogram(h.clone()));
        h
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], scale: f64, metric: Metric) {
        let mut entries = self.entries.write().unwrap();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            scale,
            metric,
        });
    }

    /// Every distinct metric family name currently registered, in first-seen
    /// order (used by the docs-catalog lint).
    pub fn families(&self) -> Vec<String> {
        let entries = self.entries.read().unwrap();
        let mut out: Vec<String> = Vec::new();
        for e in entries.iter() {
            if !out.iter().any(|n| n == &e.name) {
                out.push(e.name.clone());
            }
        }
        out
    }

    /// Render every metric in the Prometheus text-exposition format.
    ///
    /// Counters render as `counter` families, gauges as `gauge`, histograms
    /// as `summary` families (quantiles 0.5/0.9/0.99/0.999 plus `_sum`,
    /// `_count` and a companion `_max` gauge). `# HELP`/`# TYPE` headers are
    /// emitted once per family, before its first sample.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.read().unwrap();
        let mut out = String::new();
        let mut done: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if done.contains(&e.name.as_str()) {
                continue;
            }
            done.push(&e.name);
            let family: Vec<&Entry> = entries.iter().filter(|x| x.name == e.name).collect();
            render_family(&mut out, &e.name, &family);
        }
        out
    }
}

fn render_family(out: &mut String, name: &str, family: &[&Entry]) {
    let kind = match family[0].metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "summary",
    };
    let _ = writeln!(out, "# HELP {name} {}", escape_help(&family[0].help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for e in family {
        match &e.metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{name}{} {}", label_str(&e.labels, None), c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    label_str(&e.labels, None),
                    fmt_f64(g.get())
                );
            }
            Metric::Histogram(h) => {
                for q in RENDERED_QUANTILES {
                    let v = h.quantile(q) as f64 * e.scale;
                    let labels = label_str(&e.labels, Some(q));
                    let _ = writeln!(out, "{name}{labels} {}", fmt_f64(v));
                }
                let ls = label_str(&e.labels, None);
                let _ = writeln!(out, "{name}_sum{ls} {}", fmt_f64(h.sum() as f64 * e.scale));
                let _ = writeln!(out, "{name}_count{ls} {}", h.count());
                let _ = writeln!(out, "{name}_max{ls} {}", fmt_f64(h.max() as f64 * e.scale));
            }
        }
    }
}

fn label_str(labels: &[(String, String)], quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{}\"", fmt_f64(q));
    }
    out.push('}');
    out
}

fn fmt_f64(v: f64) -> String {
    // Prometheus accepts any Go-parseable float; Rust's shortest-roundtrip
    // `{}` output is compatible. Keep integers integral for readability.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_registration_shares_state() {
        let r = Registry::new();
        let a = r.counter("pbs_test_total", "help", &[("store", "s1")]);
        let b = r.counter("pbs_test_total", "help", &[("store", "s1")]);
        a.inc(3);
        b.inc(4);
        assert_eq!(a.get(), 7);
        // Different label set => different counter.
        let c = r.counter("pbs_test_total", "help", &[("store", "s2")]);
        assert_eq!(c.get(), 0);
        assert_eq!(r.families(), vec!["pbs_test_total".to_string()]);
    }

    #[test]
    fn renders_prometheus_text() {
        let r = Registry::new();
        r.counter("pbs_x_total", "Things.", &[]).inc(5);
        r.gauge("pbs_g", "A gauge.", &[("store", "default")])
            .set(2.5);
        let h = r.histogram("pbs_lat_seconds", "Latency.", &[], 1e-9);
        h.record(1_000_000); // 1ms in ns
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE pbs_x_total counter"), "{text}");
        assert!(text.contains("pbs_x_total 5"), "{text}");
        assert!(text.contains("pbs_g{store=\"default\"} 2.5"), "{text}");
        assert!(text.contains("# TYPE pbs_lat_seconds summary"), "{text}");
        assert!(text.contains("pbs_lat_seconds_count 1"), "{text}");
        assert!(text.contains("quantile=\"0.5\""), "{text}");
    }
}
