//! Structured, leveled, sampled tracing.
//!
//! One global tracer (installed once via [`init`]) formats events either as
//! `key=value` text lines or as one JSON object per line, both written to
//! stderr in a single `write` so concurrent sessions never interleave
//! mid-line. Per-session sampling is deterministic in the session id, so all
//! events of one session are kept or dropped together and a given id traces
//! identically across runs.

use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Output encoding for trace lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `ts=… level=… event=… key=value` lines.
    Text,
    /// One JSON object per line.
    Json,
}

/// Severity of a trace event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or protocol-violating conditions.
    Error,
    /// Degraded-but-continuing conditions (evictions, fallbacks).
    Warn,
    /// Session lifecycle and state-machine transitions.
    Info,
    /// High-volume per-frame detail.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A typed field value attached to a trace event.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// Tracer configuration passed to [`init`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Output encoding.
    pub format: TraceFormat,
    /// Maximum level emitted (events above this severity are dropped).
    pub level: Level,
    /// Fraction of sessions traced, `0.0..=1.0`. Non-session events (no id)
    /// are never sampled away.
    pub sample: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            format: TraceFormat::Text,
            level: Level::Info,
            sample: 1.0,
        }
    }
}

struct Tracer {
    config: TraceConfig,
    threshold: u64,
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// Install the global tracer. Returns `false` if one was already installed
/// (the first installation wins; later calls are ignored).
pub fn init(config: TraceConfig) -> bool {
    let sample = config.sample.clamp(0.0, 1.0);
    // Sessions whose mixed id falls below the threshold are traced.
    let threshold = if sample >= 1.0 {
        u64::MAX
    } else {
        (sample * u64::MAX as f64) as u64
    };
    TRACER.set(Tracer { config, threshold }).is_ok()
}

/// Whether any tracer is installed and accepts events at `level`.
#[inline]
pub fn enabled(level: Level) -> bool {
    match TRACER.get() {
        Some(t) => level <= t.config.level,
        None => false,
    }
}

/// SplitMix64 finalizer: decorrelates sequential session ids before the
/// sampling comparison.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Whether a given session id is kept by the configured sample rate.
/// Deterministic: the same id gives the same answer for the life of the
/// process. Returns `false` when no tracer is installed.
#[inline]
pub fn sampled(session_id: u64) -> bool {
    match TRACER.get() {
        Some(t) => t.threshold == u64::MAX || mix(session_id) <= t.threshold,
        None => false,
    }
}

/// Emit one trace event if the tracer is installed, `level` passes, and (for
/// session events) the session id passes sampling.
pub fn event(
    level: Level,
    component: &str,
    session: Option<u64>,
    name: &str,
    fields: &[(&str, Value<'_>)],
) {
    let Some(t) = TRACER.get() else { return };
    if level > t.config.level {
        return;
    }
    if let Some(id) = session {
        if !sampled(id) {
            return;
        }
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs_f64();
    let line = format_event(t.config.format, ts, level, component, session, name, fields);
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

/// Pure formatter behind [`event`], exposed for tests.
pub fn format_event(
    format: TraceFormat,
    ts: f64,
    level: Level,
    component: &str,
    session: Option<u64>,
    name: &str,
    fields: &[(&str, Value<'_>)],
) -> String {
    let mut out = String::new();
    match format {
        TraceFormat::Text => {
            out.push_str(&format!(
                "ts={ts:.3} level={} component={component} event={name}",
                level.as_str()
            ));
            if let Some(id) = session {
                out.push_str(&format!(" session={id}"));
            }
            for (k, v) in fields {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                match v {
                    Value::U64(x) => out.push_str(&x.to_string()),
                    Value::I64(x) => out.push_str(&x.to_string()),
                    Value::F64(x) => out.push_str(&format!("{x:.6}")),
                    Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
                    Value::Str(s) => {
                        if s.contains([' ', '"', '=']) {
                            out.push_str(&format!("{:?}", s));
                        } else {
                            out.push_str(s);
                        }
                    }
                }
            }
        }
        TraceFormat::Json => {
            out.push_str(&format!(
                "{{\"ts\":{ts:.3},\"level\":\"{}\",\"component\":\"{}\",\"event\":\"{}\"",
                level.as_str(),
                json_escape(component),
                json_escape(name)
            ));
            if let Some(id) = session {
                out.push_str(&format!(",\"session\":{id}"));
            }
            for (k, v) in fields {
                out.push_str(&format!(",\"{}\":", json_escape(k)));
                match v {
                    Value::U64(x) => out.push_str(&x.to_string()),
                    Value::I64(x) => out.push_str(&x.to_string()),
                    Value::F64(x) => {
                        if x.is_finite() {
                            out.push_str(&format!("{x}"));
                        } else {
                            out.push_str("null");
                        }
                    }
                    Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
                    Value::Str(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
                }
            }
            out.push('}');
        }
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_stable() {
        let line = format_event(
            TraceFormat::Text,
            12.5,
            Level::Info,
            "session",
            Some(7),
            "phase",
            &[("from", Value::Str("handshake")), ("bytes", Value::U64(42))],
        );
        assert_eq!(
            line,
            "ts=12.500 level=info component=session event=phase session=7 from=handshake bytes=42"
        );
    }

    #[test]
    fn json_format_escapes() {
        let line = format_event(
            TraceFormat::Json,
            1.0,
            Level::Warn,
            "store",
            None,
            "evict",
            &[("name", Value::Str("a\"b"))],
        );
        assert_eq!(
            line,
            "{\"ts\":1.000,\"level\":\"warn\",\"component\":\"store\",\"event\":\"evict\",\"name\":\"a\\\"b\"}"
        );
    }
}
