//! Std-only telemetry substrate for the PBS reproduction.
//!
//! Three pieces, all dependency-free and safe to call from hot paths:
//!
//! * [`Histogram`] — a lock-free log-linear latency histogram (atomic
//!   buckets, ~3% relative quantile error, full `u64` range) with
//!   `record`/`merge`/`quantile` plus count/sum/max aggregates.
//! * [`Registry`] — a registry of named [`Counter`]s, [`Gauge`]s and
//!   histograms keyed by `(family, labels)`, rendered on demand in the
//!   Prometheus text-exposition format (histograms as summaries).
//! * [`trace`] — structured leveled session tracing: one global tracer,
//!   `key=value` text or JSON lines, deterministic per-session sampling.
//!
//! # Example
//!
//! ```
//! use obs::Registry;
//! use std::time::Duration;
//!
//! let reg = Registry::new();
//! let sessions = reg.counter("pbs_sessions_total", "Sessions accepted.", &[]);
//! let latency = reg.histogram("pbs_apply_seconds", "Apply latency.", &[], 1e-9);
//!
//! sessions.inc(1);
//! latency.record_duration(Duration::from_micros(250));
//!
//! let text = reg.render_prometheus();
//! assert!(text.contains("pbs_sessions_total 1"));
//! assert!(text.contains("# TYPE pbs_apply_seconds summary"));
//! assert_eq!(latency.count(), 1);
//! assert!(latency.quantile(0.5) >= latency.max()); // bucket upper bound
//! ```

#![warn(missing_docs)]

mod hist;
mod registry;
pub mod trace;

pub use hist::{HistSnapshot, Histogram, NUM_BUCKETS, SUB_BITS, SUB_BUCKETS};
pub use registry::{Counter, Gauge, Registry, RENDERED_QUANTILES};
