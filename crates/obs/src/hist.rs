//! Lock-free log-linear latency histogram.
//!
//! The layout follows the HdrHistogram idea: values below [`SUB_BUCKETS`]
//! land in exact unit-width buckets; above that, each power-of-two octave is
//! split into [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantile error at `1/SUB_BUCKETS` (~3.1%) while covering the full `u64`
//! range in under 2k buckets (~15 KiB of atomics per histogram).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave (values below this are recorded exactly).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count: octaves 5..=63 contribute 32 buckets each on top of
/// the 64 exact buckets covering `0..64`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = msb - SUB_BITS + 1;
        let sub = (v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
        (octave as usize) * SUB_BUCKETS as usize + sub as usize
    }
}

/// Largest value that maps into bucket `index` (what [`Histogram::quantile`]
/// reports for any sample landing there).
#[inline]
fn bucket_upper_bound(index: usize) -> u64 {
    let octave = index as u64 >> SUB_BITS;
    let sub = index as u64 & (SUB_BUCKETS - 1);
    if octave == 0 {
        sub
    } else {
        let width = 1u64 << (octave - 1);
        let lower = (SUB_BUCKETS + sub) << (octave - 1);
        lower + (width - 1)
    }
}

/// A fixed-size, lock-free latency histogram.
///
/// `record` is wait-free (one relaxed `fetch_add` per atomic touched) and safe
/// to call from any number of threads; readers (`quantile`, `snapshot`) walk
/// the buckets without stopping writers, so a concurrent read sees *some*
/// recent state, never a torn count.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Record a [`Duration`] as whole nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Fold every sample of `other` into `self`.
    ///
    /// The operation is associative and commutative up to the bucket
    /// resolution: merging histograms yields exactly the histogram of the
    /// concatenated sample streams.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Relaxed);
            if n > 0 {
                dst.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// The value at quantile `q` (clamped to `0.0..=1.0`).
    ///
    /// Returns the upper bound of the bucket containing the `ceil(q·count)`-th
    /// smallest sample — exact for values below [`SUB_BUCKETS`]`·2`, within
    /// ~3.1% above. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// A consistent point-in-time copy of the aggregate statistics.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Reset every bucket and aggregate to zero (test helper; not atomic with
    /// respect to concurrent writers).
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Point-in-time aggregate view of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds() {
        // Every value maps to a bucket whose upper bound is >= the value and
        // within the documented relative error.
        for shift in 0..64 {
            for near in [0u64, 1, 2, 3] {
                let v = (1u64 << shift).saturating_add(near);
                let idx = bucket_index(v);
                let ub = bucket_upper_bound(idx);
                assert!(ub >= v, "v={v} idx={idx} ub={ub}");
                // Relative error bound: ub <= v * (1 + 1/32).
                assert!(ub as u128 <= v as u128 + (v as u128 >> SUB_BITS) + 1);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn exact_below_two_octaves() {
        // Values 0..64 occupy unit-width buckets: quantiles are exact.
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.sum(), (0..64).sum::<u64>());
    }
}
