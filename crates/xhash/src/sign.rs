//! A 4-wise independent ±1 hash family for the Tug-of-War estimator.
//!
//! §6 of the paper requires, per Fact 1 (Appendix A), a family `F` of
//! *four-wise independent* hash functions mapping universe elements to
//! `{+1, -1}` uniformly. We realize it the classical way: a random degree-3
//! polynomial over the prime field GF(p) with p = 2^61 - 1 (a Mersenne
//! prime, so reduction is two shifts and an add), evaluated at the element
//! and mapped to ±1 by one output bit. Degree-3 polynomial hashing over a
//! prime field is 4-wise independent by the standard Vandermonde argument,
//! which is exactly the property the variance proof of Appendix A uses.

/// The Mersenne prime 2^61 - 1 used as the modulus of the hash family.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// One member of the 4-wise independent ±1 hash family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignHasher {
    /// Polynomial coefficients a0 + a1 x + a2 x^2 + a3 x^3 over GF(p).
    coeffs: [u64; 4],
}

#[inline]
fn mod_p(x: u128) -> u64 {
    // Reduce a < p^2 value modulo 2^61 - 1.
    let lo = (x & MERSENNE_P as u128) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo + hi;
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    // One more fold covers the carry from the addition above.
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    mod_p((a as u128) * (b as u128))
}

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

impl SignHasher {
    /// Draw a member of the family from a 64-bit seed.
    ///
    /// The four coefficients are derived from the seed with the crate's
    /// xxHash64; drawing fresh seeds yields (for all practical purposes)
    /// independent members of the family, which is how the ToW estimator
    /// builds its ℓ independent sketches.
    pub fn from_seed(seed: u64) -> Self {
        let mut coeffs = [0u64; 4];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = crate::xx::xxhash64_u64(i as u64, seed ^ 0xA076_1D64_78BD_642F) % MERSENNE_P;
        }
        // The leading coefficient being zero only reduces the degree; it does
        // not break 4-wise independence of the first four coefficients being
        // uniform, so no rejection is needed.
        SignHasher { coeffs }
    }

    /// Construct from explicit polynomial coefficients (reduced mod p).
    pub fn from_coeffs(coeffs: [u64; 4]) -> Self {
        SignHasher {
            coeffs: [
                coeffs[0] % MERSENNE_P,
                coeffs[1] % MERSENNE_P,
                coeffs[2] % MERSENNE_P,
                coeffs[3] % MERSENNE_P,
            ],
        }
    }

    /// Evaluate the degree-3 polynomial at `x` over GF(p).
    #[inline]
    fn poly_eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// The ±1 hash value of `element`.
    #[inline]
    pub fn sign(&self, element: u64) -> i64 {
        // Use the parity of the low bit of the polynomial value. The value is
        // (essentially) uniform over GF(p), so the bit is balanced.
        if self.poly_eval(element) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Sum of the ±1 hash values of four elements.
    ///
    /// Runs the four degree-3 Horner chains interleaved so their modular
    /// multiplications are independent and can overlap in the pipeline; the
    /// batched ToW insert uses this to amortize one pass over the sketch
    /// bank across four inserted elements. Exactly equivalent to summing
    /// four [`SignHasher::sign`] calls.
    #[inline]
    pub fn sign_sum4(&self, elements: &[u64; 4]) -> i64 {
        let xs = [
            elements[0] % MERSENNE_P,
            elements[1] % MERSENNE_P,
            elements[2] % MERSENNE_P,
            elements[3] % MERSENNE_P,
        ];
        let mut acc = [0u64; 4];
        for &c in self.coeffs.iter().rev() {
            for k in 0..4 {
                acc[k] = add_mod(mul_mod(acc[k], xs[k]), c);
            }
        }
        acc.iter().map(|&a| 1 - 2 * (a & 1) as i64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_is_plus_or_minus_one() {
        let h = SignHasher::from_seed(123);
        for e in 0..1000u64 {
            let s = h.sign(e);
            assert!(s == 1 || s == -1);
        }
    }

    #[test]
    fn sign_sum4_matches_scalar_signs() {
        let h = SignHasher::from_seed(77);
        let mut x = 1u64;
        for _ in 0..500 {
            let quad = [0u64; 4].map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            });
            let scalar: i64 = quad.iter().map(|&e| h.sign(e)).sum();
            assert_eq!(h.sign_sum4(&quad), scalar, "mismatch on {quad:?}");
        }
    }

    #[test]
    fn deterministic() {
        let h1 = SignHasher::from_seed(5);
        let h2 = SignHasher::from_seed(5);
        for e in [0u64, 7, 1 << 40, u64::MAX] {
            assert_eq!(h1.sign(e), h2.sign(e));
        }
    }

    #[test]
    fn signs_are_balanced() {
        let h = SignHasher::from_seed(42);
        let n = 100_000u64;
        let sum: i64 = (0..n).map(|e| h.sign(e)).sum();
        // Expected |sum| is on the order of sqrt(n) ~ 316; allow a wide margin.
        assert!(sum.abs() < 2_000, "sign sum {sum} too far from zero");
    }

    #[test]
    fn pairwise_products_are_balanced() {
        // A weak empirical check of independence: over many hashers, the
        // product of signs of two fixed distinct elements averages near 0.
        let (a, b) = (17u64, 3_000_000_007u64);
        let trials = 20_000;
        let sum: i64 = (0..trials)
            .map(|s| {
                let h = SignHasher::from_seed(s);
                h.sign(a) * h.sign(b)
            })
            .sum();
        assert!(
            sum.abs() < 1_000,
            "pairwise product sum {sum} suggests correlation"
        );
    }

    #[test]
    fn fourwise_products_are_balanced() {
        let elems = [2u64, 99, 123_456, 987_654_321];
        let trials = 20_000;
        let sum: i64 = (0..trials)
            .map(|s: u64| {
                let h = SignHasher::from_seed(s.wrapping_mul(0x9E3779B97F4A7C15));
                elems.iter().map(|&e| h.sign(e)).product::<i64>()
            })
            .sum();
        assert!(
            sum.abs() < 1_000,
            "4-wise product sum {sum} suggests correlation"
        );
    }

    #[test]
    fn mersenne_reduction_is_correct() {
        for &(a, b) in &[
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (123456789, 987654321),
            (0, 5),
        ] {
            let expect = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mul_mod(a, b), expect);
        }
    }
}
