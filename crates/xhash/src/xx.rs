//! A from-scratch implementation of the xxHash64 algorithm.
//!
//! The paper's reference implementation uses the xxHash C library for all of
//! its hash functions; this module reproduces the 64-bit variant so the rest
//! of the workspace has a fast, seedable, well-distributed hash without an
//! external dependency. The implementation follows the published xxHash64
//! specification (prime constants, 4-lane stripe processing, avalanche
//! finalization) and is verified against the reference test vectors.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// One-shot xxHash64 of a byte slice with the given seed.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= read_u32(rest).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }
    avalanche(h)
}

/// Convenience: hash a `u64` key (little-endian bytes) with a seed.
///
/// This is the straight-line specialization of [`xxhash64`] for an exactly
/// 8-byte input: the stripe loop, the 4-byte tail and the per-byte tail all
/// vanish, leaving one round, one rotate-multiply-add and the avalanche.
/// Byte-for-byte identical to `xxhash64(&key.to_le_bytes(), seed)` (checked
/// by a unit test), but small enough to inline into the IBLT / partition /
/// estimator hot loops, which the generic byte-slice routine is not.
#[inline]
pub fn xxhash64_u64(key: u64, seed: u64) -> u64 {
    let mut h = seed.wrapping_add(PRIME64_5).wrapping_add(8);
    h ^= round(0, key);
    h = h
        .rotate_left(27)
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4);
    avalanche(h)
}

/// Streaming xxHash64 hasher.
///
/// Produces exactly the same digest as [`xxhash64`] over the concatenation of
/// all `update` calls. Also implements [`std::hash::Hasher`] so it can be
/// plugged into standard collections when a seeded hasher is wanted.
#[derive(Debug, Clone)]
pub struct XxHash64 {
    seed: u64,
    total_len: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    v4: u64,
    buf: [u8; 32],
    buf_len: usize,
}

impl XxHash64 {
    /// Create a streaming hasher with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        XxHash64 {
            seed,
            total_len: 0,
            v1: seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2),
            v2: seed.wrapping_add(PRIME64_2),
            v3: seed,
            v4: seed.wrapping_sub(PRIME64_1),
            buf: [0u8; 32],
            buf_len: 0,
        }
    }

    /// Feed more bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;

        // Fill the pending buffer first.
        if self.buf_len > 0 {
            let need = 32 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 32 {
                let buf = self.buf;
                self.consume_stripe(&buf);
                self.buf_len = 0;
            }
        }
        while data.len() >= 32 {
            let (stripe, tail) = data.split_at(32);
            let mut block = [0u8; 32];
            block.copy_from_slice(stripe);
            self.consume_stripe(&block);
            data = tail;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn consume_stripe(&mut self, stripe: &[u8; 32]) {
        self.v1 = round(self.v1, read_u64(&stripe[0..]));
        self.v2 = round(self.v2, read_u64(&stripe[8..]));
        self.v3 = round(self.v3, read_u64(&stripe[16..]));
        self.v4 = round(self.v4, read_u64(&stripe[24..]));
    }

    /// Finalize and return the 64-bit digest (the hasher can keep being used;
    /// `digest` does not consume the state).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = if self.total_len >= 32 {
            let mut acc = self
                .v1
                .rotate_left(1)
                .wrapping_add(self.v2.rotate_left(7))
                .wrapping_add(self.v3.rotate_left(12))
                .wrapping_add(self.v4.rotate_left(18));
            acc = merge_round(acc, self.v1);
            acc = merge_round(acc, self.v2);
            acc = merge_round(acc, self.v3);
            acc = merge_round(acc, self.v4);
            acc
        } else {
            self.seed.wrapping_add(PRIME64_5)
        };
        h = h.wrapping_add(self.total_len);

        let mut rest = &self.buf[..self.buf_len];
        while rest.len() >= 8 {
            h ^= round(0, read_u64(rest));
            h = h
                .rotate_left(27)
                .wrapping_mul(PRIME64_1)
                .wrapping_add(PRIME64_4);
            rest = &rest[8..];
        }
        if rest.len() >= 4 {
            h ^= read_u32(rest).wrapping_mul(PRIME64_1);
            h = h
                .rotate_left(23)
                .wrapping_mul(PRIME64_2)
                .wrapping_add(PRIME64_3);
            rest = &rest[4..];
        }
        for &byte in rest {
            h ^= (byte as u64).wrapping_mul(PRIME64_5);
            h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        }
        avalanche(h)
    }
}

impl std::hash::Hasher for XxHash64 {
    fn finish(&self) -> u64 {
        self.digest()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random test buffer (prime-squaring byte generator, the same
    /// construction the xxHash reference sanity check uses).
    fn sanity_buffer(len: usize) -> Vec<u8> {
        const PRIME32: u64 = 2654435761;
        let mut byte_gen: u64 = PRIME32;
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            buf.push((byte_gen >> 56) as u8);
            byte_gen = byte_gen.wrapping_mul(byte_gen);
        }
        buf
    }

    #[test]
    fn empty_input_reference_vector() {
        // The widely published xxHash64 digest of the empty input with seed 0.
        assert_eq!(xxhash64(&[], 0), 0xEF46DB3751D8E999);
    }

    #[test]
    fn output_is_well_distributed() {
        // Hash 64k consecutive integers and check bit balance: each of the 64
        // output bits should be set in roughly half the digests.
        let n = 1 << 16;
        let mut ones = [0u32; 64];
        for i in 0..n as u64 {
            let h = xxhash64_u64(i, 0);
            for (b, count) in ones.iter_mut().enumerate() {
                if (h >> b) & 1 == 1 {
                    *count += 1;
                }
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!(
                (0.47..=0.53).contains(&frac),
                "output bit {b} unbalanced: {frac}"
            );
        }
    }

    #[test]
    fn no_collisions_on_small_consecutive_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(xxhash64_u64(i, 9)), "collision at key {i}");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let buf = sanity_buffer(1024);
        for &split in &[0usize, 1, 7, 31, 32, 33, 100, 512, 1024] {
            let mut h = XxHash64::with_seed(77);
            h.update(&buf[..split]);
            h.update(&buf[split..]);
            assert_eq!(h.digest(), xxhash64(&buf, 77), "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let buf = sanity_buffer(333);
        let mut h = XxHash64::with_seed(0);
        for chunk in buf.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.digest(), xxhash64(&buf, 0));
    }

    #[test]
    fn different_seeds_differ() {
        let data = b"parity bitmap sketch";
        assert_ne!(xxhash64(data, 1), xxhash64(data, 2));
    }

    #[test]
    fn u64_helper_consistent() {
        assert_eq!(
            xxhash64_u64(0xDEADBEEF, 7),
            xxhash64(&0xDEADBEEFu64.to_le_bytes(), 7)
        );
    }

    #[test]
    fn u64_specialization_matches_generic_path() {
        // The straight-line 8-byte path must agree with the generic routine
        // for every (key, seed) pattern class: small, large, bit-sparse.
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for i in 0..4096u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            let key = match i % 4 {
                0 => x,
                1 => i,
                2 => 1u64 << (i % 64),
                _ => u64::MAX - i,
            };
            let seed = x.rotate_left(17);
            assert_eq!(
                xxhash64_u64(key, seed),
                xxhash64(&key.to_le_bytes(), seed),
                "mismatch at key={key:#x} seed={seed:#x}"
            );
        }
    }

    #[test]
    fn hasher_trait_impl() {
        use std::hash::Hasher;
        let mut h = XxHash64::with_seed(5);
        h.write(b"hello world, this is a longer message for the hasher");
        assert_eq!(
            h.finish(),
            xxhash64(b"hello world, this is a longer message for the hasher", 5)
        );
    }
}
