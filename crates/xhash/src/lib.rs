//! Seeded hashing substrate for the PBS reproduction.
//!
//! Every scheme in the workspace relies on *consistent* hashing: Alice and
//! Bob must map the same element to the same partition, bin, Bloom-filter
//! position, or ±1 sign, using nothing but a shared seed. This crate provides
//! those hash functions, built from scratch (the paper uses the xxHash
//! library; we re-implement xxHash64 so no external dependency is needed):
//!
//! * [`xxhash64`] / [`XxHash64`] — an xxHash64-compatible 64-bit hash,
//!   one-shot and streaming.
//! * [`PartitionHasher`] — maps a `u64` element to a bin in `0..n` under a
//!   round/group seed. PBS uses a fresh, mutually-independent hash function
//!   per round (§2.4); this is achieved by deriving a new seed per round.
//! * [`SignHasher`] — a 4-wise independent ±1 hash family over the Mersenne
//!   prime `2^61 - 1`, as required by the Tug-of-War estimator (§6, Fact 1).
//! * [`element_checksum`] — the plain-summation set checksum of §2.2.3.

//!
//! # Example
//!
//! ```
//! use xhash::{derive_seed, xxhash64, PartitionHasher, SetChecksum};
//!
//! // Deterministic, label-separated seed derivation.
//! assert_eq!(xxhash64(b"pbs", 1), xxhash64(b"pbs", 1));
//! assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
//!
//! // Partition elements into 1-based bins 1..=n.
//! let hasher = PartitionHasher::new(127, 42);
//! assert!((1..=127).contains(&hasher.position(1234)));
//!
//! // Incrementally maintained additive set checksum.
//! let mut c = SetChecksum::new(32);
//! c.add(5);
//! c.add(9);
//! c.remove(5);
//! assert_eq!(c.value(), xhash::element_checksum(32, [9]));
//! ```

#![warn(missing_docs)]

mod partition;
mod sign;
mod xx;

pub use partition::PartitionHasher;
pub use sign::SignHasher;
pub use xx::{xxhash64, xxhash64_u64, XxHash64};

/// The set checksum `c(S)` of §2.2.3: the sum of all elements viewed as
/// integers, modulo `2^universe_bits` (i.e. modulo `|U|`).
///
/// The checksum of a set is `log|U|` bits long — the same length as one
/// element — and can be updated incrementally as elements are added or
/// removed (`add` to insert, `remove` to delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetChecksum {
    value: u64,
    mask: u64,
}

impl SetChecksum {
    /// Create a zero checksum for a universe of `universe_bits`-bit elements.
    pub fn new(universe_bits: u32) -> Self {
        assert!(
            (1..=64).contains(&universe_bits),
            "universe_bits must be in 1..=64"
        );
        let mask = if universe_bits == 64 {
            u64::MAX
        } else {
            (1u64 << universe_bits) - 1
        };
        SetChecksum { value: 0, mask }
    }

    /// Add an element to the checksummed set.
    #[inline]
    pub fn add(&mut self, element: u64) {
        self.value = self.value.wrapping_add(element) & self.mask;
    }

    /// Remove an element from the checksummed set.
    #[inline]
    pub fn remove(&mut self, element: u64) {
        self.value = self.value.wrapping_sub(element) & self.mask;
    }

    /// Current checksum value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// Compute the checksum of a full set in one pass.
pub fn element_checksum(universe_bits: u32, elements: impl IntoIterator<Item = u64>) -> u64 {
    let mut c = SetChecksum::new(universe_bits);
    for e in elements {
        c.add(e);
    }
    c.value()
}

/// Derive a fresh 64-bit seed from a base seed and a label. Used to obtain
/// the mutually independent hash functions PBS needs per round, per group,
/// and per sub-group without any coordination beyond the base seed.
#[inline]
pub fn derive_seed(base: u64, label: u64) -> u64 {
    xxhash64(&label.to_le_bytes(), base ^ 0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_add_remove_round_trip() {
        let mut c = SetChecksum::new(32);
        c.add(10);
        c.add(0xFFFF_FFFF);
        c.add(7);
        let v = c.value();
        c.add(99);
        c.remove(99);
        assert_eq!(c.value(), v);
        assert!(c.value() < 1u64 << 32);
    }

    #[test]
    fn checksum_equals_sum_mod_universe() {
        let elems = [5u64, 1 << 31, (1 << 32) - 1, 123456789];
        let sum: u64 = elems.iter().fold(0u64, |a, &b| a.wrapping_add(b)) & 0xFFFF_FFFF;
        assert_eq!(element_checksum(32, elems), sum);
    }

    #[test]
    fn checksum_is_order_independent() {
        let a = element_checksum(32, [1u64, 2, 3, 4, 5]);
        let b = element_checksum(32, [5u64, 3, 1, 2, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn checksum_64_bit_universe() {
        let mut c = SetChecksum::new(64);
        c.add(u64::MAX);
        c.add(1);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn derive_seed_varies_with_label_and_base() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1, derive_seed(42, 0));
    }

    #[test]
    #[should_panic(expected = "universe_bits must be in 1..=64")]
    fn checksum_rejects_zero_bits() {
        SetChecksum::new(0);
    }
}
