//! Consistent hash partitioning of elements into bins.
//!
//! PBS partitions a set three times over:
//!
//! 1. into `g` *groups* (PBS-for-large-d, §3),
//! 2. each group into `n` *subsets* / bins (PBS-for-small-d, §2.2.1), with a
//!    fresh independent hash function per round (§2.4),
//! 3. a failed group into 3 *sub-groups* (§3.2).
//!
//! All three are instances of the same primitive: map a `u64` element to a
//! bin index in `0..n` given a seed, such that (a) Alice and Bob agree, and
//! (b) different seeds give (practically) independent mappings. The
//! [`PartitionHasher`] wraps that primitive.

use crate::xx::xxhash64_u64;

/// Maps elements of the universe to bins `0..n` under a fixed seed.
///
/// Bin selection uses the high 64 bits of `hash * n` (Lemire's multiply-shift
/// range reduction), which avoids the slight modulo bias and a division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionHasher {
    seed: u64,
    bins: u64,
}

impl PartitionHasher {
    /// Create a partition hasher over `bins` bins with the given seed.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn new(bins: u64, seed: u64) -> Self {
        assert!(bins > 0, "cannot partition into zero bins");
        PartitionHasher { seed, bins }
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// The seed this hasher was created with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bin index in `0..bins` for `element`.
    #[inline]
    pub fn bin(&self, element: u64) -> u64 {
        let h = xxhash64_u64(element, self.seed);
        (((h as u128) * (self.bins as u128)) >> 64) as u64
    }

    /// Bin index as 1-based position `1..=bins`, the convention the paper
    /// uses for parity-bitmap bit positions (bit positions 1..n map to
    /// nonzero field elements in the BCH sketch).
    #[inline]
    pub fn position(&self, element: u64) -> u64 {
        self.bin(element) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_in_range() {
        let h = PartitionHasher::new(255, 42);
        for e in 0..10_000u64 {
            let b = h.bin(e);
            assert!(b < 255);
            assert_eq!(h.position(e), b + 1);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let h1 = PartitionHasher::new(127, 7);
        let h2 = PartitionHasher::new(127, 7);
        for e in [0u64, 1, 0xFFFF_FFFF, u64::MAX] {
            assert_eq!(h1.bin(e), h2.bin(e));
        }
    }

    #[test]
    fn different_seeds_give_different_partitions() {
        let h1 = PartitionHasher::new(1024, 1);
        let h2 = PartitionHasher::new(1024, 2);
        let differing = (0..1000u64).filter(|&e| h1.bin(e) != h2.bin(e)).count();
        // With 1024 bins the two mappings should disagree almost everywhere.
        assert!(differing > 950, "only {differing} of 1000 elements moved");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let bins = 64u64;
        let h = PartitionHasher::new(bins, 3);
        let n = 64_000u64;
        let mut counts = vec![0u32; bins as usize];
        for e in 0..n {
            counts[h.bin(e) as usize] += 1;
        }
        let expected = (n / bins) as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.15,
                "bin {b} count {c} deviates {dev:.3} from {expected}"
            );
        }
    }

    #[test]
    fn single_bin_maps_everything_to_zero() {
        let h = PartitionHasher::new(1, 99);
        assert_eq!(h.bin(12345), 0);
        assert_eq!(h.bin(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "cannot partition into zero bins")]
    fn zero_bins_panics() {
        PartitionHasher::new(0, 0);
    }
}
