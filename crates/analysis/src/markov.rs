//! The Markov chain of §4 with the Appendix E transition-matrix computation.
//!
//! State `i` of the chain is "there are `i` unreconciled (bad) distinct
//! elements at the start of a round". One round throws those `i` balls
//! uniformly into the `n` bins (subset pairs) using a fresh hash function;
//! balls that land alone are reconciled, balls that collide remain bad. The
//! transition probability `M(i, j)` is therefore the probability that
//! throwing `i` balls into `n` bins leaves exactly `j` balls in multi-ball
//! bins.
//!
//! Appendix E computes `M(i, j)` by splitting state `j` into sub-states
//! `(j, k)` — "`j` bad balls occupying exactly `k` bad bins" — and running a
//! dynamic program over the balls thrown one at a time:
//!
//! ```text
//!   M̃(i, j, k) = (i−j+1)/n · M̃(i−1, j−2, k−1)        (ball joins a good bin)
//!              +        k/n · M̃(i−1, j−1, k)          (ball joins a bad bin)
//!              + (1 − (i−1−j+k)/n) · M̃(i−1, j, k)     (ball opens a new bin)
//! ```
//!
//! with `M̃(0, 0, 0) = 1`.

/// The `(t+1) × (t+1)` transition matrix of the PBS Markov chain for a given
/// bitmap length `n` and BCH capacity `t` (states above `t` would trigger a
/// decoding failure and are excluded from the model, per Appendix D).
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    n: usize,
    t: usize,
    /// Row-major `(t+1) × (t+1)` matrix.
    data: Vec<f64>,
}

impl TransitionMatrix {
    /// Build the transition matrix for `n` bins and maximum state `t`.
    ///
    /// Cost is `O(t³)` floating-point operations (Appendix E), independent of
    /// `n`, so the parameter optimizer can afford to evaluate the whole
    /// `(n, t)` grid.
    pub fn build(n: usize, t: usize) -> Self {
        assert!(n >= 1, "need at least one bin");
        assert!(t >= 1, "need at least one state");
        let nf = n as f64;
        let dim = t + 1;

        // sub[i][j][k]: probability of j bad balls in k bad bins after i throws.
        // Indices j, k <= i <= t.
        let mut sub = vec![vec![vec![0.0f64; dim + 1]; dim + 1]; dim + 1];
        sub[0][0][0] = 1.0;
        for i in 1..=t {
            for j in 0..=i {
                for k in 0..=j {
                    let mut p = 0.0;
                    // Case 1: the i-th ball falls into a previously good bin.
                    // Previous state (i-1, j-2, k-1); good bins there = (i-1)-(j-2) = i-j+1.
                    if j >= 2 && k >= 1 {
                        let good = (i as f64) - (j as f64) + 1.0;
                        if good > 0.0 {
                            p += good / nf * sub[i - 1][j - 2][k - 1];
                        }
                    }
                    // Case 2: the i-th ball falls into one of the k existing bad bins.
                    if j >= 1 {
                        p += (k as f64) / nf * sub[i - 1][j - 1][k];
                    }
                    // Case 3: the i-th ball falls into an empty bin.
                    {
                        let occupied = (i as f64 - 1.0) - (j as f64) + (k as f64);
                        let frac = 1.0 - occupied / nf;
                        if frac > 0.0 {
                            p += frac * sub[i - 1][j][k];
                        }
                    }
                    sub[i][j][k] = p;
                }
            }
        }

        let mut data = vec![0.0f64; dim * dim];
        for i in 0..=t {
            for j in 0..=i.min(t) {
                let total: f64 = (0..=j).map(|k| sub[i][j][k]).sum();
                data[i * dim + j] = total;
            }
        }
        TransitionMatrix { n, t, data }
    }

    /// The bitmap length `n` this matrix was built for.
    pub fn bins(&self) -> usize {
        self.n
    }

    /// The maximum state `t`.
    pub fn max_state(&self) -> usize {
        self.t
    }

    /// Matrix dimension (`t + 1`).
    pub fn dim(&self) -> usize {
        self.t + 1
    }

    /// Entry `M(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.dim() + j]
    }

    /// Compute the matrix power `M^r` (dense, `O(r · t³)`).
    pub fn power(&self, r: u32) -> MatrixPower {
        let dim = self.dim();
        // Start from the identity.
        let mut result = vec![0.0f64; dim * dim];
        for i in 0..dim {
            result[i * dim + i] = 1.0;
        }
        let mut scratch = vec![0.0f64; dim * dim];
        for _ in 0..r {
            for i in 0..dim {
                for j in 0..dim {
                    let mut acc = 0.0;
                    for k in 0..dim {
                        acc += result[i * dim + k] * self.data[k * dim + j];
                    }
                    scratch[i * dim + j] = acc;
                }
            }
            std::mem::swap(&mut result, &mut scratch);
        }
        MatrixPower { dim, data: result }
    }

    /// The single-group success probabilities `Pr[x →r 0]` for every starting
    /// state `x = 0..=t` (Formula (2)): entry `x` of the returned vector is
    /// the probability that `x` bad balls are fully reconciled within `r`
    /// rounds.
    pub fn success_probabilities(&self, r: u32) -> Vec<f64> {
        let p = self.power(r);
        (0..self.dim()).map(|x| p[(x, 0)]).collect()
    }
}

/// A dense power `M^r` of a [`TransitionMatrix`], indexable by `(row, col)`.
#[derive(Debug, Clone)]
pub struct MatrixPower {
    dim: usize,
    data: Vec<f64>,
}

impl std::ops::Index<(usize, usize)> for MatrixPower {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.dim + j]
    }
}

impl MatrixPower {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force M(i, j) by enumerating all n^i throws (tiny cases only).
    fn brute_force(n: usize, i: usize, j: usize) -> f64 {
        let total = (n as u64).pow(i as u32);
        let mut hits = 0u64;
        for code in 0..total {
            let mut c = code;
            let mut bins = vec![0u32; n];
            for _ in 0..i {
                bins[(c % n as u64) as usize] += 1;
                c /= n as u64;
            }
            let bad: u32 = bins.iter().filter(|&&b| b >= 2).sum();
            if bad as usize == j {
                hits += 1;
            }
        }
        hits as f64 / total as f64
    }

    #[test]
    fn matches_brute_force_enumeration() {
        for &(n, t) in &[(4usize, 4usize), (6, 4), (9, 3)] {
            let m = TransitionMatrix::build(n, t);
            for i in 0..=t {
                for j in 0..=t {
                    let expect = brute_force(n, i, j);
                    let got = m.get(i, j);
                    assert!(
                        (expect - got).abs() < 1e-9,
                        "n={n} i={i} j={j}: expected {expect}, got {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn rows_sum_to_one() {
        let m = TransitionMatrix::build(127, 13);
        for i in 0..=13 {
            let sum: f64 = (0..=13).map(|j| m.get(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn state_one_always_succeeds_and_state_zero_is_absorbing() {
        let m = TransitionMatrix::build(255, 10);
        assert!((m.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((m.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(m.get(0, 3).abs() < 1e-12);
        // A single bad ball can never remain bad alone.
        assert!(m.get(3, 1).abs() < 1e-12);
    }

    #[test]
    fn ideal_case_matches_closed_form() {
        // M(d, 0) = ∏_{k=1}^{d-1} (1 - k/n): the §2.2.1 ideal-case probability.
        let n = 255usize;
        let d = 5usize;
        let m = TransitionMatrix::build(n, d);
        let closed: f64 = (1..d).map(|k| 1.0 - k as f64 / n as f64).product();
        assert!((m.get(d, 0) - closed).abs() < 1e-12);
        assert!(
            (closed - 0.96).abs() < 0.005,
            "paper quotes ~0.96, got {closed}"
        );
    }

    #[test]
    fn success_probability_increases_with_rounds() {
        let m = TransitionMatrix::build(127, 13);
        let r1 = m.success_probabilities(1);
        let r2 = m.success_probabilities(2);
        let r3 = m.success_probabilities(3);
        for x in 1..=13 {
            assert!(r2[x] >= r1[x]);
            assert!(r3[x] >= r2[x]);
            assert!(r3[x] <= 1.0 + 1e-12);
        }
        // After 3 rounds, success from a handful of bad balls is near-certain.
        assert!(r3[5] > 0.999);
    }

    #[test]
    fn power_of_zero_is_identity() {
        let m = TransitionMatrix::build(63, 5);
        let p = m.power(0);
        for i in 0..=5 {
            for j in 0..=5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }
}
