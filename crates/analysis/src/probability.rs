//! Closed-form probability helpers: binomial pmf (in log space, so `d` up to
//! 10^5 is fine) and the §2.2.1 / §2.3 balls-into-bins event probabilities
//! computed by exact enumeration of integer partitions.

/// Natural log of `n!`, exact summation for small `n` and a Stirling series
/// for large `n` (absolute error far below what any probability here needs).
fn ln_factorial(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|k| (k as f64).ln()).sum();
    }
    let x = n as f64;
    // Stirling series with the 1/(12n) and 1/(360n^3) correction terms.
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// Binomial probability `Pr[X = k]` for `X ~ Binomial(n, p)`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// The probability of the §2.2.1 "ideal case": `d` balls thrown uniformly
/// into `n` bins all land in distinct bins, `∏_{k=1}^{d−1} (1 − k/n)`.
pub fn ideal_case_probability(d: usize, n: usize) -> f64 {
    if d <= 1 {
        return 1.0;
    }
    if d > n {
        return 0.0;
    }
    (1..d).map(|k| 1.0 - k as f64 / n as f64).product()
}

/// The exception probabilities of §2.3 for `d` distinct elements hashed into
/// `n` subset pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExceptionProbabilities {
    /// Probability of the ideal case (every bin holds at most one ball).
    pub ideal: f64,
    /// Probability that at least one bin holds a nonzero *even* number of
    /// balls (a type (I) exception, invisible to the parity bitmap).
    pub type_i: f64,
    /// Probability that at least one bin holds an *odd* number ≥ 3 of balls
    /// (a type (II) exception, producing a fake distinct element).
    pub type_ii: f64,
    /// Probability that a type (II) exception occurs *and* the resulting fake
    /// element passes the sub-universe check of Procedure 3 (an extra factor
    /// of `1/n`).
    pub type_ii_undetected: f64,
}

/// Exactly enumerate the occupancy-profile distribution of `d` balls in `n`
/// bins and classify each profile. Suitable for the small `d` (≤ ~40) the
/// paper's per-group analysis concerns; cost grows with the number of integer
/// partitions of `d`.
pub fn exception_probabilities(d: usize, n: usize) -> ExceptionProbabilities {
    assert!(
        d <= 60,
        "exact partition enumeration is only intended for small d"
    );
    assert!(
        n >= d.max(1),
        "need at least d bins for the enumeration to make sense"
    );

    let mut ideal = 0.0;
    let mut type_i = 0.0;
    let mut type_ii = 0.0;

    // Enumerate integer partitions of d (each partition is an occupancy
    // profile of the non-empty bins, parts in non-increasing order).
    let mut partition: Vec<usize> = Vec::new();
    enumerate_partitions(d, d, &mut partition, &mut |parts| {
        let p = profile_probability(parts, n);
        if parts.iter().all(|&c| c == 1) {
            ideal += p;
        }
        if parts.iter().any(|&c| c >= 2 && c % 2 == 0) {
            type_i += p;
        }
        if parts.iter().any(|&c| c >= 3 && c % 2 == 1) {
            type_ii += p;
        }
    });

    ExceptionProbabilities {
        ideal,
        type_i,
        type_ii,
        type_ii_undetected: type_ii / n as f64,
    }
}

/// Probability that `d = Σ parts` balls thrown uniformly into `n` bins
/// realize exactly the occupancy multiset `parts` (over any choice of bins).
fn profile_probability(parts: &[usize], n: usize) -> f64 {
    let d: usize = parts.iter().sum();
    let k = parts.len();
    // ways to assign balls to the profile: d! / Π c_i!   (ordered bins)
    // ways to choose which bins: n·(n−1)·…·(n−k+1) / Π (multiplicity of equal part sizes)!
    let mut ln_p = ln_factorial(d);
    for &c in parts {
        ln_p -= ln_factorial(c);
    }
    // falling factorial (n)_k
    for i in 0..k {
        ln_p += ((n - i) as f64).ln();
    }
    // divide by multiplicities of repeated part sizes
    let mut i = 0;
    while i < k {
        let mut j = i;
        while j < k && parts[j] == parts[i] {
            j += 1;
        }
        ln_p -= ln_factorial(j - i);
        i = j;
    }
    // divide by n^d
    ln_p -= d as f64 * (n as f64).ln();
    ln_p.exp()
}

/// Enumerate all partitions of `remaining` with parts ≤ `max_part`, calling
/// `visit` with each complete partition (parts in non-increasing order).
fn enumerate_partitions(
    remaining: usize,
    max_part: usize,
    current: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if remaining == 0 {
        visit(current);
        return;
    }
    let upper = remaining.min(max_part);
    for part in (1..=upper).rev() {
        current.push(part);
        enumerate_partitions(remaining - part, part, current, visit);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10usize, 0.3), (1000, 0.005), (100_000, 1.0 / 200.0)] {
            // Sum a window wide enough to capture essentially all the mass.
            let mean = (n as f64 * p).round() as usize;
            let lo = mean.saturating_sub(2000);
            let hi = (mean + 2000).min(n);
            let sum: f64 = (lo..=hi).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((sum - 1.0).abs() < 1e-6, "n={n}, p={p}: sum {sum}");
        }
    }

    #[test]
    fn binomial_pmf_known_values() {
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
        assert!((binomial_pmf(10, 0, 0.1) - 0.9f64.powi(10)).abs() < 1e-12);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
    }

    #[test]
    fn ln_factorial_stirling_consistency() {
        // The exact and Stirling branches must agree near the switchover.
        let exact: f64 = (2..=300usize).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() < 1e-6);
    }

    #[test]
    fn ideal_case_matches_paper_example() {
        // §1.3.1: d = 5, n = 255 -> probability ~0.96.
        let p = ideal_case_probability(5, 255);
        assert!((p - 0.9613).abs() < 0.002, "got {p}");
        assert_eq!(ideal_case_probability(1, 10), 1.0);
        assert_eq!(ideal_case_probability(11, 10), 0.0);
    }

    #[test]
    fn exception_probabilities_match_paper_examples() {
        // §2.3: d = 5, n = 255: type (I) ≈ 0.04, type (II) ≈ 1.52e-4,
        // undetected type (II) ≈ 6e-7.
        let e = exception_probabilities(5, 255);
        assert!((e.ideal - 0.9613).abs() < 0.002, "ideal {}", e.ideal);
        assert!((e.type_i - 0.04).abs() < 0.005, "type I {}", e.type_i);
        assert!((e.type_ii - 1.52e-4).abs() < 2e-5, "type II {}", e.type_ii);
        assert!(
            (e.type_ii_undetected - 6e-7).abs() < 2e-7,
            "undetected {}",
            e.type_ii_undetected
        );
    }

    #[test]
    fn probabilities_partition_the_space() {
        // ideal + P(some collision) = 1; collisions are covered by type I or II.
        let e = exception_probabilities(6, 127);
        assert!(e.ideal < 1.0);
        assert!(e.type_i + e.type_ii >= 1.0 - e.ideal - 1e-9);
        // Union bound sanity: each exception probability below the non-ideal mass.
        assert!(e.type_i <= 1.0 - e.ideal + 1e-12);
        assert!(e.type_ii <= 1.0 - e.ideal + 1e-12);
    }

    #[test]
    fn partition_enumeration_counts() {
        // Number of integer partitions of 7 is 15.
        let mut count = 0;
        let mut buf = Vec::new();
        enumerate_partitions(7, 7, &mut buf, &mut |_| count += 1);
        assert_eq!(count, 15);
    }

    #[test]
    fn profile_probabilities_sum_to_one() {
        let d = 6usize;
        let n = 50usize;
        let mut total = 0.0;
        let mut buf = Vec::new();
        enumerate_partitions(d, d, &mut buf, &mut |parts| {
            total += profile_probability(parts, n);
        });
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }
}
