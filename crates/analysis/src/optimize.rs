//! The §5.1 / Appendix H parameter optimization: pick `(n, t)` minimizing the
//! per-group communication overhead subject to the overall success bound.

use crate::markov::TransitionMatrix;
use crate::{
    group_success_probability_with, overall_success_lower_bound, SuccessModel, CANDIDATE_N,
};

/// One cell of the Appendix H grid (Table 1): an `(n, t)` combination, the
/// success-probability lower bound it achieves and the objective value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCell {
    /// Parity-bitmap length `n`.
    pub n: usize,
    /// BCH error-correction capacity `t`.
    pub t: usize,
    /// The rigorous lower bound `1 − 2(1 − α^g)` on `Pr[R ≤ r]`.
    pub lower_bound: f64,
    /// The per-group objective `(t + δ)·log2(n + 1)` in bits (the
    /// non-constant part of Formula (1)).
    pub objective_bits: f64,
    /// Whether the cell satisfies the target success probability.
    pub feasible: bool,
}

/// The optimizer's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalParams {
    /// Chosen parity-bitmap length `n = 2^m − 1`.
    pub n: usize,
    /// Extension degree `m = log2(n + 1)`.
    pub m: u32,
    /// Chosen BCH error-correction capacity `t`.
    pub t: usize,
    /// Number of groups `g = ⌈d / δ⌉` the optimization assumed.
    pub groups: usize,
    /// The success lower bound achieved by `(n, t)`.
    pub lower_bound: f64,
    /// Objective value `(t + δ)·log2(n + 1)` in bits.
    pub objective_bits: f64,
}

impl OptimalParams {
    /// The full average first-round communication per group pair in bits
    /// (Formula (1)): `t·log n + δ·log n + δ·log|U| + log|U|`.
    pub fn first_round_bits_per_group(&self, delta: usize, universe_bits: u32) -> f64 {
        self.objective_bits + (delta as f64 + 1.0) * universe_bits as f64
    }
}

/// Errors from [`optimize_parameters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizeError {
    /// No `(n, t)` combination in the candidate grid satisfies the target
    /// success probability.
    NoFeasibleParameters,
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::NoFeasibleParameters => {
                write!(
                    f,
                    "no (n, t) combination satisfies the target success probability"
                )
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

/// The number of groups PBS-for-large-d uses: `g = ⌈d / δ⌉`, at least 1.
pub fn group_count(d: usize, delta: usize) -> usize {
    d.div_ceil(delta).max(1)
}

/// Evaluate the full `(n, t)` grid (Appendix H / Table 1).
///
/// `d` is the (estimated) difference cardinality, `delta` the per-group
/// average δ, `r` the target number of rounds and `p0` the target overall
/// success probability. The `t` range scanned is `δ ..= 4δ` (the paper notes
/// the optimum always lies within `1.5δ..3.5δ`).
pub fn sweep_parameter_grid(d: usize, delta: usize, r: u32, p0: f64) -> Vec<GridCell> {
    sweep_parameter_grid_with_model(d, delta, r, p0, SuccessModel::default())
}

/// [`sweep_parameter_grid`] with an explicit over-capacity success model.
pub fn sweep_parameter_grid_with_model(
    d: usize,
    delta: usize,
    r: u32,
    p0: f64,
    model: SuccessModel,
) -> Vec<GridCell> {
    let g = group_count(d, delta);
    let t_lo = delta.max(2);
    let t_hi = (4 * delta).max(t_lo + 1);
    let mut cells = Vec::new();
    for &n in CANDIDATE_N.iter() {
        let m = (n + 1).ilog2() as f64;
        for t in t_lo..=t_hi {
            let matrix = TransitionMatrix::build(n, t);
            let alpha = group_success_probability_with(&matrix, t, d, g, r, model);
            let lower_bound = overall_success_lower_bound(alpha, g);
            let objective_bits = (t + delta) as f64 * m;
            cells.push(GridCell {
                n,
                t,
                lower_bound,
                objective_bits,
                feasible: lower_bound >= p0,
            });
        }
    }
    cells
}

/// Find the `(n, t)` combination with the smallest objective among those that
/// satisfy `Pr[R ≤ r] ≥ p0` (§5.1), using the default success model.
pub fn optimize_parameters(
    d: usize,
    delta: usize,
    r: u32,
    p0: f64,
) -> Result<OptimalParams, OptimizeError> {
    optimize_parameters_with_model(d, delta, r, p0, SuccessModel::default())
}

/// [`optimize_parameters`] with an explicit over-capacity success model.
pub fn optimize_parameters_with_model(
    d: usize,
    delta: usize,
    r: u32,
    p0: f64,
    model: SuccessModel,
) -> Result<OptimalParams, OptimizeError> {
    let g = group_count(d, delta);
    let cells = sweep_parameter_grid_with_model(d, delta, r, p0, model);
    let best = cells
        .iter()
        .filter(|c| c.feasible)
        .min_by(|a, b| {
            a.objective_bits
                .partial_cmp(&b.objective_bits)
                .unwrap()
                .then_with(|| a.n.cmp(&b.n))
        })
        .ok_or(OptimizeError::NoFeasibleParameters)?;
    Ok(OptimalParams {
        n: best.n,
        m: (best.n + 1).ilog2(),
        t: best.t,
        groups: g,
        lower_bound: best.lower_bound,
        objective_bits: best.objective_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example_chooses_n127() {
        // §5.1 / Appendix H: d = 1000, δ = 5, r = 3, p0 = 0.99 -> the paper
        // picks (n, t) = (127, 13). Our default (split-aware) success model
        // is slightly less pessimistic about over-capacity groups than the
        // paper's table, so the optimal t can land a notch or two lower; the
        // bitmap length and the overall shape must match.
        let opt = optimize_parameters(1000, 5, 3, 0.99).unwrap();
        assert_eq!(opt.n, 127, "optimal bitmap length");
        assert_eq!(opt.m, 7);
        assert!(
            (11..=14).contains(&opt.t),
            "optimal t {} not in the expected neighbourhood of the paper's 13",
            opt.t
        );
        assert_eq!(opt.groups, 200);
        assert!(opt.lower_bound >= 0.99);
        // Objective (t + 5) * 7 bits.
        assert!((opt.objective_bits - ((opt.t + 5) as f64 * 7.0)).abs() < 1e-9);
        // The paper's own choice must itself be feasible under the model.
        let grid = sweep_parameter_grid(1000, 5, 3, 0.99);
        let paper_cell = grid.iter().find(|c| c.n == 127 && c.t == 13).unwrap();
        assert!(paper_cell.feasible);
    }

    #[test]
    fn r_sweep_matches_section_5_2_trend() {
        // §5.2: the optimal communication per group pair decreases in r and
        // r = 3 is a sweet spot (the paper quotes 591, 402, 318, 288 bits for
        // r = 1..4 including the Formula (1) constant terms, log|U| = 32).
        let mut totals = Vec::new();
        for r in 1..=4u32 {
            let opt = optimize_parameters(1000, 5, r, 0.99).unwrap();
            totals.push(opt.first_round_bits_per_group(5, 32));
        }
        assert!(
            totals[0] > totals[1] && totals[1] > totals[2] && totals[2] >= totals[3],
            "per-group cost must decrease with r: {totals:?}"
        );
        // The r = 1 optimum is far more expensive than r = 3 (paper: 591 vs 318).
        assert!(
            totals[0] >= totals[2] + 100.0,
            "r=1 {} vs r=3 {}",
            totals[0],
            totals[2]
        );
        // r = 3 lands in the neighbourhood of the paper's 318 bits.
        assert!(
            (250.0..=380.0).contains(&totals[2]),
            "r=3 per-group bits {} far from the paper's 318",
            totals[2]
        );
        // Diminishing returns after r = 3 (the sweet-spot argument).
        let drop_2_to_3 = totals[1] - totals[2];
        let drop_3_to_4 = totals[2] - totals[3];
        assert!(drop_2_to_3 > drop_3_to_4, "{totals:?}");
    }

    #[test]
    fn grid_contains_infeasible_and_feasible_cells() {
        let cells = sweep_parameter_grid(1000, 5, 3, 0.99);
        assert!(cells.iter().any(|c| c.feasible));
        assert!(cells.iter().any(|c| !c.feasible));
        // Feasibility must be monotone-ish: the largest (n, t) cell is feasible.
        let biggest = cells
            .iter()
            .find(|c| c.n == 2047 && c.t == 20)
            .expect("grid covers n=2047, t=20");
        assert!(biggest.feasible);
    }

    #[test]
    fn impossible_target_reports_error() {
        // p0 = 1.0 exactly can never be strictly guaranteed by the bound.
        let err = optimize_parameters(1_000_000, 5, 1, 1.0).unwrap_err();
        assert_eq!(err, OptimizeError::NoFeasibleParameters);
    }

    #[test]
    fn group_count_rounds_up() {
        assert_eq!(group_count(1000, 5), 200);
        assert_eq!(group_count(1001, 5), 201);
        assert_eq!(group_count(3, 5), 1);
        assert_eq!(group_count(0, 5), 1);
    }

    #[test]
    fn small_d_still_optimizes() {
        let opt = optimize_parameters(10, 5, 3, 0.99).unwrap();
        assert!(opt.groups >= 1);
        assert!(CANDIDATE_N.contains(&opt.n));
        assert!(opt.lower_bound >= 0.99);
    }
}
