//! The analytical framework of the PBS paper (§4, §5, Appendices D–H).
//!
//! The framework models one group pair's multi-round reconciliation as a
//! Markov chain over the number of still-unreconciled ("bad") distinct
//! elements. It provides, purely analytically (no simulation):
//!
//! * the transition matrix `M` computed with the Appendix E dynamic program
//!   ([`TransitionMatrix`]),
//! * the single-group success probability `Pr[x →r 0] = (M^r)(x, 0)`
//!   (Formula (2)),
//! * the per-group-pair success probability
//!   `α(n, t) = Σ_x Binom(d, 1/g)(x) · Pr[x →r 0]` and the rigorous overall
//!   lower bound `Pr[R ≤ r] ≥ 1 − 2(1 − α^g)` (Appendix F),
//! * the `(n, t)` optimizer that minimizes communication subject to a target
//!   success probability (§5.1, Appendix H / Table 1),
//! * the expected number of distinct elements reconciled per round
//!   (§5.3 / Appendix G), and
//! * the §2 closed-form probabilities (ideal case, type I/II exceptions)
//!   used throughout the paper's examples.

#![warn(missing_docs)]

mod markov;
mod optimize;
mod probability;

pub use markov::TransitionMatrix;
pub use optimize::{
    group_count, optimize_parameters, optimize_parameters_with_model, sweep_parameter_grid,
    GridCell, OptimalParams, OptimizeError,
};
pub use probability::{
    binomial_pmf, exception_probabilities, ideal_case_probability, ExceptionProbabilities,
};

/// The δ = 5 average number of distinct elements per group the paper fixes
/// (§3: "Since δ = 5 appears to be a nice tradeoff point, we fix the value of
/// δ at 5 in this paper").
pub const DEFAULT_DELTA: usize = 5;

/// The r = 3 target number of rounds the paper identifies as the sweet spot
/// (§5.2).
pub const DEFAULT_TARGET_ROUNDS: u32 = 3;

/// The candidate parity-bitmap lengths `n = 2^m − 1` used by the paper's
/// optimization examples (§5.1: "The possible n values are hence narrowed
/// down to {63, 127, 255, 511, 1023, 2047} in practice"). Those six suffice
/// whenever `r ≥ 2`.
pub const PAPER_CANDIDATE_N: [usize; 6] = [63, 127, 255, 511, 1023, 2047];

/// The candidate parity-bitmap lengths scanned by the optimizer. This extends
/// the paper's list up to `2^20 − 1` so that very aggressive targets (notably
/// `r = 1`, where a collision can never be repaired and only a huge bitmap
/// keeps the ideal-case probability high enough) still have feasible
/// parameters; for the paper's default `r = 3` the optimum always falls
/// inside [`PAPER_CANDIDATE_N`].
pub const CANDIDATE_N: [usize; 15] = [
    63, 127, 255, 511, 1023, 2047, 4095, 8191, 16383, 32767, 65535, 131071, 262143, 524287, 1048575,
];

/// How the per-group success probability treats groups whose number of
/// distinct elements exceeds the BCH capacity `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuccessModel {
    /// Appendix F's pessimistic simplification: any group that starts with
    /// more than `t` distinct elements is counted as a failure
    /// (`Pr[x →r 0] = 0` for `x > t`).
    PessimisticTruncation,
    /// Model the §3.2 exception handling explicitly: a group with `x > t`
    /// elements suffers a BCH decoding failure in its first round, is split
    /// three ways, and each sub-group must then finish within the remaining
    /// `r − 1` rounds. This tracks the implemented mechanism and is the
    /// default; see EXPERIMENTS.md for how the two models bracket the
    /// paper's Table 1.
    #[default]
    SplitAware,
}

/// Per-group success probability α(n, t) (Appendix F):
/// `α = Σ_x Pr[X = x] · Pr[x →r 0]` where `X ~ Binomial(d, 1/g)`, with
/// over-capacity groups (`x > t`) handled according to `model`.
pub fn group_success_probability(
    n: usize,
    t: usize,
    d: usize,
    g: usize,
    r: u32,
    model: SuccessModel,
) -> f64 {
    let matrix = TransitionMatrix::build(n, t);
    group_success_probability_with(&matrix, t, d, g, r, model)
}

/// Same as [`group_success_probability`] but reusing a prebuilt transition
/// matrix (the optimizer calls this in a loop over `t` values).
pub fn group_success_probability_with(
    matrix: &TransitionMatrix,
    t: usize,
    d: usize,
    g: usize,
    r: u32,
    model: SuccessModel,
) -> f64 {
    let success = matrix.success_probabilities(r);
    let p = 1.0 / g as f64;
    let mut alpha = 0.0;
    for (x, &s) in success.iter().enumerate().take(t.min(d) + 1) {
        let weight = binomial_pmf(d, x, p);
        let s = if x == 0 { 1.0 } else { s };
        alpha += weight * s;
    }
    if let SuccessModel::SplitAware = model {
        if r >= 2 {
            // Enumerate x = t+1 .. until the binomial tail becomes negligible.
            let success_rem = matrix.success_probabilities(r - 1);
            let mut x = t + 1;
            loop {
                let weight = binomial_pmf(d, x, p);
                if weight < 1e-15 && x > t + 5 {
                    break;
                }
                alpha += weight * split_success_probability(x, t, &success_rem);
                x += 1;
                if x > d || x > t + 60 {
                    break;
                }
            }
        }
    }
    alpha.min(1.0)
}

/// Probability that a group of `x > t` distinct elements, split uniformly
/// into three sub-groups, has every sub-group (a) within the capacity `t`
/// and (b) reconciled within the remaining rounds (whose single-group success
/// probabilities are given by `success_rem`).
fn split_success_probability(x: usize, t: usize, success_rem: &[f64]) -> f64 {
    // Sub-group sizes (x1, x2, x3) follow a Multinomial(x; 1/3, 1/3, 1/3).
    let third: f64 = 1.0 / 3.0;
    let mut total = 0.0;
    for x1 in 0..=x {
        let p1 = binomial_pmf(x, x1, third);
        if p1 < 1e-18 {
            continue;
        }
        let s1 = if x1 > t { 0.0 } else { success_rem[x1] };
        if s1 == 0.0 {
            continue;
        }
        let rest = x - x1;
        for x2 in 0..=rest {
            let p2 = binomial_pmf(rest, x2, 0.5);
            if p2 < 1e-18 {
                continue;
            }
            let x3 = rest - x2;
            let s2 = if x2 > t { 0.0 } else { success_rem[x2] };
            let s3 = if x3 > t { 0.0 } else { success_rem[x3] };
            total += p1 * p2 * s1 * s2 * s3;
        }
    }
    total
}

/// The rigorous lower bound `1 − 2(1 − α^g)` on the overall success
/// probability `Pr[R ≤ r]` across all `g` group pairs (Appendix F).
pub fn overall_success_lower_bound(alpha: f64, g: usize) -> f64 {
    1.0 - 2.0 * (1.0 - alpha.powi(g as i32))
}

/// Expected fraction of the d distinct elements reconciled in each of the
/// first `rounds` rounds (§5.3 / Appendix G), plus the residual fraction
/// left unreconciled afterwards as the final entry.
///
/// Returns a vector of length `rounds + 1`:
/// `[share_round_1, …, share_round_r, residual]`, each in `[0, 1]`,
/// summing to 1.
pub fn expected_round_shares(n: usize, t: usize, d: usize, g: usize, rounds: u32) -> Vec<f64> {
    let matrix = TransitionMatrix::build(n, t);
    let p = 1.0 / g as f64;
    // E[reconciled within k rounds] for one group with δ1 ~ Binomial(d, 1/g):
    //   Σ_x Pr[δ1=x] Σ_y (x − y)·Pr[x →k y]   (Equation (6))
    let max_x = t;
    let mut expected_within = vec![0.0f64; rounds as usize + 1];
    for k in 1..=rounds {
        let reach = matrix.power(k);
        let mut total = 0.0;
        for x in 1..=max_x.min(d) {
            let w = binomial_pmf(d, x, p);
            let mut inner = 0.0;
            for y in 0..=x {
                inner += (x - y) as f64 * reach[(x, y)];
            }
            total += w * inner;
        }
        expected_within[k as usize] = total;
    }
    // Expected distinct elements per group is d/g; convert to fractions of d
    // by multiplying by g/d (both appear, so the share of round k is simply
    // the per-group expectation divided by d/g).
    let per_group = d as f64 / g as f64;
    let mut shares = Vec::with_capacity(rounds as usize + 1);
    let mut prev = 0.0;
    for &within_abs in expected_within.iter().take(rounds as usize + 1).skip(1) {
        let within = within_abs / per_group;
        shares.push((within - prev).max(0.0));
        prev = within;
    }
    shares.push((1.0 - prev).max(0.0));
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_round_shares() {
        // §5.3: with d = 1000, δ = 5, (n, t) = (127, 13), the expected
        // proportions reconciled in rounds 1..4 are 0.962, 0.0380, 3.61e-4,
        // 2.86e-6.
        let shares = expected_round_shares(127, 13, 1000, 200, 4);
        assert!(
            (shares[0] - 0.962).abs() < 0.01,
            "round-1 share {}",
            shares[0]
        );
        assert!(
            (shares[1] - 0.038).abs() < 0.01,
            "round-2 share {}",
            shares[1]
        );
        assert!(shares[2] < 0.002, "round-3 share {}", shares[2]);
        assert!(shares[3] < 1e-4, "round-4 share {}", shares[3]);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_increases_with_t_and_n() {
        for model in [
            SuccessModel::PessimisticTruncation,
            SuccessModel::SplitAware,
        ] {
            let a_small = group_success_probability(63, 8, 1000, 200, 3, model);
            let a_big_t = group_success_probability(63, 14, 1000, 200, 3, model);
            let a_big_n = group_success_probability(511, 8, 1000, 200, 3, model);
            assert!(a_big_t > a_small);
            assert!(a_big_n > a_small);
            assert!(a_small > 0.0 && a_big_t <= 1.0);
        }
    }

    #[test]
    fn split_aware_dominates_truncation() {
        for t in [10usize, 13, 16] {
            let pess = group_success_probability(
                127,
                t,
                1000,
                200,
                3,
                SuccessModel::PessimisticTruncation,
            );
            let split = group_success_probability(127, t, 1000, 200, 3, SuccessModel::SplitAware);
            assert!(split >= pess, "split-aware must never be below truncation");
        }
    }

    #[test]
    fn lower_bound_behaviour() {
        assert!((overall_success_lower_bound(1.0, 200) - 1.0).abs() < 1e-12);
        assert!(overall_success_lower_bound(0.999, 200) < 1.0);
        // Degenerate: α small makes the bound negative (vacuous), which the
        // optimizer simply treats as "constraint unsatisfied".
        assert!(overall_success_lower_bound(0.9, 200) < 0.0);
    }

    #[test]
    fn table1_qualitative_shape() {
        // Appendix H, Table 1 (d=1000, δ=5, g=200, r=3). The two success
        // models bracket the paper's numbers (see EXPERIMENTS.md); here we
        // check the qualitative pattern the table exhibits under the
        // split-aware model: the headline cell (127, 13) is feasible at
        // p0 = 0.99, n = 63 never reaches 0.99 even for large t, and tiny t
        // at n = 63 is vacuous (the table's 0% cell).
        let cell = |n, t, model| {
            let a = group_success_probability(n, t, 1000, 200, 3, model);
            overall_success_lower_bound(a, 200)
        };
        let headline = cell(127, 13, SuccessModel::SplitAware);
        assert!(
            headline >= 0.99,
            "n=127,t=13 should be feasible, got {headline}"
        );
        let big = cell(255, 13, SuccessModel::SplitAware);
        assert!(big >= headline - 1e-6, "larger n should not hurt");
        let n63_cap = cell(63, 17, SuccessModel::SplitAware);
        assert!(
            n63_cap < 0.99,
            "n=63 saturates below the 0.99 target (paper: 95.8%), got {n63_cap}"
        );
        let tiny = cell(63, 8, SuccessModel::PessimisticTruncation);
        assert!(
            tiny <= 0.0,
            "n=63,t=8 should be vacuous (table shows 0), got {tiny}"
        );
        // Pessimistic truncation at t = 13 is far below the paper's 99.1%,
        // which is why the split-aware model is the default.
        let pess = cell(127, 13, SuccessModel::PessimisticTruncation);
        assert!(pess < 0.9);
    }
}
