//! Consistency tests between the analytical framework and Monte-Carlo
//! simulation of the balls-into-bins process it models.

use analysis::{
    binomial_pmf, exception_probabilities, expected_round_shares, ideal_case_probability,
    TransitionMatrix,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Throw `x` balls into `n` bins once and report whether every ball landed
/// alone (the §2.2.1 "ideal case").
fn one_round_is_ideal(x: usize, n: usize, rng: &mut StdRng) -> bool {
    let mut bins = vec![0u32; n];
    for _ in 0..x {
        bins[rng.random_range(0..n)] += 1;
    }
    bins.iter().all(|&c| c <= 1)
}

#[test]
fn markov_success_probability_matches_simulation() {
    let (n, t, r) = (127usize, 10usize, 2u32);
    let matrix = TransitionMatrix::build(n, t);
    let analytic = matrix.success_probabilities(r);
    let mut rng = StdRng::seed_from_u64(7);
    for &x in &[3usize, 6, 10] {
        let trials = 4_000;
        let mut ok = 0;
        for _ in 0..trials {
            let mut remaining = x;
            for _ in 0..r {
                let mut bins = vec![0u32; n];
                for _ in 0..remaining {
                    bins[rng.random_range(0..n)] += 1;
                }
                remaining = bins.iter().filter(|&&c| c >= 2).map(|&c| c as usize).sum();
                if remaining == 0 {
                    break;
                }
            }
            if remaining == 0 {
                ok += 1;
            }
        }
        let empirical = ok as f64 / trials as f64;
        assert!(
            (empirical - analytic[x]).abs() < 0.03,
            "x = {x}: analytic {} vs empirical {empirical}",
            analytic[x]
        );
    }
}

#[test]
fn exception_probabilities_match_simulation() {
    let (d, n) = (5usize, 255usize);
    let exact = exception_probabilities(d, n);
    let mut rng = StdRng::seed_from_u64(11);
    let trials = 60_000;
    let (mut ideal, mut type_i, mut type_ii) = (0u32, 0u32, 0u32);
    for _ in 0..trials {
        let mut bins = vec![0u32; n];
        for _ in 0..d {
            bins[rng.random_range(0..n)] += 1;
        }
        if bins.iter().all(|&c| c <= 1) {
            ideal += 1;
        }
        if bins.iter().any(|&c| c >= 2 && c % 2 == 0) {
            type_i += 1;
        }
        if bins.iter().any(|&c| c >= 3 && c % 2 == 1) {
            type_ii += 1;
        }
    }
    let t = trials as f64;
    assert!((ideal as f64 / t - exact.ideal).abs() < 0.01);
    assert!((type_i as f64 / t - exact.type_i).abs() < 0.01);
    // Type II is a ~1.5e-4 event: just check the simulation count is small.
    assert!(type_ii as f64 / t < 0.002);
    assert!(exact.type_ii < 3e-4);
}

#[test]
fn round_shares_match_simulated_rounds() {
    // The analytical round shares imply an average number of rounds; compare
    // with a direct simulation of groups drawn from Binomial(d, 1/g).
    let (n, t, d, g) = (127usize, 13usize, 1_000usize, 200usize);
    let shares = expected_round_shares(n, t, d, g, 4);
    assert!(shares[0] > 0.93 && shares[0] < 0.99);

    let mut rng = StdRng::seed_from_u64(3);
    let trials = 3_000;
    let mut first_round_total = 0f64;
    let mut balls_total = 0f64;
    for _ in 0..trials {
        // Draw the group's ball count.
        let mut x = 0usize;
        for _ in 0..d {
            if rng.random_range(0..g) == 0 {
                x += 1;
            }
        }
        if x == 0 {
            continue;
        }
        let mut bins = vec![0u32; n];
        for _ in 0..x {
            bins[rng.random_range(0..n)] += 1;
        }
        let good: usize = bins.iter().filter(|&&c| c == 1).count();
        first_round_total += good as f64;
        balls_total += x as f64;
    }
    let empirical_first_share = first_round_total / balls_total;
    assert!(
        (empirical_first_share - shares[0]).abs() < 0.02,
        "analytic {} vs simulated {empirical_first_share}",
        shares[0]
    );
}

#[test]
fn ideal_case_formula_vs_matrix_vs_simulation() {
    let mut rng = StdRng::seed_from_u64(5);
    for &(d, n) in &[(5usize, 255usize), (8, 511), (4, 63)] {
        let closed = ideal_case_probability(d, n);
        let matrix = TransitionMatrix::build(n, d);
        assert!((matrix.get(d, 0) - closed).abs() < 1e-12);
        let trials = 20_000;
        let ok = (0..trials)
            .filter(|_| one_round_is_ideal(d, n, &mut rng))
            .count();
        let empirical = ok as f64 / trials as f64;
        assert!(
            (empirical - closed).abs() < 0.02,
            "d={d}, n={n}: {empirical} vs {closed}"
        );
    }
}

#[test]
fn binomial_matches_simulation_tail() {
    // P(Binomial(1000, 1/200) > 13) is the §3.2 decode-failure probability
    // (6.7e-4); check the analytic tail lands in that ballpark.
    let tail: f64 = (14..=40).map(|k| binomial_pmf(1000, k, 1.0 / 200.0)).sum();
    assert!((tail - 6.7e-4).abs() < 1.5e-4, "tail = {tail}");
}
