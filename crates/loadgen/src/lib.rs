//! Open-loop load harness for the PBS reconciliation server.
//!
//! The repository's north star is a service that holds millions of
//! mostly-idle sessions while reconciliations stream through beside them;
//! this crate is the instrument that *measures* that claim instead of
//! asserting it. Four layers, each usable on its own:
//!
//! * [`plan`] — a seeded open-loop arrival schedule: fixed offered rate
//!   with deterministic jitter, workload kinds drawn from a configurable
//!   mix. A pure function of its seed, so runs replay exactly.
//! * [`session`] — the client side of the wire protocol as a non-blocking
//!   state machine over [`pbs_net::mux::MuxStream`], with per-phase
//!   latency marks mirroring [`pbs_net::client::SyncPhases`].
//! * [`engine`] — a small worker pool multiplexing thousands of those
//!   sessions per thread (the client-side twin of PR 7's server event
//!   loop), with exact `started == completed + failed + evicted`
//!   accounting.
//! * [`report`] — p50/p99/p999 per-phase tables and machine-readable
//!   JSON.
//!
//! [`proxy`] adds the fault layer: a std TCP relay with seeded
//! drop/delay/partition/heal controls and an exact per-direction byte
//! ledger, which is what `tests/mesh_soak.rs` runs the anti-entropy mesh
//! through.
//!
//! The `pbs-loadgen` binary ties the layers together; see the README's
//! "Load testing & mesh operations" section.

pub mod engine;
pub mod plan;
pub mod proxy;
pub mod report;
pub mod session;

pub use engine::{Engine, EngineConfig, Metrics};
pub use plan::{build_plan, Arrival, Kind, Mix, PlanConfig};
pub use proxy::{FaultProxy, LedgerSnapshot};
pub use report::Report;
pub use session::{LoadSession, Outcome, PhaseNanos, SessionResult, SessionSpec};
