//! The offered load: a seeded open-loop arrival plan.
//!
//! Open-loop means arrivals are scheduled by the *offered* rate, not by
//! completions: session `i` starts at its planned instant whether or not
//! earlier sessions have finished, so a server falling behind accumulates
//! in-flight sessions (and its tail latency shows it) instead of silently
//! throttling the benchmark — the coordinated-omission trap of
//! closed-loop drivers. See `docs/PERF.md`.
//!
//! The plan is a **pure function of its configuration**: two calls to
//! [`build_plan`] with the same [`PlanConfig`] produce byte-identical
//! schedules — arrival instants, workload kinds, per-session seeds — which
//! is what makes a load run reproducible and lets the mesh soak replay a
//! schedule under fault injection. Latencies still vary run to run; the
//! *offered* side never does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What one planned session does on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Full reconciliation: estimator exchange + sketch/report rounds +
    /// final transfer, unpipelined.
    Full,
    /// Delta catch-up: the session carries a recent epoch and is served
    /// the changes since it (or falls back to a full reconciliation).
    Delta,
    /// Full reconciliation with adaptive pipelining (requests the
    /// server's whole grant).
    Pipelined,
    /// Delta catch-up followed by `Subscribe`: the session parks on the
    /// server as a live push subscriber until the harness drains it.
    Subscribe,
}

impl Kind {
    /// Stable lowercase name (report keys, CLI mix specs).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Full => "full",
            Kind::Delta => "delta",
            Kind::Pipelined => "pipelined",
            Kind::Subscribe => "subscribe",
        }
    }
}

/// Relative workload weights; only ratios matter. A weight of zero
/// removes the kind from the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of [`Kind::Full`].
    pub full: u32,
    /// Weight of [`Kind::Delta`].
    pub delta: u32,
    /// Weight of [`Kind::Pipelined`].
    pub pipelined: u32,
    /// Weight of [`Kind::Subscribe`].
    pub subscribe: u32,
}

impl Default for Mix {
    /// The mixed default: mostly cheap delta catch-ups and parked
    /// subscribers (the millions-of-users shape), a steady trickle of
    /// full reconciliations.
    fn default() -> Self {
        Mix {
            full: 10,
            delta: 30,
            pipelined: 10,
            subscribe: 50,
        }
    }
}

impl Mix {
    /// Parse a `full:delta:pipelined:subscribe` weight spec.
    pub fn parse(spec: &str) -> Option<Mix> {
        let parts: Vec<u32> = spec
            .split(':')
            .map(|p| p.trim().parse().ok())
            .collect::<Option<_>>()?;
        let [full, delta, pipelined, subscribe] = parts[..] else {
            return None;
        };
        if full + delta + pipelined + subscribe == 0 {
            return None;
        }
        Some(Mix {
            full,
            delta,
            pipelined,
            subscribe,
        })
    }

    fn total(&self) -> u64 {
        (self.full + self.delta + self.pipelined + self.subscribe) as u64
    }

    fn pick(&self, roll: u64) -> Kind {
        let mut roll = roll % self.total();
        for (weight, kind) in [
            (self.full, Kind::Full),
            (self.delta, Kind::Delta),
            (self.pipelined, Kind::Pipelined),
            (self.subscribe, Kind::Subscribe),
        ] {
            if roll < weight as u64 {
                return kind;
            }
            roll -= weight as u64;
        }
        unreachable!("roll reduced below the total weight")
    }
}

/// Everything [`build_plan`] needs; the plan is a pure function of this.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Number of sessions to schedule.
    pub sessions: usize,
    /// Offered arrival rate, sessions per second.
    pub rate: f64,
    /// Workload mix the kinds are drawn from.
    pub mix: Mix,
    /// Master seed: arrival jitter, kind draws, and per-session seeds all
    /// derive from it.
    pub seed: u64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            sessions: 1000,
            rate: 500.0,
            mix: Mix::default(),
            seed: 0x10AD_0001,
        }
    }
}

/// One planned session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from the run's start at which the session begins.
    pub at: Duration,
    /// What the session does.
    pub kind: Kind,
    /// Per-session seed (hash seeds, set perturbation) — derived from the
    /// master seed, so the whole workload replays.
    pub seed: u64,
}

/// Build the open-loop schedule: `sessions` arrivals whose inter-arrival
/// gaps average `1/rate` with ±50% seeded uniform jitter, each assigned a
/// kind drawn from `mix` and a derived per-session seed.
pub fn build_plan(config: &PlanConfig) -> Vec<Arrival> {
    assert!(config.rate > 0.0, "offered rate must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mean_gap_ns = 1e9 / config.rate;
    let mut clock_ns = 0u64;
    (0..config.sessions)
        .map(|_| {
            // Uniform jitter in [0.5, 1.5) of the mean keeps the offered
            // rate exact in expectation while breaking lockstep.
            let jitter = 0.5 + rng.random::<f64>();
            clock_ns += (mean_gap_ns * jitter) as u64;
            Arrival {
                at: Duration::from_nanos(clock_ns),
                kind: config.mix.pick(rng.random::<u64>()),
                seed: rng.random::<u64>(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_the_seed() {
        let config = PlanConfig {
            sessions: 500,
            rate: 1000.0,
            mix: Mix::default(),
            seed: 42,
        };
        assert_eq!(build_plan(&config), build_plan(&config));
        let other = PlanConfig {
            seed: 43,
            ..config.clone()
        };
        assert_ne!(build_plan(&config), build_plan(&other));
    }

    #[test]
    fn offered_rate_is_respected_in_expectation() {
        let config = PlanConfig {
            sessions: 10_000,
            rate: 2000.0,
            mix: Mix::default(),
            seed: 7,
        };
        let plan = build_plan(&config);
        let span = plan.last().unwrap().at.as_secs_f64();
        let achieved = config.sessions as f64 / span;
        assert!(
            (achieved - config.rate).abs() / config.rate < 0.05,
            "offered {achieved:.0}/s vs configured {:.0}/s",
            config.rate
        );
        // Arrivals are strictly ordered — an open-loop scheduler can walk
        // the plan front to back.
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn mix_weights_shape_the_draw() {
        let config = PlanConfig {
            sessions: 8000,
            rate: 1000.0,
            mix: Mix {
                full: 1,
                delta: 0,
                pipelined: 0,
                subscribe: 3,
            },
            seed: 99,
        };
        let plan = build_plan(&config);
        assert!(plan.iter().all(|a| a.kind != Kind::Delta));
        let subs = plan.iter().filter(|a| a.kind == Kind::Subscribe).count();
        let frac = subs as f64 / plan.len() as f64;
        assert!(
            (frac - 0.75).abs() < 0.05,
            "subscribe fraction {frac:.3} far from 3/4"
        );
    }

    #[test]
    fn mix_parse_round_trips() {
        assert_eq!(
            Mix::parse("10:30:10:50"),
            Some(Mix::default()),
            "the default mix spells 10:30:10:50"
        );
        assert_eq!(Mix::parse("0:0:0:0"), None);
        assert_eq!(Mix::parse("1:2:3"), None);
        assert_eq!(Mix::parse("a:b:c:d"), None);
    }
}
