//! `pbs-loadgen` — open-loop load generator for `pbs-syncd`.
//!
//! ```text
//! pbs-loadgen (--target ADDR --range N | --self-host N)
//!             [--sessions N] [--rate R] [--mix F:D:P:S] [--seed S]
//!             [--workers W] [--drops K] [--store NAME]
//!             [--park-hold SECS] [--deadline SECS] [--json PATH|-]
//! ```
//!
//! Drives `--sessions` sessions at an offered rate of `--rate`/s with
//! seeded jitter (open-loop: arrivals never wait for completions), mixed
//! across full reconciliations, delta catch-ups, pipelined syncs, and
//! parked `Subscribe` streams per `--mix` (weights
//! `full:delta:pipelined:subscribe`). Reports per-phase p50/p99/p999
//! latency, achieved vs offered rate, bytes/sec, and exact
//! `started == completed + failed + evicted` accounting — as a table on
//! stdout and, with `--json`, as a machine-readable document.
//!
//! Two ways to find a server:
//!
//! * `--target ADDR --range N` — an external `pbs-syncd` started with
//!   `--range N` (the harness must know the server's set to parameterize
//!   full reconciliations; `--range` mirrors the server flag exactly).
//! * `--self-host N` — bind an in-process server over an `N`-element
//!   demo store, sized for the run (subscriber cap above the session
//!   count). The loopback mode CI smoke-runs.
//!
//! The master seed is printed on start (like the fuzz harness): replaying
//! with the same `--seed` reproduces the identical arrival schedule and
//! workload mix — the determinism `tests/determinism.rs` pins.

use loadgen::{build_plan, Engine, EngineConfig, Mix, PlanConfig, Report, SessionSpec};
use pbs_net::server::{Server, ServerConfig};
use pbs_net::setio;
use pbs_net::store::MutableStore;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    target: Option<String>,
    range: Option<usize>,
    self_host: Option<usize>,
    sessions: usize,
    rate: f64,
    mix: Mix,
    seed: u64,
    workers: usize,
    drops: usize,
    store: String,
    park_hold: u64,
    deadline: u64,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pbs-loadgen (--target ADDR --range N | --self-host N) \
         [--sessions N] [--rate R] [--mix F:D:P:S] [--seed S] [--workers W] \
         [--drops K] [--store NAME] [--park-hold SECS] [--deadline SECS] \
         [--json PATH|-]\n\
         --mix weights full:delta:pipelined:subscribe (default 10:30:10:50)\n\
         --range N must match the server's --range N so full syncs are \
         parameterized correctly"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        target: None,
        range: None,
        self_host: None,
        sessions: 1000,
        rate: 500.0,
        mix: Mix::default(),
        seed: 0x10AD_0001,
        workers: 4,
        drops: 8,
        store: String::new(),
        park_hold: 0,
        deadline: 60,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--target" => args.target = Some(value()),
            "--range" => args.range = value().parse().ok(),
            "--self-host" => args.self_host = value().parse().ok(),
            "--sessions" => args.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--rate" => args.rate = value().parse().unwrap_or_else(|_| usage()),
            "--mix" => args.mix = Mix::parse(&value()).unwrap_or_else(|| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = value().parse().unwrap_or_else(|_| usage()),
            "--drops" => args.drops = value().parse().unwrap_or_else(|_| usage()),
            "--store" => args.store = value(),
            "--park-hold" => args.park_hold = value().parse().unwrap_or_else(|_| usage()),
            "--deadline" => args.deadline = value().parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = Some(value()),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.rate <= 0.0 || args.sessions == 0 {
        usage();
    }

    // Resolve the server: external or self-hosted.
    let (target, base_set, delta_epoch, _server): (SocketAddr, Arc<Vec<u64>>, u64, Option<Server>) =
        match (&args.target, args.self_host) {
            (Some(addr), None) => {
                let Some(n) = args.range else { usage() };
                let target = addr
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut a| a.next())
                    .unwrap_or_else(|| {
                        eprintln!("pbs-loadgen: cannot resolve {addr}");
                        std::process::exit(1);
                    });
                // The server's set (pbs-syncd --range N salts the default
                // demo store with 0xB0B). One probe sync with the exact set
                // (d = 0) learns the store's current epoch without mutating
                // it — the baseline delta and subscribe sessions carry.
                let base: Vec<u64> = setio::demo_set(n, 0xB0B);
                let probe = pbs_net::SyncClient::connect(target)
                    .and_then(|c| c.store(args.store.clone()).sync(&base))
                    .unwrap_or_else(|e| {
                        eprintln!("pbs-loadgen: probe sync against {target} failed: {e}");
                        std::process::exit(1);
                    });
                (target, Arc::new(base), probe.epoch.unwrap_or(0), None)
            }
            (None, Some(n)) => {
                let base: Vec<u64> = setio::demo_set(n, 0xB0B);
                let store = Arc::new(MutableStore::new(base.iter().copied()));
                let epoch = store.epoch();
                let server = Server::bind(
                    "127.0.0.1:0",
                    Arc::clone(&store) as Arc<_>,
                    ServerConfig {
                        max_subscribers: args.sessions.max(1024) * 2,
                        ..ServerConfig::default()
                    },
                )
                .unwrap_or_else(|e| {
                    eprintln!("pbs-loadgen: cannot bind self-hosted server: {e}");
                    std::process::exit(1);
                });
                let addr = server.local_addr();
                println!("pbs-loadgen: self-hosting {n}-element store on {addr}");
                (addr, Arc::new(base), epoch, Some(server))
            }
            _ => usage(),
        };

    let plan_config = PlanConfig {
        sessions: args.sessions,
        rate: args.rate,
        mix: args.mix,
        seed: args.seed,
    };
    println!(
        "pbs-loadgen: seed {:#x} ({} sessions at {:.0}/s offered, mix {}:{}:{}:{})",
        args.seed,
        args.sessions,
        args.rate,
        args.mix.full,
        args.mix.delta,
        args.mix.pipelined,
        args.mix.subscribe
    );
    let plan = build_plan(&plan_config);

    let spec = SessionSpec {
        store: args.store.clone(),
        deadline: Duration::from_secs(args.deadline.max(1)),
        ..SessionSpec::default()
    };
    let mut engine = Engine::start(EngineConfig {
        target,
        workers: args.workers.max(1),
        spec,
        base_set,
        drops: args.drops.max(1),
        delta_epoch,
    })
    .unwrap_or_else(|e| {
        eprintln!("pbs-loadgen: cannot start engine: {e}");
        std::process::exit(1);
    });

    let started = Instant::now();
    engine.run_plan(&plan, started);
    let (metrics, elapsed) = engine.drain(
        Duration::from_secs(args.deadline.max(1) + 10),
        Duration::from_secs(args.park_hold),
    );
    let report = Report::build(&metrics, &plan_config, elapsed);
    print!("{}", report.table());
    if let Some(path) = &args.json {
        let json = report.json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("pbs-loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    if !report.settled() {
        eprintln!(
            "pbs-loadgen: accounting violation: {} started != {} completed + {} failed + {} evicted",
            report.started, report.completed, report.failed, report.evicted
        );
        std::process::exit(1);
    }
}
