//! The session engine: a small worker pool multiplexing thousands of
//! in-flight [`LoadSession`]s, mirroring the server event loop's
//! discipline (PR 7) on the client side.
//!
//! One scheduler (the caller of [`Engine::run_plan`]) walks the arrival
//! plan open-loop: it sleeps until each planned instant, connects, and
//! hands the connected socket to a worker — *regardless of how many
//! earlier sessions are still in flight*. Workers own their sessions
//! outright and drive them from a level-triggered
//! [`pbs_net::poll::Poller`] loop: read interest always, write interest
//! only while a session has queued output, a wake pipe so newly submitted
//! sessions interrupt the wait. Nothing in a worker ever blocks on one
//! session, which is what lets a single thread hold a thousand parked
//! subscribers while reconciliations stream through beside them.
//!
//! Accounting is exact by construction: every submitted session
//! increments `started` and is reaped into exactly one of
//! `completed`/`failed`/`evicted`, so `started == completed + failed +
//! evicted` holds after [`Engine::drain`] — the invariant the acceptance
//! test pins.

use crate::plan::{Arrival, Kind};
use crate::session::{LoadSession, Outcome, PhaseNanos, SessionResult, SessionSpec};
use obs::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a worker's poll wait is bounded: short enough for prompt deadline
/// sweeps and drain response, long enough to stay off the CPU while a
/// thousand subscribers idle.
const POLL_TICK: Duration = Duration::from_millis(100);

/// How many distinct error strings the metrics keep for diagnosis.
const ERROR_SAMPLES: usize = 16;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The server under load.
    pub target: SocketAddr,
    /// Worker threads multiplexing the sessions.
    pub workers: usize,
    /// Protocol parameters for every session.
    pub spec: SessionSpec,
    /// The server's element set as the harness knows it. Full
    /// reconciliation sessions present this set minus a few seeded drops,
    /// so the difference is exactly `drops` elements, none of them pushed
    /// at the server (the run never mutates the store).
    pub base_set: Arc<Vec<u64>>,
    /// Elements each full-reconciliation session drops (its `d`).
    pub drops: usize,
    /// The epoch delta and subscribe sessions present as their cached
    /// baseline.
    pub delta_epoch: u64,
}

/// Cross-thread counters and latency accumulators of one run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Sessions submitted (connect attempts included).
    pub started: AtomicU64,
    /// Sessions that completed their workload.
    pub completed: AtomicU64,
    /// Sessions that failed (connect, transport, protocol, deadline).
    pub failed: AtomicU64,
    /// Parked subscribers terminated by the server before the drain.
    pub evicted: AtomicU64,
    /// Delta sessions that fell back to a full reconciliation.
    pub delta_fallbacks: AtomicU64,
    /// Push batches received by parked subscribers.
    pub pushes: AtomicU64,
    /// Wire bytes received across all sessions.
    pub bytes_in: AtomicU64,
    /// Wire bytes sent across all sessions.
    pub bytes_out: AtomicU64,
    /// Sessions currently in flight (submitted, not yet reaped).
    pub inflight: AtomicU64,
    /// High-water mark of `inflight`.
    pub peak_inflight: AtomicU64,
    /// Subscribers currently parked.
    pub parked: AtomicU64,
    /// High-water mark of `parked`.
    pub peak_parked: AtomicU64,
    /// Per-phase latency histograms, indexed like
    /// [`PhaseNanos::named`].
    pub phases: PhaseHists,
    /// First few error strings, for diagnosis.
    pub errors: Mutex<Vec<String>>,
}

/// Seven histograms, one per [`PhaseNanos`] field, nanosecond samples.
#[derive(Debug, Default)]
pub struct PhaseHists {
    hists: [Histogram; 7],
}

impl PhaseHists {
    /// Record every phase that ran (zero marks — phases the workload kind
    /// skipped — are not samples).
    pub fn record(&self, phases: &PhaseNanos) {
        for (i, (_, v)) in phases.named().iter().enumerate() {
            if *v > 0 {
                self.hists[i].record(*v);
            }
        }
    }

    /// `(name, histogram)` pairs in [`PhaseNanos::named`] order.
    pub fn named(&self) -> [(&'static str, &Histogram); 7] {
        let names = PhaseNanos::default().named();
        [
            (names[0].0, &self.hists[0]),
            (names[1].0, &self.hists[1]),
            (names[2].0, &self.hists[2]),
            (names[3].0, &self.hists[3]),
            (names[4].0, &self.hists[4]),
            (names[5].0, &self.hists[5]),
            (names[6].0, &self.hists[6]),
        ]
    }
}

impl Metrics {
    fn record(&self, result: &SessionResult) {
        match result.outcome {
            Outcome::Completed => self.completed.fetch_add(1, Ordering::Relaxed),
            Outcome::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
            Outcome::Evicted => self.evicted.fetch_add(1, Ordering::Relaxed),
        };
        if result.delta_fallback {
            self.delta_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        self.pushes.fetch_add(result.pushes, Ordering::Relaxed);
        self.bytes_in.fetch_add(result.bytes_in, Ordering::Relaxed);
        self.bytes_out
            .fetch_add(result.bytes_out, Ordering::Relaxed);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        if matches!(result.outcome, Outcome::Completed) {
            self.phases.record(&result.phases);
        }
        if let Some(error) = &result.error {
            let mut errors = self.errors.lock().unwrap();
            if errors.len() < ERROR_SAMPLES {
                errors.push(format!("{:?}/{:?}: {error}", result.kind, result.outcome));
            }
        }
    }

    /// `started == completed + failed + evicted` — exact only after a
    /// drain, monotone `>=` while sessions are in flight.
    pub fn settled(&self) -> bool {
        self.started.load(Ordering::SeqCst)
            == self.completed.load(Ordering::SeqCst)
                + self.failed.load(Ordering::SeqCst)
                + self.evicted.load(Ordering::SeqCst)
    }
}

struct WorkerHandle {
    tx: Option<Sender<LoadSession>>,
    wake: UnixStream,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// The running engine: a scheduler-facing handle over the worker pool.
pub struct Engine {
    config: EngineConfig,
    workers: Vec<WorkerHandle>,
    metrics: Arc<Metrics>,
    drain: Arc<AtomicBool>,
    next_worker: usize,
    run_started: Instant,
}

impl Engine {
    /// Spawn the worker pool.
    pub fn start(config: EngineConfig) -> io::Result<Engine> {
        let metrics = Arc::new(Metrics::default());
        let drain = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let (tx, rx) = std::sync::mpsc::channel();
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_tx.set_nonblocking(true)?;
            wake_rx.set_nonblocking(true)?;
            let worker_metrics = Arc::clone(&metrics);
            let worker_drain = Arc::clone(&drain);
            let thread = std::thread::Builder::new()
                .name(format!("loadgen-worker-{i}"))
                .spawn(move || worker_loop(rx, wake_rx, worker_metrics, worker_drain))?;
            workers.push(WorkerHandle {
                tx: Some(tx),
                wake: wake_tx,
                thread: Some(thread),
            });
        }
        Ok(Engine {
            config,
            workers,
            metrics,
            drain,
            next_worker: 0,
            run_started: Instant::now(),
        })
    }

    /// The shared counters (live — scrape any time).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// When the engine started (achieved-rate accounting).
    pub fn run_started(&self) -> Instant {
        self.run_started
    }

    /// Submit one arrival *now*: connect, start the session state
    /// machine, hand it to a worker. Failures count as started+failed so
    /// the accounting identity holds.
    pub fn submit(&mut self, arrival: &Arrival) {
        self.metrics.started.fetch_add(1, Ordering::SeqCst);
        let inflight = self.metrics.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics
            .peak_inflight
            .fetch_max(inflight, Ordering::SeqCst);

        let connect_started = Instant::now();
        let session = TcpStream::connect(self.config.target)
            .map_err(|e| format!("connect: {e}"))
            .and_then(|stream| {
                let connect = connect_started.elapsed();
                let (set, delta_epoch) = self.session_inputs(arrival);
                LoadSession::start(
                    stream,
                    arrival,
                    set,
                    delta_epoch,
                    connect,
                    connect_started,
                    self.config.spec.clone(),
                )
                .map_err(|e| format!("start: {e}"))
            });
        match session {
            Ok(session) => {
                let w = self.next_worker % self.workers.len();
                self.next_worker += 1;
                let handle = &self.workers[w];
                if let Some(tx) = &handle.tx {
                    if tx.send(session).is_ok() {
                        let _ = (&handle.wake).write(&[1]);
                        return;
                    }
                }
                self.synthetic_failure(arrival.kind, "worker gone".into());
            }
            Err(error) => self.synthetic_failure(arrival.kind, error),
        }
    }

    fn synthetic_failure(&self, kind: Kind, error: String) {
        self.metrics.record(&SessionResult {
            kind,
            outcome: Outcome::Failed,
            error: Some(error),
            phases: PhaseNanos::default(),
            verified: false,
            delta_fallback: false,
            pushes: 0,
            bytes_in: 0,
            bytes_out: 0,
        });
    }

    fn session_inputs(&self, arrival: &Arrival) -> (Vec<u64>, Option<u64>) {
        match arrival.kind {
            Kind::Full | Kind::Pipelined => {
                // Drop `drops` seeded elements from the base set: the
                // difference is exactly those elements, all held by the
                // server, so nothing is pushed and the store is never
                // mutated by the run.
                let base = &*self.config.base_set;
                let mut rng = StdRng::seed_from_u64(arrival.seed);
                let mut dropped = std::collections::HashSet::new();
                let drops = self.config.drops.min(base.len().saturating_sub(1));
                while dropped.len() < drops {
                    dropped.insert(rng.random_range(0..base.len()));
                }
                let set = base
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !dropped.contains(i))
                    .map(|(_, &e)| e)
                    .collect();
                (set, None)
            }
            Kind::Delta | Kind::Subscribe => (Vec::new(), Some(self.config.delta_epoch)),
        }
    }

    /// Walk `plan` open-loop from `start`: sleep until each arrival's
    /// planned instant, then submit it. Late arrivals (scheduler overrun)
    /// are submitted immediately — open-loop never skips offered load.
    pub fn run_plan(&mut self, plan: &[Arrival], start: Instant) {
        for arrival in plan {
            let due = start + arrival.at;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            self.submit(arrival);
        }
    }

    /// Wait for every non-parked session to finish (bounded by
    /// `active_timeout`), optionally hold the parked population for
    /// `park_hold` (so pushes flow to them), then drain: parked
    /// subscribers complete, workers exit. Returns the final metrics.
    pub fn drain(
        mut self,
        active_timeout: Duration,
        park_hold: Duration,
    ) -> (Arc<Metrics>, Duration) {
        let deadline = Instant::now() + active_timeout;
        loop {
            let inflight = self.metrics.inflight.load(Ordering::SeqCst);
            let parked = self.metrics.parked.load(Ordering::SeqCst);
            if inflight == parked || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        std::thread::sleep(park_hold);
        self.drain.store(true, Ordering::SeqCst);
        for w in &mut self.workers {
            w.tx.take(); // disconnect: workers observe Disconnected
            let _ = (&w.wake).write(&[1]);
        }
        for w in &mut self.workers {
            if let Some(thread) = w.thread.take() {
                let _ = thread.join();
            }
        }
        let elapsed = self.run_started.elapsed();
        (Arc::clone(&self.metrics), elapsed)
    }
}

fn worker_loop(
    rx: Receiver<LoadSession>,
    mut wake: UnixStream,
    metrics: Arc<Metrics>,
    drain: Arc<AtomicBool>,
) {
    let mut poller = pbs_net::poll::Poller::new();
    let mut sessions: Vec<LoadSession> = Vec::new();
    let mut was_parked: Vec<bool> = Vec::new();
    let mut disconnected = false;
    loop {
        // Ingest newly submitted sessions.
        loop {
            match rx.try_recv() {
                Ok(session) => {
                    sessions.push(session);
                    was_parked.push(false);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let draining = drain.load(Ordering::SeqCst);
        if draining {
            for s in sessions.iter_mut() {
                s.finish_parked();
            }
        }

        // Deadline sweep, park-gauge maintenance, reap.
        let now = Instant::now();
        let mut i = 0;
        while i < sessions.len() {
            if sessions[i].past_deadline(now) {
                sessions[i].fail_timeout();
            }
            let parked_now = sessions[i].is_parked();
            if parked_now != was_parked[i] {
                if parked_now {
                    let parked = metrics.parked.fetch_add(1, Ordering::SeqCst) + 1;
                    metrics.peak_parked.fetch_max(parked, Ordering::SeqCst);
                } else {
                    metrics.parked.fetch_sub(1, Ordering::SeqCst);
                }
                was_parked[i] = parked_now;
            }
            if sessions[i].is_finished() {
                if was_parked[i] {
                    metrics.parked.fetch_sub(1, Ordering::SeqCst);
                }
                let mut session = sessions.swap_remove(i);
                was_parked.swap_remove(i);
                if let Some(result) = session.take_result() {
                    metrics.record(&result);
                }
            } else {
                i += 1;
            }
        }
        if disconnected && draining && sessions.is_empty() {
            return;
        }

        // Build this wait's interest set: the wake pipe plus one entry
        // per session (write interest only while output is queued).
        let mut interests = Vec::with_capacity(sessions.len() + 1);
        interests.push((wake.as_raw_fd(), pbs_net::poll::Interest::READABLE));
        let mut by_fd = HashMap::with_capacity(sessions.len());
        for (idx, s) in sessions.iter().enumerate() {
            let interest = if s.wants_write() {
                pbs_net::poll::Interest::BOTH
            } else {
                pbs_net::poll::Interest::READABLE
            };
            interests.push((s.fd(), interest));
            by_fd.insert(s.fd(), idx);
        }
        let events = match poller.wait(&interests, Some(POLL_TICK)) {
            Ok(events) => events,
            Err(_) => continue,
        };
        for event in events {
            if event.fd == wake.as_raw_fd() {
                let mut sink = [0u8; 64];
                while matches!(wake.read(&mut sink), Ok(n) if n > 0) {}
                continue;
            }
            if let Some(&idx) = by_fd.get(&event.fd) {
                let s = &mut sessions[idx];
                if event.writable {
                    s.on_writable();
                }
                if event.readable || event.error {
                    s.on_readable();
                }
            }
        }
    }
}
