//! One in-flight load-generator session: the client side of the wire
//! protocol as a non-blocking state machine over
//! [`pbs_net::mux::MuxStream`].
//!
//! [`pbs_net::client::sync`] drives the same protocol with blocking I/O —
//! one OS thread per session. A load generator cannot afford that: the
//! acceptance bar is thousands of concurrent sessions (most of them
//! parked subscribers) per worker thread, so this module re-expresses the
//! client flow the way PR 7's server expresses the Bob side — as a state
//! machine advanced by readiness events, never blocking, with explicit
//! per-phase timing marks that mirror [`pbs_net::client::SyncPhases`]
//! field for field. The protocol logic (handshake validation, delta
//! fallback, estimator exchange, pipelined round loop, final transfer) is
//! deliberately the same decision sequence as `client::sync`, so what the
//! harness measures is what real clients run.

use crate::plan::{Arrival, Kind};
use estimator::{Estimator, TowEstimator};
use pbs_core::{AliceSession, Pbs, PbsConfig, ESTIMATOR_SEED_SALT};
use pbs_net::frame::{EstimatorMsg, Frame, Hello};
use pbs_net::mux::MuxStream;
use pbs_net::NetError;
use std::collections::HashSet;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Protocol parameters shared by every session of a run.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// PBS configuration proposed in each handshake.
    pub pbs: PbsConfig,
    /// Client-side protocol-round cap.
    pub round_cap: u32,
    /// Largest accepted difference parameterization.
    pub max_d: u64,
    /// Frame-size cap of the transport.
    pub max_frame: u32,
    /// Server-side store every session addresses.
    pub store: String,
    /// Wall-clock budget per session; the engine fails sessions that
    /// exceed it (an open-loop harness must never wedge on one peer).
    pub deadline: Duration,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            pbs: PbsConfig::default().unlimited_rounds(),
            round_cap: 32,
            max_d: 1 << 18,
            max_frame: 1 << 20,
            store: String::new(),
            deadline: Duration::from_secs(60),
        }
    }
}

/// Where a finished session ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran its workload to the end (for a subscriber: parked until the
    /// harness drained it).
    Completed,
    /// A parked subscriber terminated by the *server* before the drain —
    /// backpressure eviction or connection loss while parked.
    Evicted,
    /// Anything else: transport error, protocol violation, deadline.
    Failed,
}

/// Per-phase wall-clock marks, mirroring
/// [`pbs_net::client::SyncPhases`] field for field (plus `park` for the
/// time a subscriber spent parked).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// TCP connect (measured by the engine, before the machine starts).
    pub connect: u64,
    /// `Hello` sent → negotiated reply validated.
    pub handshake: u64,
    /// Estimator exchange.
    pub estimate: u64,
    /// The sketch/report round loop.
    pub rounds: u64,
    /// Final transfer and its ack.
    pub transfer: u64,
    /// Delta catch-up stream.
    pub delta: u64,
    /// Whole session, connect included (for subscribers: up to the park).
    pub total: u64,
}

impl PhaseNanos {
    /// `(name, value)` pairs in presentation order — every consumer
    /// (table, JSON, assertions) iterates this one list.
    pub fn named(&self) -> [(&'static str, u64); 7] {
        [
            ("connect", self.connect),
            ("handshake", self.handshake),
            ("estimate", self.estimate),
            ("rounds", self.rounds),
            ("transfer", self.transfer),
            ("delta", self.delta),
            ("total", self.total),
        ]
    }
}

/// What one finished session reports back to the engine.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The planned workload kind.
    pub kind: Kind,
    /// How it ended.
    pub outcome: Outcome,
    /// The failure, for [`Outcome::Failed`]/[`Outcome::Evicted`].
    pub error: Option<String>,
    /// Per-phase latency marks.
    pub phases: PhaseNanos,
    /// Reconciliation sessions: every group checksum verified.
    pub verified: bool,
    /// A requested delta catch-up was refused and the session fell back
    /// to a full reconciliation.
    pub delta_fallback: bool,
    /// Push batches a subscriber received while parked.
    pub pushes: u64,
    /// Wire bytes received, framing included.
    pub bytes_in: u64,
    /// Wire bytes sent, framing included.
    pub bytes_out: u64,
}

#[derive(Debug)]
enum State {
    /// `Hello` queued, awaiting the negotiated reply.
    AwaitHello,
    /// Awaiting the delta catch-up stream.
    AwaitDelta,
    /// Estimator bank queued, awaiting the estimate reply.
    AwaitEstimate,
    /// Sketches queued, awaiting reports.
    AwaitReports,
    /// Final transfer queued, awaiting its ack.
    AwaitAck,
    /// Subscriber parked: folding pushes, answering pings.
    Parked,
    /// Finished — `result` is populated.
    Done,
}

/// One live session. The engine owns a set of these, polls their fds, and
/// calls [`LoadSession::on_readable`]/[`LoadSession::on_writable`] as the
/// socket becomes ready.
#[derive(Debug)]
pub struct LoadSession {
    mux: MuxStream,
    kind: Kind,
    state: State,
    seed: u64,
    spec: SessionSpec,
    /// The client set (full/pipelined kinds; empty for delta/subscribe).
    set: Vec<u64>,
    pipeline_auto: bool,
    grant: u32,
    alice: Option<AliceSession>,
    sketch_m: u32,
    delta_fallback: bool,
    /// Last epoch a parked subscriber advanced to — pushes must arrive in
    /// non-decreasing epoch order.
    parked_epoch: u64,
    pushes: u64,
    started: Instant,
    mark: Instant,
    phases: PhaseNanos,
    result: Option<SessionResult>,
}

impl LoadSession {
    /// Take over a just-connected stream: put it in non-blocking mode and
    /// queue the `Hello`. The arrival supplies the session kind and seed;
    /// `connect` is the measured connect duration, `started` the instant
    /// the connect began (anchors `total`). `delta_epoch` must be set for
    /// [`Kind::Delta`]/[`Kind::Subscribe`].
    pub fn start(
        stream: TcpStream,
        arrival: &Arrival,
        set: Vec<u64>,
        delta_epoch: Option<u64>,
        connect: Duration,
        started: Instant,
        spec: SessionSpec,
    ) -> Result<Self, NetError> {
        let (kind, seed) = (arrival.kind, arrival.seed);
        let mut mux = MuxStream::from_tcp(stream, spec.max_frame, true).map_err(NetError::Io)?;
        let pipeline_auto = kind == Kind::Pipelined;
        let requested_depth = if pipeline_auto { u8::MAX as u32 } else { 1 };
        let mut hello = Hello::from_config(&spec.pbs, seed, 0)
            .with_store(spec.store.clone())
            .with_pipeline(requested_depth);
        hello.delta_epoch = match kind {
            Kind::Delta | Kind::Subscribe => {
                Some(delta_epoch.expect("delta/subscribe sessions need an epoch"))
            }
            Kind::Full | Kind::Pipelined => None,
        };
        mux.queue(&Frame::Hello(hello))?;
        let phases = PhaseNanos {
            connect: connect.as_nanos() as u64,
            ..PhaseNanos::default()
        };
        Ok(LoadSession {
            mux,
            kind,
            state: State::AwaitHello,
            seed,
            spec,
            set,
            pipeline_auto,
            grant: 1,
            alice: None,
            sketch_m: 0,
            delta_fallback: false,
            parked_epoch: 0,
            pushes: 0,
            started,
            mark: Instant::now(),
            phases,
            result: None,
        })
    }

    /// The raw fd the engine polls.
    pub fn fd(&self) -> RawFd {
        self.mux.get_ref().as_raw_fd()
    }

    /// Write interest: only while output is queued.
    pub fn wants_write(&self) -> bool {
        self.mux.pending_out() > 0
    }

    /// `true` once the session has a result to reap.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// `true` while the session is a parked subscriber.
    pub fn is_parked(&self) -> bool {
        matches!(self.state, State::Parked)
    }

    /// The instant the session began (deadline accounting).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Whether the session is past its deadline. Parked subscribers are
    /// exempt — parking indefinitely is their job.
    pub fn past_deadline(&self, now: Instant) -> bool {
        !self.is_parked() && now.duration_since(self.started) > self.spec.deadline
    }

    /// Consume the result after [`LoadSession::is_finished`].
    pub fn take_result(&mut self) -> Option<SessionResult> {
        self.result.take()
    }

    /// Socket writable: drain queued output.
    pub fn on_writable(&mut self) {
        if self.is_finished() {
            return;
        }
        if let Err(e) = self.mux.flush() {
            self.fail(format!("write: {e}"));
        }
    }

    /// Socket readable: buffer input and advance the state machine over
    /// every complete frame.
    pub fn on_readable(&mut self) {
        if self.is_finished() {
            return;
        }
        if let Err(e) = self.mux.fill() {
            self.fail(format!("read: {e}"));
            return;
        }
        loop {
            match self.mux.next_frame() {
                Ok(Some(frame)) => {
                    self.on_frame(frame);
                    if self.is_finished() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.fail(format!("frame: {e}"));
                    return;
                }
            }
        }
        if self.mux.peer_closed() {
            // EOF with no complete frame left. For a parked subscriber
            // that is a server-initiated termination (eviction); for any
            // other state the server hung up mid-protocol.
            if self.is_parked() {
                self.finish(
                    Outcome::Evicted,
                    Some("server closed a parked subscription".into()),
                );
            } else {
                self.fail("connection closed mid-session".into());
            }
        }
        // Frame handlers queue output; push it toward the socket now
        // rather than waiting for the next writable event.
        let _ = self.mux.flush();
    }

    /// Drain a parked subscriber: the harness is done, the park was the
    /// workload, the session completes.
    pub fn finish_parked(&mut self) {
        if self.is_parked() {
            let _ = self.mux.get_ref().shutdown(std::net::Shutdown::Both);
            self.finish(Outcome::Completed, None);
        }
    }

    /// Fail the session from outside (deadline).
    pub fn fail_timeout(&mut self) {
        self.fail(format!(
            "deadline of {:?} exceeded in state {:?}",
            self.spec.deadline, self.state
        ));
    }

    fn fail(&mut self, error: String) {
        // A parked subscriber can only die by the server's hand — that is
        // the eviction bucket, not a harness failure.
        if self.is_parked() {
            self.finish(Outcome::Evicted, Some(error));
        } else {
            self.finish(Outcome::Failed, Some(error));
        }
    }

    fn finish(&mut self, outcome: Outcome, error: Option<String>) {
        if self.is_finished() {
            return;
        }
        if self.phases.total == 0 {
            self.phases.total = self.started.elapsed().as_nanos() as u64;
        }
        let verified = matches!(outcome, Outcome::Completed) && error.is_none();
        self.result = Some(SessionResult {
            kind: self.kind,
            outcome,
            error,
            phases: self.phases,
            verified,
            delta_fallback: self.delta_fallback,
            pushes: self.pushes,
            bytes_in: self.mux.bytes_in(),
            bytes_out: self.mux.bytes_out(),
        });
        self.state = State::Done;
    }

    fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let nanos = now.duration_since(self.mark).as_nanos() as u64;
        self.mark = now;
        nanos
    }

    fn complete(&mut self) {
        self.phases.total = self.started.elapsed().as_nanos() as u64;
        self.finish(Outcome::Completed, None);
    }

    fn protocol_error(&mut self, context: &str, frame: &Frame) {
        self.fail(format!(
            "{context}: unexpected frame type {}",
            frame.type_byte()
        ));
    }

    fn queue(&mut self, frame: &Frame) -> bool {
        if let Err(e) = self.mux.queue(frame) {
            self.fail(format!("queue: {e}"));
            return false;
        }
        true
    }

    fn on_frame(&mut self, frame: Frame) {
        match self.state {
            State::AwaitHello => self.on_hello(frame),
            State::AwaitDelta => self.on_delta(frame),
            State::AwaitEstimate => self.on_estimate(frame),
            State::AwaitReports => self.on_reports(frame),
            State::AwaitAck => self.on_ack(frame),
            State::Parked => self.on_push(frame),
            State::Done => {}
        }
    }

    fn on_hello(&mut self, frame: Frame) {
        let negotiated = match frame {
            Frame::Hello(h) => h,
            other => return self.protocol_error("handshake", &other),
        };
        if negotiated.version == 0 || negotiated.version > pbs_net::PROTOCOL_VERSION {
            return self.fail(format!(
                "server negotiated unsupported version {}",
                negotiated.version
            ));
        }
        self.grant = if negotiated.version >= 2 {
            let requested = if self.pipeline_auto {
                u8::MAX as u32
            } else {
                1
            };
            requested.min(negotiated.pipeline.max(1) as u32)
        } else {
            1
        };
        self.phases.handshake = self.lap();
        match self.kind {
            Kind::Delta | Kind::Subscribe => {
                if negotiated.version < 3 {
                    return self.fail(format!(
                        "server negotiated v{} — delta sessions need v3",
                        negotiated.version
                    ));
                }
                self.state = State::AwaitDelta;
            }
            Kind::Full | Kind::Pipelined => self.begin_estimate(),
        }
    }

    fn begin_estimate(&mut self) {
        let est_seed = xhash::derive_seed(self.seed, ESTIMATOR_SEED_SALT);
        let mut bank = TowEstimator::new(self.spec.pbs.estimator_sketches, est_seed);
        bank.insert_slice(&self.set);
        if self.queue(&Frame::EstimatorExchange(EstimatorMsg::TowBank(
            bank.to_bytes(),
        ))) {
            self.state = State::AwaitEstimate;
        }
    }

    fn on_delta(&mut self, frame: Frame) {
        match frame {
            Frame::DeltaBatch { .. } => {}
            Frame::DeltaDone { epoch } => {
                self.phases.delta = self.lap();
                match self.kind {
                    Kind::Delta => self.complete(),
                    Kind::Subscribe => {
                        // The catch-up baseline; park from here. `total`
                        // covers up to the park, matching how a real
                        // subscriber perceives time-to-live-stream.
                        self.parked_epoch = epoch;
                        self.phases.total = self.started.elapsed().as_nanos() as u64;
                        if self.queue(&Frame::Subscribe { epoch }) {
                            self.state = State::Parked;
                        }
                    }
                    _ => unreachable!("only delta kinds await delta streams"),
                }
            }
            Frame::FullResyncRequired { .. } => {
                // Changelog cannot cover our epoch: fall back to the
                // classic reconciliation, exactly like `client::sync`.
                self.phases.delta = self.lap();
                self.delta_fallback = true;
                self.begin_estimate();
            }
            other => self.protocol_error("delta stream", &other),
        }
    }

    fn on_estimate(&mut self, frame: Frame) {
        let d_param = match frame {
            Frame::EstimatorExchange(EstimatorMsg::Estimate { d_param, .. }) => d_param.max(1),
            other => return self.protocol_error("estimate", &other),
        };
        if d_param > self.spec.max_d {
            return self.fail(format!(
                "server demanded d = {d_param}, above the cap {}",
                self.spec.max_d
            ));
        }
        self.phases.estimate = self.lap();
        let params = Pbs::new(self.spec.pbs).plan(d_param as usize);
        self.sketch_m = params.m;
        self.alice = Some(AliceSession::new(
            self.spec.pbs,
            params,
            &self.set,
            self.seed,
        ));
        self.queue_sketches();
    }

    fn queue_sketches(&mut self) {
        let alice = self.alice.as_mut().expect("round loop has a session");
        let depth = if self.pipeline_auto {
            alice.next_pipeline_depth(self.grant)
        } else {
            self.grant
        };
        let layers = depth.min(self.spec.round_cap - alice.round());
        let batch = alice.start_rounds(layers);
        let m = self.sketch_m;
        if self.queue(&Frame::Sketches { m, batch }) {
            self.state = State::AwaitReports;
        }
    }

    fn on_reports(&mut self, frame: Frame) {
        let reports = match frame {
            Frame::Reports(reports) => reports,
            other => return self.protocol_error("rounds", &other),
        };
        let alice = self.alice.as_mut().expect("round loop has a session");
        let status = alice.apply_reports(&reports);
        if !status.all_verified && alice.round() < self.spec.round_cap {
            return self.queue_sketches();
        }
        let verified = status.all_verified;
        self.phases.rounds = self.lap();
        let alice = self.alice.take().expect("round loop has a session");
        let holdings: HashSet<u64> = self.set.iter().copied().collect();
        let recovered = alice.into_recovered();
        let pushed: Vec<u64> = recovered
            .into_iter()
            .filter(|e| holdings.contains(e))
            .collect();
        if !verified {
            return self.fail("round cap exhausted before verification".into());
        }
        if self.queue(&Frame::Done(pushed)) {
            self.state = State::AwaitAck;
        }
    }

    fn on_ack(&mut self, frame: Frame) {
        match frame {
            Frame::Done(_) | Frame::DeltaDone { .. } => {
                self.phases.transfer = self.lap();
                self.complete();
            }
            other => self.protocol_error("final ack", &other),
        }
    }

    fn on_push(&mut self, frame: Frame) {
        match frame {
            Frame::DeltaBatch { .. } => {}
            Frame::DeltaDone { epoch } => {
                if epoch < self.parked_epoch {
                    return self.fail(format!(
                        "push went backwards: epoch {epoch} after {}",
                        self.parked_epoch
                    ));
                }
                self.parked_epoch = epoch;
                self.pushes += 1;
            }
            Frame::Ping { nonce } => {
                self.queue(&Frame::Pong { nonce });
            }
            Frame::FullResyncRequired { .. } => {
                self.finish(
                    Outcome::Evicted,
                    Some("subscription evicted under backpressure".into()),
                );
            }
            other => self.protocol_error("subscription stream", &other),
        }
    }
}
