//! Fault-injection TCP proxy: a std-only relay the harness places on a
//! link to inject partitions, delays, connection drops, and mid-stream
//! cuts — with an exact per-direction byte ledger.
//!
//! Every byte the proxy reads is accounted into exactly one of
//! `forwarded` or `discarded` per direction, so
//! `received == forwarded + discarded` holds at every quiescent point —
//! the conservation invariant `tests/mesh_soak.rs` asserts on every link,
//! and on a fault-free link `forwarded` reconciles exactly against the
//! endpoints' own wire ledgers ([`pbs_net::client::SyncReport`] /
//! [`crate::MeshStats`-style counters]).
//!
//! The upstream address is mutable ([`FaultProxy::set_upstream`]), which
//! is how kill/restart churn is modeled: the restarted server binds a
//! fresh port and the proxy is repointed, while the proxy's own listen
//! address — the address peers dial — never changes.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Read timeout of the relay loops: the latency bound on a partition
/// severing a live connection.
const RELAY_TICK: Duration = Duration::from_millis(25);

/// Per-direction and per-connection counters. All cumulative.
#[derive(Debug, Default)]
struct Counters {
    received_up: AtomicU64,
    forwarded_up: AtomicU64,
    discarded_up: AtomicU64,
    received_down: AtomicU64,
    forwarded_down: AtomicU64,
    discarded_down: AtomicU64,
    accepted: AtomicU64,
    refused: AtomicU64,
    cut: AtomicU64,
}

/// A frozen copy of the proxy's ledger. `up` is client→server,
/// `down` is server→client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Bytes read from clients.
    pub received_up: u64,
    /// Bytes delivered to the server.
    pub forwarded_up: u64,
    /// Bytes read from clients but never delivered (partition/cut).
    pub discarded_up: u64,
    /// Bytes read from the server.
    pub received_down: u64,
    /// Bytes delivered to clients.
    pub forwarded_down: u64,
    /// Bytes read from the server but never delivered.
    pub discarded_down: u64,
    /// Connections relayed.
    pub accepted: u64,
    /// Connections refused (partition, seeded drop, dead upstream).
    pub refused: u64,
    /// Connections severed mid-stream by a cut rule.
    pub cut: u64,
}

impl LedgerSnapshot {
    /// The conservation invariant: every received byte is forwarded or
    /// discarded, in both directions.
    pub fn conserved(&self) -> bool {
        self.received_up == self.forwarded_up + self.discarded_up
            && self.received_down == self.forwarded_down + self.discarded_down
    }
}

#[derive(Debug)]
struct Controls {
    upstream: Mutex<SocketAddr>,
    partitioned: AtomicBool,
    delay_micros: AtomicU64,
    /// Probability (in 1/1000) of refusing a new connection.
    drop_milli: AtomicU64,
    /// xorshift state of the seeded drop coin.
    drop_state: AtomicU64,
    /// Connections still to be cut mid-stream.
    cuts_remaining: AtomicU64,
    /// Upstream-direction byte budget a cut connection gets.
    cut_after_bytes: AtomicU64,
    shutdown: AtomicBool,
    counters: Counters,
}

/// A running fault proxy. Dropping the handle shuts it down.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    controls: Arc<Controls>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral loopback port, relaying to `upstream`.
    pub fn spawn(upstream: SocketAddr) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let controls = Arc::new(Controls {
            upstream: Mutex::new(upstream),
            partitioned: AtomicBool::new(false),
            delay_micros: AtomicU64::new(0),
            drop_milli: AtomicU64::new(0),
            drop_state: AtomicU64::new(0x5EED_F00D),
            cuts_remaining: AtomicU64::new(0),
            cut_after_bytes: AtomicU64::new(u64::MAX),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let thread_controls = Arc::clone(&controls);
        let accept_thread = std::thread::Builder::new()
            .name(format!("fault-proxy-{}", addr.port()))
            .spawn(move || accept_loop(listener, thread_controls))?;
        Ok(FaultProxy {
            addr,
            controls,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address peers dial (stable for the proxy's lifetime).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Repoint the relay (kill/restart churn: the reborn server has a new
    /// port). Existing connections are unaffected.
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *self.controls.upstream.lock().unwrap() = upstream;
    }

    /// Sever the link: live connections are cut (their unread bytes
    /// discarded) and new ones refused, until [`FaultProxy::heal`].
    pub fn partition(&self) {
        self.controls.partitioned.store(true, Ordering::SeqCst);
    }

    /// Lift a partition.
    pub fn heal(&self) {
        self.controls.partitioned.store(false, Ordering::SeqCst);
    }

    /// `true` while partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.controls.partitioned.load(Ordering::SeqCst)
    }

    /// Delay every forwarded chunk by `delay` (per chunk, per direction).
    pub fn set_delay(&self, delay: Duration) {
        self.controls.delay_micros.store(
            delay.as_micros().min(u64::MAX as u128) as u64,
            Ordering::SeqCst,
        );
    }

    /// Refuse each new connection with probability `p`, decided by a
    /// seeded coin — the same seed replays the same refusal pattern for a
    /// fixed connection order.
    pub fn set_drop_probability(&self, p: f64, seed: u64) {
        self.controls
            .drop_milli
            .store((p.clamp(0.0, 1.0) * 1000.0) as u64, Ordering::SeqCst);
        self.controls.drop_state.store(seed | 1, Ordering::SeqCst);
    }

    /// Cut the next `n` relayed connections once `after_bytes` have
    /// flowed client→server — the mid-session churn primitive (a server
    /// killed between handshake and rounds looks exactly like this to the
    /// client).
    pub fn cut_next_connections(&self, n: u64, after_bytes: u64) {
        self.controls
            .cut_after_bytes
            .store(after_bytes, Ordering::SeqCst);
        self.controls.cuts_remaining.store(n, Ordering::SeqCst);
    }

    /// Freeze the ledger.
    pub fn ledger(&self) -> LedgerSnapshot {
        let c = &self.controls.counters;
        LedgerSnapshot {
            received_up: c.received_up.load(Ordering::SeqCst),
            forwarded_up: c.forwarded_up.load(Ordering::SeqCst),
            discarded_up: c.discarded_up.load(Ordering::SeqCst),
            received_down: c.received_down.load(Ordering::SeqCst),
            forwarded_down: c.forwarded_down.load(Ordering::SeqCst),
            discarded_down: c.discarded_down.load(Ordering::SeqCst),
            accepted: c.accepted.load(Ordering::SeqCst),
            refused: c.refused.load(Ordering::SeqCst),
            cut: c.cut.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting and tear the proxy down. Live relays notice within
    /// a tick.
    pub fn shutdown(&self) {
        self.controls.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: TcpListener, controls: Arc<Controls>) {
    loop {
        if controls.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => handle_connection(client, &controls),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(RELAY_TICK);
            }
            Err(_) => std::thread::sleep(RELAY_TICK),
        }
    }
}

/// Seeded Bernoulli coin over an atomic xorshift state: deterministic for
/// a fixed connection arrival order.
fn drop_coin(controls: &Controls) -> bool {
    let p = controls.drop_milli.load(Ordering::SeqCst);
    if p == 0 {
        return false;
    }
    let mut s = controls.drop_state.load(Ordering::SeqCst);
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    controls.drop_state.store(s, Ordering::SeqCst);
    s % 1000 < p
}

fn handle_connection(client: TcpStream, controls: &Arc<Controls>) {
    if controls.partitioned.load(Ordering::SeqCst) || drop_coin(controls) {
        controls.counters.refused.fetch_add(1, Ordering::SeqCst);
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let upstream_addr = *controls.upstream.lock().unwrap();
    let Ok(server) = TcpStream::connect(upstream_addr) else {
        controls.counters.refused.fetch_add(1, Ordering::SeqCst);
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    controls.counters.accepted.fetch_add(1, Ordering::SeqCst);

    // Does a cut rule claim this connection?
    let cut_budget = loop {
        let remaining = controls.cuts_remaining.load(Ordering::SeqCst);
        if remaining == 0 {
            break None;
        }
        if controls
            .cuts_remaining
            .compare_exchange(remaining, remaining - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            break Some(Arc::new(AtomicU64::new(
                controls.cut_after_bytes.load(Ordering::SeqCst),
            )));
        }
    };
    if cut_budget.is_some() {
        controls.counters.cut.fetch_add(1, Ordering::SeqCst);
    }

    let _ = client.set_read_timeout(Some(RELAY_TICK));
    let _ = server.set_read_timeout(Some(RELAY_TICK));
    let (client_r, server_w) = (client.try_clone(), server.try_clone());
    let (Ok(client_r), Ok(server_w)) = (client_r, server_w) else {
        return;
    };

    let up_controls = Arc::clone(controls);
    let up_budget = cut_budget.clone();
    std::thread::spawn(move || {
        relay(client_r, server_w, up_controls, Direction::Up, up_budget);
    });
    let down_controls = Arc::clone(controls);
    std::thread::spawn(move || {
        relay(server, client, down_controls, Direction::Down, cut_budget);
    });
}

#[derive(Clone, Copy)]
enum Direction {
    Up,
    Down,
}

fn relay(
    mut from: TcpStream,
    mut to: TcpStream,
    controls: Arc<Controls>,
    direction: Direction,
    cut_budget: Option<Arc<AtomicU64>>,
) {
    let counters = &controls.counters;
    let (received, forwarded, discarded) = match direction {
        Direction::Up => (
            &counters.received_up,
            &counters.forwarded_up,
            &counters.discarded_up,
        ),
        Direction::Down => (
            &counters.received_down,
            &counters.forwarded_down,
            &counters.discarded_down,
        ),
    };
    let mut chunk = [0u8; 16 * 1024];
    let sever = |from: &TcpStream, to: &TcpStream| {
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    };
    loop {
        if controls.shutdown.load(Ordering::SeqCst) {
            sever(&from, &to);
            return;
        }
        let n = match from.read(&mut chunk) {
            Ok(0) => {
                // Half-close: propagate the write-side shutdown so framed
                // EOF semantics survive the relay.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle tick: a partition severs even a silent connection.
                if controls.partitioned.load(Ordering::SeqCst) {
                    sever(&from, &to);
                    return;
                }
                continue;
            }
            Err(_) => {
                sever(&from, &to);
                return;
            }
        };
        received.fetch_add(n as u64, Ordering::SeqCst);
        if controls.partitioned.load(Ordering::SeqCst) {
            discarded.fetch_add(n as u64, Ordering::SeqCst);
            sever(&from, &to);
            return;
        }
        // Cut rule: forward only what the shared budget allows, discard
        // the rest, and sever. The budget is shared across directions but
        // only decremented upstream — "the server died after seeing this
        // many request bytes".
        let mut deliver = n;
        if let Some(budget) = &cut_budget {
            if matches!(direction, Direction::Up) {
                // Only this thread decrements the budget; the down-stream
                // thread just watches for it reaching zero.
                let before = budget.load(Ordering::SeqCst);
                budget.store(before.saturating_sub(n as u64), Ordering::SeqCst);
                if before <= n as u64 {
                    // Budget exhausted by this chunk.
                    deliver = before as usize;
                    if deliver > 0 {
                        let delay = controls.delay_micros.load(Ordering::SeqCst);
                        if delay > 0 {
                            std::thread::sleep(Duration::from_micros(delay));
                        }
                        if to.write_all(&chunk[..deliver]).is_ok() {
                            forwarded.fetch_add(deliver as u64, Ordering::SeqCst);
                        } else {
                            discarded.fetch_add(deliver as u64, Ordering::SeqCst);
                        }
                    }
                    discarded.fetch_add((n - deliver) as u64, Ordering::SeqCst);
                    sever(&from, &to);
                    return;
                }
            } else if budget.load(Ordering::SeqCst) == 0 {
                discarded.fetch_add(n as u64, Ordering::SeqCst);
                sever(&from, &to);
                return;
            }
        }
        let delay = controls.delay_micros.load(Ordering::SeqCst);
        if delay > 0 {
            std::thread::sleep(Duration::from_micros(delay));
        }
        if to.write_all(&chunk[..deliver]).is_ok() {
            forwarded.fetch_add(deliver as u64, Ordering::SeqCst);
        } else {
            discarded.fetch_add(deliver as u64, Ordering::SeqCst);
            sever(&from, &to);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A byte-echo upstream.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 || stream.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn relays_bytes_and_keeps_the_ledger_exact() {
        let (upstream, _guard) = echo_server();
        let proxy = FaultProxy::spawn(upstream).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let payload = vec![0xABu8; 100_000];
        conn.write_all(&payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
        drop(conn);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let ledger = proxy.ledger();
            if ledger.forwarded_up == payload.len() as u64
                && ledger.forwarded_down == payload.len() as u64
            {
                assert!(ledger.conserved(), "{ledger:?}");
                assert_eq!(ledger.accepted, 1);
                assert_eq!(ledger.discarded_up + ledger.discarded_down, 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ledger never settled: {ledger:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn partition_refuses_and_heal_restores() {
        let (upstream, _guard) = echo_server();
        let proxy = FaultProxy::spawn(upstream).unwrap();
        proxy.partition();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The accept side closes immediately: first read sees EOF/reset.
        let mut buf = [0u8; 8];
        assert!(matches!(conn.read(&mut buf), Ok(0) | Err(_)));
        proxy.heal();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        let ledger = proxy.ledger();
        assert!(ledger.conserved());
        assert_eq!(ledger.refused, 1);
    }

    #[test]
    fn cut_rule_severs_after_the_budget() {
        let (upstream, _guard) = echo_server();
        let proxy = FaultProxy::spawn(upstream).unwrap();
        proxy.cut_next_connections(1, 10);
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // More than the budget: the connection must die without
        // delivering it all.
        let _ = conn.write_all(&[0u8; 1000]);
        let mut total = 0usize;
        let mut buf = [0u8; 256];
        loop {
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => total += n,
            }
        }
        assert!(total <= 10, "echoed {total} bytes past a 10-byte budget");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let ledger = proxy.ledger();
            if ledger.cut == 1 && ledger.conserved() && ledger.forwarded_up <= 10 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "cut never settled: {ledger:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The next connection is untouched.
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }
}
