//! Run reporting: fold the engine's [`Metrics`] into a human table and a
//! machine-readable JSON document.
//!
//! The JSON layer is hand-rolled (the workspace is std-only) and stable:
//! the acceptance tests parse it back, and CI archives it next to the
//! bench JSON. Latencies are reported in microseconds; every
//! [`crate::session::PhaseNanos`] phase appears with `p50`/`p99`/`p999`/
//! `count`, whether or not the workload mix exercised it.

use crate::engine::Metrics;
use crate::plan::PlanConfig;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Everything a finished run reports.
#[derive(Debug)]
pub struct Report {
    /// Master seed of the run (reprints for replay).
    pub seed: u64,
    /// Offered arrival rate (sessions/second) from the plan.
    pub offered_rate: f64,
    /// Achieved completion rate over the run's wall clock.
    pub achieved_rate: f64,
    /// Wall clock of the whole run, drain included.
    pub elapsed: Duration,
    /// Counters, frozen.
    pub started: u64,
    /// See [`Metrics::completed`].
    pub completed: u64,
    /// See [`Metrics::failed`].
    pub failed: u64,
    /// See [`Metrics::evicted`].
    pub evicted: u64,
    /// See [`Metrics::delta_fallbacks`].
    pub delta_fallbacks: u64,
    /// See [`Metrics::pushes`].
    pub pushes: u64,
    /// See [`Metrics::peak_inflight`].
    pub peak_inflight: u64,
    /// See [`Metrics::peak_parked`].
    pub peak_parked: u64,
    /// Wire bytes received / sent across all sessions.
    pub bytes_in: u64,
    /// See [`Report::bytes_in`].
    pub bytes_out: u64,
    /// Per-phase `(name, p50, p99, p999, count)`, microseconds.
    pub phases: Vec<(&'static str, u64, u64, u64, u64)>,
    /// Sampled error strings.
    pub errors: Vec<String>,
}

impl Report {
    /// Freeze `metrics` into a report.
    pub fn build(metrics: &Metrics, plan: &PlanConfig, elapsed: Duration) -> Report {
        let completed = metrics.completed.load(Ordering::SeqCst);
        let phases = metrics
            .phases
            .named()
            .iter()
            .map(|(name, hist)| {
                (
                    *name,
                    hist.quantile(0.5) / 1_000,
                    hist.quantile(0.99) / 1_000,
                    hist.quantile(0.999) / 1_000,
                    hist.count(),
                )
            })
            .collect();
        Report {
            seed: plan.seed,
            offered_rate: plan.rate,
            achieved_rate: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            elapsed,
            started: metrics.started.load(Ordering::SeqCst),
            completed,
            failed: metrics.failed.load(Ordering::SeqCst),
            evicted: metrics.evicted.load(Ordering::SeqCst),
            delta_fallbacks: metrics.delta_fallbacks.load(Ordering::SeqCst),
            pushes: metrics.pushes.load(Ordering::SeqCst),
            peak_inflight: metrics.peak_inflight.load(Ordering::SeqCst),
            peak_parked: metrics.peak_parked.load(Ordering::SeqCst),
            bytes_in: metrics.bytes_in.load(Ordering::SeqCst),
            bytes_out: metrics.bytes_out.load(Ordering::SeqCst),
            phases,
            errors: metrics.errors.lock().unwrap().clone(),
        }
    }

    /// The accounting identity every drained run must satisfy.
    pub fn settled(&self) -> bool {
        self.started == self.completed + self.failed + self.evicted
    }

    /// The human table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let secs = self.elapsed.as_secs_f64();
        out.push_str(&format!(
            "pbs-loadgen: seed {:#x}  offered {:.0}/s  achieved {:.0}/s  elapsed {:.2}s\n",
            self.seed, self.offered_rate, self.achieved_rate, secs
        ));
        out.push_str(&format!(
            "sessions: {} started = {} completed + {} failed + {} evicted  \
             (peak in-flight {}, peak parked {})\n",
            self.started,
            self.completed,
            self.failed,
            self.evicted,
            self.peak_inflight,
            self.peak_parked
        ));
        out.push_str(&format!(
            "traffic: {} B in / {} B out ({:.0} B/s in, {:.0} B/s out), \
             {} pushes, {} delta fallbacks\n",
            self.bytes_in,
            self.bytes_out,
            self.bytes_in as f64 / secs.max(1e-9),
            self.bytes_out as f64 / secs.max(1e-9),
            self.pushes,
            self.delta_fallbacks
        ));
        out.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>10} {:>8}\n",
            "phase", "p50 µs", "p99 µs", "p999 µs", "count"
        ));
        for (name, p50, p99, p999, count) in &self.phases {
            out.push_str(&format!(
                "{name:<10} {p50:>10} {p99:>10} {p999:>10} {count:>8}\n"
            ));
        }
        for error in &self.errors {
            out.push_str(&format!("error: {error}\n"));
        }
        out
    }

    /// The machine-readable document.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"offered_rate\": {:.3},\n  \"achieved_rate\": {:.3},\n  \"elapsed_secs\": {:.6},\n",
            self.offered_rate,
            self.achieved_rate,
            self.elapsed.as_secs_f64()
        ));
        for (key, value) in [
            ("started", self.started),
            ("completed", self.completed),
            ("failed", self.failed),
            ("evicted", self.evicted),
            ("delta_fallbacks", self.delta_fallbacks),
            ("pushes", self.pushes),
            ("peak_inflight", self.peak_inflight),
            ("peak_parked", self.peak_parked),
            ("bytes_in", self.bytes_in),
            ("bytes_out", self.bytes_out),
        ] {
            out.push_str(&format!("  \"{key}\": {value},\n"));
        }
        out.push_str("  \"phases_us\": {\n");
        for (i, (name, p50, p99, p999, count)) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{name}\": {{\"p50\": {p50}, \"p99\": {p99}, \
                 \"p999\": {p999}, \"count\": {count}}}{comma}\n"
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"errors\": [");
        for (i, error) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\"",
                error.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Metrics;

    #[test]
    fn json_carries_every_phase_and_the_identity() {
        let metrics = Metrics::default();
        metrics.started.store(5, Ordering::SeqCst);
        metrics.completed.store(3, Ordering::SeqCst);
        metrics.failed.store(1, Ordering::SeqCst);
        metrics.evicted.store(1, Ordering::SeqCst);
        let report = Report::build(&metrics, &PlanConfig::default(), Duration::from_secs(2));
        assert!(report.settled());
        let json = report.json();
        for phase in [
            "connect",
            "handshake",
            "estimate",
            "rounds",
            "transfer",
            "delta",
            "total",
        ] {
            assert!(
                json.contains(&format!("\"{phase}\": {{\"p50\"")),
                "phase {phase} missing from JSON:\n{json}"
            );
        }
        assert!(json.contains("\"started\": 5"));
        let table = report.table();
        assert!(table.contains("5 started = 3 completed + 1 failed + 1 evicted"));
    }
}
