//! Satellite: client resilience under connection churn, driven through
//! the fault-injection proxy.
//!
//! * `sync_with_retry` rides out a server that dies *mid-session* — after
//!   the handshake, before the reconciliation rounds — not just a refused
//!   connect: the proxy severs the first attempts after exactly one
//!   `Hello`'s worth of client bytes, and a later attempt succeeds with
//!   the same report a fault-free run produces.
//! * A `Subscription` behind a delaying proxy still folds pushed deltas
//!   in epoch order: delayed, coalesced bursts arrive as contiguous
//!   `from_epoch → to_epoch` windows whose union is exactly the applied
//!   mutation history, and server shutdown ends the stream cleanly.

use loadgen::FaultProxy;
use pbs_core::PbsConfig;
use pbs_net::client::{sync_with_retry, ClientConfig, RetryPolicy, SyncClient};
use pbs_net::frame::{Frame, Hello};
use pbs_net::server::{Server, ServerConfig};
use pbs_net::store::MutableStore;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn retry_survives_a_server_killed_between_handshake_and_rounds() {
    let store = Arc::new(MutableStore::new(1..=200u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let proxy = FaultProxy::spawn(server.local_addr()).expect("spawn proxy");

    // Sever the first two connections after exactly one Hello of
    // client→server bytes: the handshake completes (the server's Hello
    // comes back), then the link dies under the estimator exchange — the
    // mid-session shape of a server crash, not a refused connect.
    let config = ClientConfig::default();
    let hello_len = Frame::Hello(Hello::from_config(
        &PbsConfig::default().unlimited_rounds(),
        config.seed,
        0,
    ))
    .wire_len();
    proxy.cut_next_connections(2, hello_len);

    let local: Vec<u64> = (11..=200).collect();
    let policy = RetryPolicy {
        attempts: 5,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        jitter_seed: 7,
    };
    let (report, attempts) =
        sync_with_retry(proxy.addr(), &local, &config, &policy).expect("retry rides out the cuts");
    assert_eq!(attempts, 3, "two severed attempts, then a clean one");
    assert!(report.verified);
    let mut recovered = report.recovered.clone();
    recovered.sort_unstable();
    assert_eq!(recovered, (1..=10).collect::<Vec<u64>>());
    assert!(report.pushed.is_empty(), "nothing to push: local ⊂ server");

    let ledger = proxy.ledger();
    assert_eq!(ledger.cut, 2, "both cut budgets were claimed");
    assert!(ledger.conserved(), "relay byte accounting must balance");

    proxy.shutdown();
    let stats = server.shutdown();
    assert!(stats.sessions_completed >= 1);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
}

#[test]
fn delayed_pushes_fold_in_epoch_order() {
    const BATCHES: u64 = 30;

    let store = Arc::new(MutableStore::new(1..=64u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let proxy = FaultProxy::spawn(server.local_addr()).expect("spawn proxy");
    // Every relayed chunk waits: pushes pile up behind the proxy and
    // arrive late and coalesced — the interesting case for epoch order.
    proxy.set_delay(Duration::from_millis(2));

    let client = SyncClient::connect(proxy.addr()).expect("connect via proxy");
    let mut sub = client.subscribe(store.epoch()).expect("subscribe");
    let catch_up = sub.next().expect("catch-up").expect("catch-up ok");
    assert_eq!(catch_up.batches, 0);
    let baseline = catch_up.to_epoch;

    // Publish while the subscriber reads through the delay.
    let publisher = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for b in 0..BATCHES {
                store.apply(&[100_000 + b * 10, 100_001 + b * 10], &[b + 1]);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let mut batches = 0u64;
    let mut last_epoch = baseline;
    let mut added = HashSet::new();
    let mut removed = HashSet::new();
    while batches < BATCHES {
        let report = sub.next().expect("live stream").expect("push ok");
        assert_eq!(
            report.from_epoch, last_epoch,
            "a pushed window must start where the previous one ended"
        );
        assert!(report.to_epoch > report.from_epoch);
        last_epoch = report.to_epoch;
        batches += report.batches;
        added.extend(report.added.iter().copied());
        removed.extend(report.removed.iter().copied());
    }
    publisher.join().expect("publisher thread");
    assert_eq!(
        last_epoch,
        baseline + BATCHES,
        "no epoch skipped or repeated"
    );
    assert_eq!(added.len() as u64, BATCHES * 2);
    assert_eq!(removed, (1..=BATCHES).collect::<HashSet<u64>>());

    // Shutdown reaches the parked subscriber through the proxy: the
    // stream ends cleanly instead of erroring.
    let reader = std::thread::spawn(move || sub.count());
    let stats = server.shutdown();
    assert_eq!(reader.join().expect("reader"), 0, "clean end after drain");
    assert_eq!(stats.subscribers_evicted, 0);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );

    let ledger = proxy.ledger();
    assert!(ledger.conserved());
    proxy.shutdown();
}
