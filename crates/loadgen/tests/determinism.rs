//! Satellite: seeded determinism. Two runs of `pbs-loadgen --seed S`
//! offer the identical arrival schedule and workload mix — the plan is a
//! pure function of its seed — and the seed is printed on start so any
//! run can be replayed from its log line alone.

use loadgen::{build_plan, Kind, Mix, PlanConfig};
use std::process::Command;

/// Both layers of the plan must replay: the library schedule (instants,
/// kinds, per-session seeds) and the binary's offered side.
#[test]
fn same_seed_same_offered_schedule() {
    let config = PlanConfig {
        sessions: 3_000,
        rate: 1_234.5,
        mix: Mix {
            full: 3,
            delta: 5,
            pipelined: 2,
            subscribe: 7,
        },
        seed: 0xDE7E_2211,
    };
    let a = build_plan(&config);
    let b = build_plan(&config);
    assert_eq!(a, b, "the plan is not a pure function of its seed");

    // A different seed changes the jitter, the kind draws, and the
    // per-session seeds — not just one of them.
    let c = build_plan(&PlanConfig {
        seed: 0xDE7E_2212,
        ..config.clone()
    });
    assert_ne!(
        a.iter().map(|x| x.at).collect::<Vec<_>>(),
        c.iter().map(|x| x.at).collect::<Vec<_>>()
    );
    assert_ne!(
        a.iter().map(|x| x.seed).collect::<Vec<_>>(),
        c.iter().map(|x| x.seed).collect::<Vec<_>>()
    );
    assert_ne!(
        a.iter().map(|x| x.kind).collect::<Vec<_>>(),
        c.iter().map(|x| x.kind).collect::<Vec<_>>()
    );
}

/// Run the binary twice with the same seed: the printed seed line (the
/// replay handle) and the offered composition are identical; only
/// latencies may differ.
#[test]
fn binary_prints_the_seed_and_replays_the_offered_side() {
    let run = || {
        let output = Command::new(env!("CARGO_BIN_EXE_pbs-loadgen"))
            .args([
                "--self-host",
                "64",
                "--sessions",
                "60",
                "--rate",
                "400",
                "--seed",
                "42",
                "--workers",
                "2",
            ])
            .output()
            .expect("run pbs-loadgen");
        assert!(
            output.status.success(),
            "pbs-loadgen failed:\n{}{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("utf8 stdout")
    };
    let (first, second) = (run(), run());

    let seed_line = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("pbs-loadgen: seed "))
            .expect("seed printed on start")
            .to_string()
    };
    assert!(seed_line(&first).contains("0x2a"), "{}", seed_line(&first));
    assert_eq!(
        seed_line(&first),
        seed_line(&second),
        "seed line must replay verbatim"
    );

    // The accounting lines agree on everything offered-side: both runs
    // started the same 60 sessions and settled them all.
    for out in [&first, &second] {
        assert!(
            out.contains("60 started = 60 completed + 0 failed + 0 evicted"),
            "unexpected accounting:\n{out}"
        );
    }

    // And the schedule those flags imply is byte-stable: what the binary
    // offered is exactly what this library call replays.
    let plan = build_plan(&PlanConfig {
        sessions: 60,
        rate: 400.0,
        mix: Mix::default(),
        seed: 42,
    });
    assert_eq!(plan.len(), 60);
    assert!(plan.iter().any(|a| a.kind == Kind::Subscribe));
}
