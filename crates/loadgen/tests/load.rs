//! The load-harness acceptance test: thousands of concurrent in-flight
//! sessions — most of them parked subscribers — against a loopback
//! server, with the accounting identity holding *exactly* and every
//! protocol phase showing up in the JSON report.
//!
//! This is the claim the crate exists to measure: a session population in
//! the thousands on one box, mixed full/delta/pipelined reconciliations
//! streaming through beside a standing crowd of parked `Subscribe`
//! streams, and nobody lost — `started == completed + failed + evicted`
//! down to the last session.

use loadgen::{build_plan, Engine, EngineConfig, Kind, Mix, PlanConfig, Report, SessionSpec};
use pbs_net::server::{Server, ServerConfig};
use pbs_net::setio;
use pbs_net::store::MutableStore;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn two_thousand_concurrent_sessions_settle_exactly() {
    const SESSIONS: usize = 2_600;
    // 90% subscribe: the parked population carries the concurrency floor
    // (≥ 2,000 in flight, ≥ 1,000 parked) while full/delta/pipelined
    // sessions keep every phase histogram populated.
    const MIX: Mix = Mix {
        full: 1,
        delta: 1,
        pipelined: 1,
        subscribe: 27,
    };

    let base: Vec<u64> = setio::demo_set(256, 0xB0B);
    let store = Arc::new(MutableStore::new(base.iter().copied()));
    let epoch = store.epoch();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            max_subscribers: 8192,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");

    let plan_config = PlanConfig {
        sessions: SESSIONS,
        rate: 2_000.0,
        mix: MIX,
        seed: 0x10AD_ACCE,
    };
    let plan = build_plan(&plan_config);
    let subscribers = plan.iter().filter(|a| a.kind == Kind::Subscribe).count();
    assert!(
        subscribers >= 2_000,
        "the seeded mix must park ≥ 2,000 subscribers, drew {subscribers}"
    );

    let mut engine = Engine::start(EngineConfig {
        target: server.local_addr(),
        workers: 4,
        spec: SessionSpec::default(),
        base_set: Arc::new(base),
        drops: 8,
        delta_epoch: epoch,
    })
    .expect("start engine");
    let started = Instant::now();
    engine.run_plan(&plan, started);

    // Let the active sessions finish and the subscribers park: in flight
    // == parked means the whole surviving population is parked.
    let metrics = Arc::clone(engine.metrics());
    let settle_deadline = Instant::now() + Duration::from_secs(120);
    while metrics.inflight.load(Ordering::SeqCst) != metrics.parked.load(Ordering::SeqCst) {
        assert!(
            Instant::now() < settle_deadline,
            "active sessions did not finish: {} in flight, {} parked",
            metrics.inflight.load(Ordering::SeqCst),
            metrics.parked.load(Ordering::SeqCst)
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // One store mutation while the crowd is parked: every subscriber gets
    // the push, proving they are live sessions, not leaked sockets.
    store.apply(&[9_000_001, 9_000_002, 9_000_003], &[]);
    let (metrics, elapsed) = engine.drain(Duration::from_secs(120), Duration::from_secs(2));

    let report = Report::build(&metrics, &plan_config, elapsed);
    eprintln!("{}", report.table());
    assert!(
        report.settled(),
        "accounting violation: {} started != {} + {} + {}",
        report.started,
        report.completed,
        report.failed,
        report.evicted
    );
    assert_eq!(report.started, SESSIONS as u64);
    assert_eq!(report.failed, 0, "errors: {:?}", report.errors);
    assert_eq!(report.evicted, 0, "errors: {:?}", report.errors);
    assert!(
        report.peak_inflight >= 2_000,
        "peak in-flight {} under the 2,000 floor",
        report.peak_inflight
    );
    assert!(
        report.peak_parked >= 1_000,
        "peak parked {} under the 1,000 floor",
        report.peak_parked
    );
    assert_eq!(
        report.delta_fallbacks, 0,
        "the baseline epoch never ages out"
    );
    assert!(
        report.pushes >= 1_000,
        "only {} of ~{} parked subscribers saw the push",
        report.pushes,
        subscribers
    );

    // The JSON report carries p50/p99/p999 for every protocol phase, and
    // the mix exercised every phase at least once.
    let json = report.json();
    for phase in [
        "connect",
        "handshake",
        "estimate",
        "rounds",
        "transfer",
        "delta",
        "total",
    ] {
        assert!(
            json.contains(&format!("\"{phase}\": {{\"p50\"")),
            "phase {phase} missing from JSON:\n{json}"
        );
    }
    let phase_count = |name: &str| {
        report
            .phases
            .iter()
            .find(|(n, ..)| *n == name)
            .map(|&(_, _, _, _, count)| count)
            .expect("phase present")
    };
    assert_eq!(phase_count("connect"), report.completed);
    assert_eq!(phase_count("total"), report.completed);
    assert!(phase_count("estimate") > 0, "no full/pipelined session ran");
    assert!(phase_count("rounds") > 0);
    assert!(phase_count("transfer") > 0);
    assert!(phase_count("delta") > 0, "no delta/subscribe session ran");

    // The server saw the same story: every accepted session accounted
    // for, no panics, no evictions.
    let stats = server.shutdown();
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "a server-side session leaked"
    );
    assert_eq!(stats.subscribers_evicted, 0);
    assert!(stats.subscriptions >= subscribers as u64);
}
