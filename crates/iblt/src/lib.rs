//! Invertible Bloom Lookup Tables (IBLT / "invertible Bloom filter").
//!
//! The IBF is the substrate of the paper's two IBF-based baselines:
//! Difference Digest \[15\] and Graphene \[32\] (§7). Each cell carries three
//! fields — `count`, `keySum`, `hashSum` — each one machine word of
//! `log|U|` bits, which is why IBF-based reconciliation costs roughly
//! `3 · (#cells) · log|U|` bits on the wire and why, with the ~2d cells the
//! decoder needs, Difference Digest lands at about 6× the theoretical
//! minimum (§7, §8.1).
//!
//! Supported operations:
//!
//! * [`Iblt::insert`] / [`Iblt::remove`] an element, or a whole slice at a
//!   time through the batched kernels [`Iblt::insert_batch`] /
//!   [`Iblt::remove_batch`] (four keys hashed per step, no per-key
//!   allocations, per-table-precomputed hash seeds),
//! * [`Iblt::subtract`] another IBLT cell-wise (the "difference" IBF), or
//!   several at once in one fused pass with [`Iblt::subtract_batch`],
//! * [`Iblt::peel`] / [`Iblt::try_peel`] the difference into the two
//!   one-sided difference sets using a worklist peeling decoder (find a pure
//!   cell, extract, push newly pure cells — no full-table rescans).
//!   [`Iblt::try_peel`] reports a stuck decoder (no pure cell left but the
//!   table is not empty) as an explicit [`PeelError::Stuck`] carrying the
//!   partial result, instead of silently truncating.
//!
//! # Peeling engines
//!
//! Peeling is memory-latency-bound on large tables: every extraction makes
//! `hash_count` random 24-byte probes, and once the table outgrows the L2
//! cache each probe is a DRAM round trip. Two engines share the same cell
//! layout (tables are bit-identical however they are peeled, so either side
//! of a reconciliation may use either engine):
//!
//! * the **wave peeler** ([`PeelStrategy::Wave`]) — 32 extractions hashed
//!   and prefetched per wave so their misses overlap; the right shape for
//!   tables that already fit in cache, and the PR-2 baseline the sub-table
//!   engine is gated against, and
//! * the **sub-table peeler** ([`PeelStrategy::SubTable`]) — the cell index
//!   space is partitioned into L2-sized shards; each shard's peel cascade
//!   runs entirely inside its cache-resident cell range, and an extraction
//!   whose other cell indices land in a different shard buffers those
//!   updates into that shard's *spill queue* (a sequential append) instead
//!   of taking the random DRAM miss. A shard drains its spill inbox before
//!   judging its own candidates — the discipline that keeps a key that goes
//!   pure in two shards at once from being extracted twice — and the passes
//!   repeat until no shard holds work. One final sequential sweep decides
//!   completeness. With the `parallel` feature, shards peel as independent
//!   units within a round ([`protocol::par_map`]), with the spill exchange
//!   and a duplicate-extraction fix-up at the round barrier.
//!
//! [`PeelStrategy::Auto`] (what [`Iblt::peel`]/[`Iblt::try_peel`] use)
//! dispatches by table size. Because peeling is confluent — the unpeelable
//! 2-core of the underlying hypergraph is unique — both engines recover
//! exactly the same element sets, report the same completeness, and leave a
//! stuck table in the same final state; `tests/subtable_equivalence.rs`
//! pins this for complete, stuck-partial and cross-shard-spill cases.
//! Confluence rests on the partitioned index mapping: hash function *i*
//! maps into its own disjoint `cells / hash_count` slice, so a key's cell
//! indices are always pairwise distinct and no cell can masquerade as pure
//! with the wrong sign.
//!
//! A third form moves the sharding into the *construction*:
//! [`SubtableIblt`] routes each key by a top-level hash to one of several
//! independent shard-sized mini-IBLTs — PBS's own element-grouping idea
//! applied to the table layout. There are no cross-shard edges at all, so
//! every probe of a shard's peel is cache-resident with zero spill
//! traffic, and the shards decode as fully independent units
//! ([`SubtableIblt::try_peel_parallel`] under the `parallel` feature). The
//! trade: it is a different layout — not cell-compatible with a flat
//! [`Iblt`] — and the binomial key split means a shard can run
//! proportionally hotter than the table average, so size it with slight
//! headroom over the flat ~2d rule. `BENCH_decode_path.json`'s gated
//! `iblt_peel_subtable` ratio measures this layout against the flat wave
//! peel at a deliberately TLB-hostile table size.
//!
//! # Degenerate shapes
//!
//! [`Iblt::new`] clamps a zero cell count or zero hash count to 1 instead
//! of panicking — and rounds `cells` up to at least one cell per hash
//! function so the per-function index partitions are nonempty — so hostile
//! or rounded-to-zero wire parameters can never turn `hash % cells` into a
//! divide-by-zero inside a decode path; [`Iblt::try_new`] reports the same
//! conditions as a typed [`ShapeError`] for callers that want to refuse
//! rather than clamp.
//!
//! The seed's per-element scalar path (per-call seed derivation, per-key
//! index allocation, final full-table emptiness rescan) is kept verbatim as
//! [`Iblt::insert_reference`] / [`Iblt::peel_reference`]: it is the ground
//! truth for the batched-vs-scalar property tests and the baseline the
//! `BENCH_decode_path.json` speedups are measured against.
//!
//! # Example
//!
//! ```
//! use iblt::Iblt;
//!
//! let mut a = Iblt::new(64, 4, 7);
//! a.insert_all(1..=100u64);
//! let mut b = Iblt::new(64, 4, 7);
//! b.insert_all(4..=103u64);
//! let diff = Iblt::diff_and_peel(&a, &b);
//! assert!(diff.complete);
//! let mut only_a = diff.only_in_self.clone();
//! only_a.sort_unstable();
//! assert_eq!(only_a, vec![1, 2, 3]);      // A \ B
//! let mut only_b = diff.only_in_other.clone();
//! only_b.sort_unstable();
//! assert_eq!(only_b, vec![101, 102, 103]); // B \ A
//! ```

#![warn(missing_docs)]

use xhash::{derive_seed, xxhash64, xxhash64_u64};

/// Seed-derivation label of the check-hash function.
const CHECK_SALT: u64 = 0xC0FFEE;
/// Seed-derivation label base of the cell-index hash functions.
const INDEX_SALT: u64 = 0x1D11;

/// One IBLT cell: `count`, `keySum`, `hashSum`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Signed number of elements hashed into this cell (insertions minus
    /// deletions; negative after subtracting a larger table).
    pub count: i64,
    /// XOR of all element keys hashed into this cell.
    pub key_sum: u64,
    /// XOR of the check-hashes of all elements hashed into this cell.
    pub hash_sum: u64,
}

impl Cell {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.hash_sum == 0
    }
}

/// Result of peeling a difference IBLT.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeelResult {
    /// Elements present in the *minuend* (the table `subtract` was called on)
    /// but not in the subtrahend — for `IBLT(A) − IBLT(B)` this is `A\B`.
    pub only_in_self: Vec<u64>,
    /// Elements present in the subtrahend only — `B\A`.
    pub only_in_other: Vec<u64>,
    /// `true` if the peeling process emptied every cell; `false` means the
    /// decode failed (too many differences for the table size).
    pub complete: bool,
}

impl PeelResult {
    /// All recovered difference elements regardless of side.
    pub fn all(&self) -> impl Iterator<Item = u64> + '_ {
        self.only_in_self
            .iter()
            .copied()
            .chain(self.only_in_other.iter().copied())
    }

    /// Total number of recovered elements.
    pub fn len(&self) -> usize {
        self.only_in_self.len() + self.only_in_other.len()
    }

    /// `true` when nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why [`Iblt::try_peel`] could not fully decode a difference table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeelError {
    /// The decoder got stuck: no pure cell remains but the table is not
    /// empty (the difference exceeds the peeling threshold for this table
    /// size, or a hash collision produced an unpeelable 2-core). The
    /// elements recovered before the decoder stalled are returned so callers
    /// can still use the partial decode — but they must treat it as such.
    Stuck {
        /// Everything peeled before the decoder stalled (`complete == false`).
        partial: PeelResult,
        /// Number of nonempty cells left un-decoded.
        stuck_cells: usize,
    },
}

impl std::fmt::Display for PeelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeelError::Stuck {
                partial,
                stuck_cells,
            } => write!(
                f,
                "IBLT peeling stuck: {} cells undecodable after recovering {} elements",
                stuck_cells,
                partial.len()
            ),
        }
    }
}

impl std::error::Error for PeelError {}

/// Why [`Iblt::try_new`] rejected a table shape.
///
/// Both conditions would otherwise surface as a divide-by-zero (every cell
/// index is `hash % cells`) or an unusable table deep inside a decode path,
/// which is exactly where hostile wire parameters end up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// `cells == 0`: every `hash % cells` would divide by zero.
    ZeroCells,
    /// `hash_count == 0`: no element could ever be stored or peeled.
    ZeroHashes,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ZeroCells => write!(f, "IBLT needs at least one cell"),
            ShapeError::ZeroHashes => write!(f, "IBLT needs at least one hash function"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Table size (in cells) at which [`PeelStrategy::Auto`] switches from the
/// wave peeler to the sub-table engine: below this the whole table
/// (24 bytes/cell) fits in a typical L2 and sharding only adds bookkeeping.
const SUBTABLE_MIN_CELLS: usize = 1 << 16;

/// Default sub-table shard size: 8192 cells × 24 B = 192 KiB of cells,
/// sized to sit in a typical L2 alongside the shard's candidate stack and
/// the spill queues being appended to.
pub const DEFAULT_SHARD_CELLS: usize = 1 << 13;

/// Which peeling engine [`Iblt::try_peel_mut_with`] runs.
///
/// Peeling is confluent (the unpeelable 2-core of the underlying hypergraph
/// is unique), so every strategy recovers the same element sets, reports
/// the same completeness and leaves a stuck table in the same final state —
/// the choice is purely a performance matter. See the
/// [crate-level docs](crate) for how the engines differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelStrategy {
    /// Choose by table size: tables of at least 2¹⁶ cells peel through
    /// cache-resident sub-tables (shards peeled concurrently when the
    /// `parallel` feature is on), smaller ones through the wave peeler.
    /// This is what [`Iblt::peel`] / [`Iblt::try_peel`] and their `_mut`
    /// forms use.
    Auto,
    /// The flat wave peeler: 32 extractions hashed and prefetched per wave
    /// over the unpartitioned table.
    Wave,
    /// Cache-resident sub-tables with cross-shard spill queues.
    SubTable {
        /// Cells per shard; rounded up to a power of two and clamped to at
        /// least 16. [`DEFAULT_SHARD_CELLS`] suits common L2 sizes. Tables
        /// that fit in a single shard fall back to the wave peeler.
        shard_cells: usize,
        /// Peel each round's ready shards as independent units over worker
        /// threads. Only meaningful with the `parallel` feature; without it
        /// the serial visit-pass engine runs.
        parallel: bool,
    },
}

/// A buffered cross-shard cell update: `key` (with `check`, its cached
/// check-hash) is toggled out of cell `cell` with sign `sign` when the
/// owning shard next drains its inbox. 24 bytes, so spill queues stream
/// densely instead of costing the random probe they replace.
#[derive(Debug, Clone, Copy)]
struct Spill {
    key: u64,
    check: u64,
    cell: u32,
    sign: i8,
}

/// An invertible Bloom lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iblt {
    cells: Vec<Cell>,
    hash_count: u32,
    seed: u64,
    /// Per-hash-function index seeds, derived once at construction so the
    /// hot paths pay one hash per (key, function) instead of a seed
    /// derivation (itself a hash) plus a hash. Deterministic in `seed`.
    index_seeds: Vec<u64>,
    /// Check-hash seed, likewise derived once.
    check_seed: u64,
    /// Cells per hash-function partition: hash `i` maps into the disjoint
    /// slice `[i·p, (i+1)·p)`, so a key's `hash_count` cell indices are
    /// always pairwise distinct. Without this, a key whose two index hashes
    /// collide contributes ±2 to one cell, and such a cell plus one
    /// opposite-side key can masquerade as pure with the *wrong sign* — a
    /// "ghost" whose extraction corrupts the cascade and makes the decode
    /// order-dependent. Distinct indices eliminate ghosts, which is what
    /// makes peeling confluent and every peel engine exactly equivalent.
    partition_cells: u64,
}

/// Hint the cache that `cells[i]` is about to be touched. Used by the
/// peel engines to overlap the random-access misses of upcoming probes
/// instead of paying them one dependent load at a time.
#[inline]
fn prefetch_cell(cells: &[Cell], i: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `i` is in bounds (always a `% cells` or `% partition`
    // result); prefetch has no architectural effect beyond the cache.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(cells.as_ptr().add(i) as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (cells, i);
    }
}

/// Apply `(key, delta)` to every cell the key maps to. Free function over
/// the split-out fields so the batched and scalar paths share it without
/// re-borrowing the whole table.
#[inline]
fn apply_one(
    cells: &mut [Cell],
    index_seeds: &[u64],
    check_seed: u64,
    p: u64,
    key: u64,
    delta: i64,
) {
    let check = xxhash64_u64(key, check_seed);
    for (i, &s) in index_seeds.iter().enumerate() {
        let j = (i as u64 * p + xxhash64_u64(key, s) % p) as usize;
        let cell = &mut cells[j];
        cell.count += delta;
        cell.key_sum ^= key;
        cell.hash_sum ^= check;
    }
}

impl Iblt {
    /// Create an IBLT with `cells` cells and `hash_count` hash functions,
    /// keyed by `seed`. Two tables must share all three parameters to be
    /// subtracted from each other.
    ///
    /// A zero `cells` or `hash_count` is clamped to 1 rather than accepted
    /// (it would make every cell-index computation a divide-by-zero) or
    /// panicked on (hostile wire parameters must not bring down a worker
    /// mid-decode), and `cells` is rounded up to at least one cell per hash
    /// function so the per-function index partitions are nonempty. Use
    /// [`Iblt::try_new`] to refuse degenerate shapes instead.
    pub fn new(cells: usize, hash_count: u32, seed: u64) -> Self {
        let hash_count = hash_count.max(1);
        let cells = cells.max(hash_count as usize);
        let index_seeds = (0..hash_count as u64)
            .map(|i| derive_seed(seed, INDEX_SALT + i))
            .collect();
        Iblt {
            cells: vec![Cell::default(); cells],
            hash_count,
            seed,
            index_seeds,
            check_seed: derive_seed(seed, CHECK_SALT),
            partition_cells: cells as u64 / hash_count as u64,
        }
    }

    /// Checked counterpart of [`Iblt::new`]: refuses degenerate shapes with
    /// a typed [`ShapeError`] instead of clamping them. This is the entry
    /// point for wire-facing callers that must reject a peer's zero-cell or
    /// zero-hash sketch parameters outright.
    pub fn try_new(cells: usize, hash_count: u32, seed: u64) -> Result<Self, ShapeError> {
        if cells == 0 {
            return Err(ShapeError::ZeroCells);
        }
        if hash_count == 0 {
            return Err(ShapeError::ZeroHashes);
        }
        Ok(Iblt::new(cells, hash_count, seed))
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.hash_count
    }

    /// Read-only view of the cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Wire size in bits: three `log|U|`-bit words per cell (the paper's
    /// accounting for IBF communication; §7). `universe_bits` is `log|U|`.
    pub fn wire_bits(&self, universe_bits: u32) -> u64 {
        3 * universe_bits as u64 * self.cells.len() as u64
    }

    /// Insert an element.
    pub fn insert(&mut self, key: u64) {
        apply_one(
            &mut self.cells,
            &self.index_seeds,
            self.check_seed,
            self.partition_cells,
            key,
            1,
        );
    }

    /// Remove an element (the table tolerates removals of absent elements;
    /// the cell counts simply go negative, as required for difference IBLTs).
    pub fn remove(&mut self, key: u64) {
        apply_one(
            &mut self.cells,
            &self.index_seeds,
            self.check_seed,
            self.partition_cells,
            key,
            -1,
        );
    }

    /// Toggle a whole slice of keys by `delta`: the 4-wide batched kernel.
    ///
    /// Four keys advance together — their four check-hashes are computed
    /// up front, then each hash function's four cell indices are resolved
    /// and applied in one step — so the four index hashes per function are
    /// independent and overlap in the pipeline. Cell updates commute
    /// (`+=`/`^=`), so the final table state is identical to applying the
    /// keys one at a time.
    fn apply_batch(&mut self, keys: &[u64], delta: i64) {
        let p = self.partition_cells;
        let cells = &mut self.cells;
        let index_seeds = &self.index_seeds;
        let check_seed = self.check_seed;
        let mut chunks = keys.chunks_exact(4);
        for quad in &mut chunks {
            let keys4 = [quad[0], quad[1], quad[2], quad[3]];
            let checks = keys4.map(|k| xxhash64_u64(k, check_seed));
            for (i, &s) in index_seeds.iter().enumerate() {
                let base = i as u64 * p;
                let idx = keys4.map(|k| (base + xxhash64_u64(k, s) % p) as usize);
                for k in 0..4 {
                    let cell = &mut cells[idx[k]];
                    cell.count += delta;
                    cell.key_sum ^= keys4[k];
                    cell.hash_sum ^= checks[k];
                }
            }
        }
        for &key in chunks.remainder() {
            apply_one(cells, index_seeds, check_seed, p, key, delta);
        }
    }

    /// Insert a slice of keys through the batched kernel. Equivalent to
    /// calling [`Iblt::insert`] per key.
    pub fn insert_batch(&mut self, keys: &[u64]) {
        self.apply_batch(keys, 1);
    }

    /// Remove a slice of keys through the batched kernel. Equivalent to
    /// calling [`Iblt::remove`] per key.
    pub fn remove_batch(&mut self, keys: &[u64]) {
        self.apply_batch(keys, -1);
    }

    /// Insert a whole set (buffered into the batched kernel).
    pub fn insert_all(&mut self, keys: impl IntoIterator<Item = u64>) {
        let mut buf = [0u64; 64];
        let mut n = 0;
        for k in keys {
            buf[n] = k;
            n += 1;
            if n == buf.len() {
                self.insert_batch(&buf);
                n = 0;
            }
        }
        self.insert_batch(&buf[..n]);
    }

    /// Cell-wise subtraction: after `a.subtract(&b)`, `a` encodes the
    /// symmetric difference of the two original sets.
    ///
    /// # Panics
    /// Panics if the two tables have different sizes, hash counts or seeds.
    pub fn subtract(&mut self, other: &Iblt) {
        self.subtract_batch(&[other]);
    }

    /// Subtract several tables in one fused pass over the cells: each cell
    /// of `self` is loaded once and every subtrahend's matching cell is
    /// applied to it, instead of streaming the whole table through the cache
    /// once per subtrahend.
    ///
    /// # Panics
    /// Panics if any table has a different size, hash count or seed.
    pub fn subtract_batch(&mut self, others: &[&Iblt]) {
        for other in others {
            assert_eq!(self.cells.len(), other.cells.len(), "cell count mismatch");
            assert_eq!(self.hash_count, other.hash_count, "hash count mismatch");
            assert_eq!(self.seed, other.seed, "seed mismatch");
        }
        for (i, a) in self.cells.iter_mut().enumerate() {
            for other in others {
                let b = &other.cells[i];
                a.count -= b.count;
                a.key_sum ^= b.key_sum;
                a.hash_sum ^= b.hash_sum;
            }
        }
    }

    /// Indices of every cell with a ±1 count — the peeler's initial
    /// candidate list (full purity, including the check hash, is
    /// established when a candidate is popped), in ascending order. With the
    /// `parallel` feature the per-cell scan fans out over worker threads
    /// through [`protocol::par_map`]; output order is identical.
    fn candidate_cells(&self) -> Vec<usize> {
        let candidate = |i: &usize| matches!(self.cells[*i].count, 1 | -1);
        #[cfg(feature = "parallel")]
        {
            const CHUNK: usize = 8192;
            if self.cells.len() >= 2 * CHUNK {
                let ranges: Vec<(usize, usize)> = (0..self.cells.len())
                    .step_by(CHUNK)
                    .map(|s| (s, (s + CHUNK).min(self.cells.len())))
                    .collect();
                let lists = protocol::par_map(&ranges, |&(s, e)| {
                    (s..e).filter(candidate).collect::<Vec<usize>>()
                });
                return lists.concat();
            }
        }
        (0..self.cells.len()).filter(candidate).collect()
    }

    /// Peel a difference IBLT into its two sides, reporting a stuck decoder
    /// as an error.
    ///
    /// Worklist peeling: seed the worklist with every pure cell, then
    /// repeatedly pop one, report its key on the side given by the count's
    /// sign, remove the key from all its cells and push any cell that just
    /// became pure — no rescans of the full table. Runs the
    /// [`PeelStrategy::Auto`] engine choice; use [`Iblt::try_peel_with`] to
    /// pick one explicitly.
    ///
    /// Returns [`PeelError::Stuck`] — carrying the partial decode — when the
    /// worklist drains while nonempty cells remain (the difference exceeds
    /// the peeling threshold, §8.1.1).
    pub fn try_peel(&self) -> Result<PeelResult, PeelError> {
        self.clone().try_peel_mut()
    }

    /// [`Iblt::try_peel`] with an explicit engine choice.
    pub fn try_peel_with(&self, strategy: PeelStrategy) -> Result<PeelResult, PeelError> {
        self.clone().try_peel_mut_with(strategy)
    }

    /// Destructive counterpart of [`Iblt::try_peel`]: peels *this* table
    /// in place instead of cloning it first. On success every cell is left
    /// empty; on [`PeelError::Stuck`] the unpeelable cells remain. Callers
    /// that already own a scratch difference table (see
    /// [`Iblt::diff_and_peel_batch`]) use this to skip the extra full-table
    /// copy [`Iblt::try_peel`] pays.
    pub fn try_peel_mut(&mut self) -> Result<PeelResult, PeelError> {
        self.try_peel_mut_with(PeelStrategy::Auto)
    }

    /// [`Iblt::try_peel_mut`] with an explicit engine choice. Peeling is
    /// confluent, so every strategy produces the same result and final
    /// table state; see [`PeelStrategy`].
    pub fn try_peel_mut_with(&mut self, strategy: PeelStrategy) -> Result<PeelResult, PeelError> {
        match strategy {
            PeelStrategy::Auto => {
                if self.cells.len() >= SUBTABLE_MIN_CELLS {
                    self.peel_subtable_mut(DEFAULT_SHARD_CELLS, true)
                } else {
                    self.peel_wave_mut()
                }
            }
            PeelStrategy::Wave => self.peel_wave_mut(),
            PeelStrategy::SubTable {
                shard_cells,
                parallel,
            } => self.peel_subtable_mut(shard_cells, parallel),
        }
    }

    /// The flat wave peeling engine ([`PeelStrategy::Wave`]).
    fn peel_wave_mut(&mut self) -> Result<PeelResult, PeelError> {
        /// Keys extracted per wave. Extractions of *distinct* pure keys
        /// commute (every cell update is a `+=`/`^=`), so a whole wave's
        /// index hashes can be computed and its cell lines prefetched before
        /// any update lands — the random-access misses of up to
        /// `WAVE · hash_count` cells overlap instead of serializing key by
        /// key, which is where a peel over a larger-than-L2 table spends
        /// most of its time.
        const WAVE: usize = 32;

        let mut queue = self.candidate_cells();
        let mut result = PeelResult {
            only_in_self: Vec::with_capacity(queue.len()),
            only_in_other: Vec::new(),
            complete: false,
        };

        let p = self.partition_cells;
        let check_seed = self.check_seed;
        let hash_count = self.index_seeds.len();
        let cells = &mut self.cells;
        let index_seeds = &self.index_seeds;
        let prefetch = prefetch_cell;

        let mut wave: Vec<(u64, i64, u64)> = Vec::with_capacity(WAVE); // (key, sign, check)
        let mut wave_idx: Vec<usize> = Vec::with_capacity(WAVE * hash_count);
        loop {
            // Fill a wave with currently-pure cells. The queue holds lazy
            // candidates (pushed on a count of ±1 alone), so full purity —
            // including the check hash, computed once and reused as the
            // removal mask — is established here. A key pure in two cells at
            // once must not be extracted twice, so a repeat within the wave
            // closes the wave (the duplicate cell goes back on the queue;
            // applying the wave empties it, and the re-check at the next
            // fill skips it).
            wave.clear();
            while wave.len() < WAVE {
                let Some(i) = queue.pop() else { break };
                let c = &cells[i];
                if c.count != 1 && c.count != -1 {
                    continue;
                }
                let check = xxhash64_u64(c.key_sum, check_seed);
                if check != c.hash_sum {
                    continue;
                }
                if wave.iter().any(|&(k, _, _)| k == c.key_sum) {
                    queue.push(i);
                    break;
                }
                wave.push((c.key_sum, c.count, check));
            }
            if wave.is_empty() {
                break;
            }
            // Start pulling the next wave's fill candidates in now: the
            // whole apply phase below overlaps their (random, usually cold)
            // loads, which a prefetch issued right before the fill loop
            // could not.
            for &i in queue.iter().rev().take(WAVE) {
                prefetch(cells, i);
            }

            // Hash every wave key's cell indices (independent chains), then
            // one prefetch sweep so the random cell lines are pulled in
            // concurrently instead of one miss at a time.
            wave_idx.clear();
            for &(key, _, _) in &wave {
                for (h, &s) in index_seeds.iter().enumerate() {
                    wave_idx.push((h as u64 * p + xxhash64_u64(key, s) % p) as usize);
                }
            }
            for &j in &wave_idx {
                prefetch(cells, j);
            }

            // Apply the wave: toggle each key out of its cells; any cell
            // left with a ±1 count is a new lazy candidate.
            for (w, &(key, sign, check)) in wave.iter().enumerate() {
                if sign == 1 {
                    result.only_in_self.push(key);
                } else {
                    result.only_in_other.push(key);
                }
                for &j in &wave_idx[w * hash_count..(w + 1) * hash_count] {
                    let cell = &mut cells[j];
                    cell.count -= sign;
                    cell.key_sum ^= key;
                    cell.hash_sum ^= check;
                    if cell.count == 1 || cell.count == -1 {
                        queue.push(j);
                    }
                }
            }
        }

        // One sequential sweep decides the outcome (the hardware prefetcher
        // makes this far cheaper than tracking emptiness on every random
        // update).
        let stuck_cells = cells.iter().filter(|c| !c.is_empty()).count();
        if stuck_cells == 0 {
            result.complete = true;
            Ok(result)
        } else {
            Err(PeelError::Stuck {
                partial: result,
                stuck_cells,
            })
        }
    }

    /// Sub-table peel entry point ([`PeelStrategy::SubTable`]): normalizes
    /// the shard size and falls back to the wave peeler when sharding
    /// cannot help (the table fits in one shard, or its cell indices do not
    /// fit the `u32`s the spill queues carry).
    fn peel_subtable_mut(
        &mut self,
        shard_cells: usize,
        parallel: bool,
    ) -> Result<PeelResult, PeelError> {
        let shard_cells = shard_cells.clamp(16, 1 << 30).next_power_of_two();
        let shard_shift = shard_cells.trailing_zeros();
        let shards = self.cells.len().div_ceil(shard_cells);
        if shards <= 1 || self.cells.len() > u32::MAX as usize {
            return self.peel_wave_mut();
        }
        #[cfg(feature = "parallel")]
        if parallel {
            return self.peel_subtable_rounds(shard_shift, shards);
        }
        let _ = parallel;
        self.peel_subtable_serial(shard_shift, shards)
    }

    /// The serial visit-pass sub-table engine.
    ///
    /// Shard `s` owns the contiguous cell range
    /// `[s << shard_shift, (s + 1) << shard_shift)`. Each pass visits the
    /// shards in order; a visit first drains the shard's spill inbox (the
    /// cross-shard updates buffered by earlier extractions), then runs the
    /// local peel cascade to exhaustion. Every random probe in the cascade
    /// lands inside the shard's cache-resident cell range; an update whose
    /// cell belongs to another shard is appended to that shard's inbox — a
    /// sequential write — instead of taking the random DRAM miss the flat
    /// peeler pays. Passes repeat until no shard holds work, then one
    /// sequential sweep decides completeness.
    ///
    /// Draining before peeling is what makes duplicate extraction
    /// impossible here without any dedupe: when a key goes pure in two
    /// cells at once, whichever cell's shard is visited first extracts it,
    /// and the resulting update reaches the second cell — directly if
    /// local, via the inbox drain if remote — before the second cell's now
    /// stale candidacy is re-examined.
    fn peel_subtable_serial(
        &mut self,
        shard_shift: u32,
        shards: usize,
    ) -> Result<PeelResult, PeelError> {
        let p = self.partition_cells;
        let check_seed = self.check_seed;
        let cells = &mut self.cells[..];
        let index_seeds = &self.index_seeds[..];

        // Per-shard candidate stacks: cells whose count sits at ±1. As in
        // the wave peeler, candidates are lazy — full purity (including the
        // check hash) is established when one is popped.
        let mut cand: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (j, c) in cells.iter().enumerate() {
            if c.count == 1 || c.count == -1 {
                cand[j >> shard_shift].push(j as u32);
            }
        }
        let mut inbox: Vec<Vec<Spill>> = vec![Vec::new(); shards];
        let mut result = PeelResult {
            only_in_self: Vec::new(),
            only_in_other: Vec::new(),
            complete: false,
        };

        let mut draining: Vec<Spill> = Vec::new();
        loop {
            let mut did_work = false;
            for s in 0..shards {
                if inbox[s].is_empty() && cand[s].is_empty() {
                    continue;
                }
                did_work = true;
                // Drain the inbox first (see above). Swapped out through a
                // reused scratch vector so the cascade below can append new
                // spills to any shard, including a later visit of this one.
                std::mem::swap(&mut draining, &mut inbox[s]);
                // The first drains of a visit hit a still-cold shard;
                // pulling a few entries ahead overlaps those misses instead
                // of paying them one dependent load at a time.
                for (d, e) in draining.iter().enumerate() {
                    if let Some(ahead) = draining.get(d + 8) {
                        prefetch_cell(cells, ahead.cell as usize);
                    }
                    let cell = &mut cells[e.cell as usize];
                    cell.count -= e.sign as i64;
                    cell.key_sum ^= e.key;
                    cell.hash_sum ^= e.check;
                    if cell.count == 1 || cell.count == -1 {
                        cand[s].push(e.cell);
                    }
                }
                draining.clear();
                // Local cascade.
                while let Some(j) = cand[s].pop() {
                    let c = &cells[j as usize];
                    if c.count != 1 && c.count != -1 {
                        continue;
                    }
                    let key = c.key_sum;
                    let sign = c.count;
                    let check = xxhash64_u64(key, check_seed);
                    if check != c.hash_sum {
                        continue;
                    }
                    if sign == 1 {
                        result.only_in_self.push(key);
                    } else {
                        result.only_in_other.push(key);
                    }
                    for (h, &hs) in index_seeds.iter().enumerate() {
                        let t = (h as u64 * p + xxhash64_u64(key, hs) % p) as usize;
                        if t >> shard_shift == s {
                            let cell = &mut cells[t];
                            cell.count -= sign;
                            cell.key_sum ^= key;
                            cell.hash_sum ^= check;
                            if cell.count == 1 || cell.count == -1 {
                                cand[s].push(t as u32);
                            }
                        } else {
                            inbox[t >> shard_shift].push(Spill {
                                key,
                                check,
                                cell: t as u32,
                                sign: sign as i8,
                            });
                        }
                    }
                }
            }
            if !did_work {
                break;
            }
        }

        let stuck_cells = cells.iter().filter(|c| !c.is_empty()).count();
        if stuck_cells == 0 {
            result.complete = true;
            Ok(result)
        } else {
            Err(PeelError::Stuck {
                partial: result,
                stuck_cells,
            })
        }
    }

    /// The round-parallel sub-table engine (`parallel` feature).
    ///
    /// Shards own the same disjoint cell ranges as in
    /// [`Iblt::peel_subtable_serial`], but within a round every shard with
    /// pending work peels independently on a worker thread
    /// ([`protocol::par_map`]): it drains the inbox snapshot it was handed,
    /// runs its local cascade, and returns its extractions plus outgoing
    /// spills. The spill exchange happens at the round barrier.
    ///
    /// Unlike the serial engine's visit discipline, two shards *can*
    /// extract the same key in the same round (a key pure in cells of two
    /// concurrently peeled shards). The barrier fixes that up: a key
    /// extracted `m` times was toggled out of each of its cells `m` times,
    /// so `m − 1` surplus applications are undone per cell — the updates
    /// commute, so ordering against still-queued spills is irrelevant — and
    /// one occurrence is kept in the result. Confluence then yields the
    /// same sets and final state as every other engine.
    #[cfg(feature = "parallel")]
    fn peel_subtable_rounds(
        &mut self,
        shard_shift: u32,
        shards: usize,
    ) -> Result<PeelResult, PeelError> {
        use std::collections::{HashMap, HashSet};

        /// What one shard produced in one round.
        struct ShardOut {
            /// `(key, sign, check)` of every extraction.
            extracted: Vec<(u64, i64, u64)>,
            /// Updates owed to cells of other shards.
            outgoing: Vec<Spill>,
        }
        /// Base pointer of the cell array, smuggled across the `par_map`
        /// closure boundary; each task touches only its own shard's range.
        /// Accessed through a method so the closure captures the Sync
        /// wrapper itself, not the bare pointer field.
        struct CellsPtr(*mut Cell);
        unsafe impl Sync for CellsPtr {}
        impl CellsPtr {
            fn base(&self) -> *mut Cell {
                self.0
            }
        }

        let p = self.partition_cells;
        let total = self.cells.len();
        let check_seed = self.check_seed;
        let index_seeds: Vec<u64> = self.index_seeds.clone();

        let mut cand: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (j, c) in self.cells.iter().enumerate() {
            if c.count == 1 || c.count == -1 {
                cand[j >> shard_shift].push(j as u32);
            }
        }
        let mut inbox: Vec<Vec<Spill>> = vec![Vec::new(); shards];
        let mut result = PeelResult {
            only_in_self: Vec::new(),
            only_in_other: Vec::new(),
            complete: false,
        };

        loop {
            let mut active: Vec<(usize, Vec<u32>, Vec<Spill>)> = Vec::new();
            for s in 0..shards {
                if !cand[s].is_empty() || !inbox[s].is_empty() {
                    active.push((
                        s,
                        std::mem::take(&mut cand[s]),
                        std::mem::take(&mut inbox[s]),
                    ));
                }
            }
            if active.is_empty() {
                break;
            }
            let ptr = CellsPtr(self.cells.as_mut_ptr());
            let seeds = &index_seeds;
            let outs: Vec<ShardOut> = protocol::par_map(&active, |(s, cand0, inbox0)| {
                let s = *s;
                let lo = s << shard_shift;
                let hi = ((s + 1) << shard_shift).min(total);
                // SAFETY: each active shard appears exactly once per round
                // and this task writes only cells in `[lo, hi)`; shard
                // ranges are disjoint and no other reference to the cell
                // array is live while the round runs.
                let shard: &mut [Cell] =
                    unsafe { std::slice::from_raw_parts_mut(ptr.base().add(lo), hi - lo) };
                let mut out = ShardOut {
                    extracted: Vec::new(),
                    outgoing: Vec::new(),
                };
                let mut work: Vec<u32> = cand0.clone();
                for &e in inbox0 {
                    let cell = &mut shard[e.cell as usize - lo];
                    cell.count -= e.sign as i64;
                    cell.key_sum ^= e.key;
                    cell.hash_sum ^= e.check;
                    if cell.count == 1 || cell.count == -1 {
                        work.push(e.cell);
                    }
                }
                while let Some(j) = work.pop() {
                    let c = &shard[j as usize - lo];
                    if c.count != 1 && c.count != -1 {
                        continue;
                    }
                    let key = c.key_sum;
                    let sign = c.count;
                    let check = xxhash64_u64(key, check_seed);
                    if check != c.hash_sum {
                        continue;
                    }
                    out.extracted.push((key, sign, check));
                    for (h, &hs) in seeds.iter().enumerate() {
                        let t = (h as u64 * p + xxhash64_u64(key, hs) % p) as usize;
                        if t >> shard_shift as usize == s {
                            let cell = &mut shard[t - lo];
                            cell.count -= sign;
                            cell.key_sum ^= key;
                            cell.hash_sum ^= check;
                            if cell.count == 1 || cell.count == -1 {
                                work.push(t as u32);
                            }
                        } else {
                            out.outgoing.push(Spill {
                                key,
                                check,
                                cell: t as u32,
                                sign: sign as i8,
                            });
                        }
                    }
                }
                out
            });

            // Round barrier: count how many shards extracted each key, keep
            // one occurrence, undo the surplus applications.
            let mut times: HashMap<u64, u32> = HashMap::new();
            let mut any_dup = false;
            for out in &outs {
                for &(key, _, _) in &out.extracted {
                    let t = times.entry(key).or_insert(0);
                    *t += 1;
                    any_dup |= *t > 1;
                }
            }
            let mut emitted: HashSet<u64> = HashSet::new();
            for out in outs {
                for (key, sign, check) in out.extracted {
                    if any_dup && times[&key] > 1 && !emitted.insert(key) {
                        // Surplus extraction of a key already reported this
                        // round: undo one application to each of its cells.
                        for (h, &hs) in index_seeds.iter().enumerate() {
                            let t = (h as u64 * p + xxhash64_u64(key, hs) % p) as usize;
                            let cell = &mut self.cells[t];
                            cell.count += sign;
                            cell.key_sum ^= key;
                            cell.hash_sum ^= check;
                            if cell.count == 1 || cell.count == -1 {
                                cand[t >> shard_shift].push(t as u32);
                            }
                        }
                        continue;
                    }
                    if sign == 1 {
                        result.only_in_self.push(key);
                    } else {
                        result.only_in_other.push(key);
                    }
                }
                for e in out.outgoing {
                    inbox[(e.cell as usize) >> shard_shift].push(e);
                }
            }
        }

        let stuck_cells = self.cells.iter().filter(|c| !c.is_empty()).count();
        if stuck_cells == 0 {
            result.complete = true;
            Ok(result)
        } else {
            Err(PeelError::Stuck {
                partial: result,
                stuck_cells,
            })
        }
    }

    /// Peel a difference IBLT into its two sides.
    ///
    /// Convenience wrapper over [`Iblt::try_peel`] for callers that fold the
    /// stuck state into the [`PeelResult::complete`] flag.
    pub fn peel(&self) -> PeelResult {
        match self.try_peel() {
            Ok(result) => result,
            Err(PeelError::Stuck { partial, .. }) => partial,
        }
    }

    /// Destructive counterpart of [`Iblt::peel`]; see [`Iblt::try_peel_mut`].
    pub fn peel_mut(&mut self) -> PeelResult {
        match self.try_peel_mut() {
            Ok(result) => result,
            Err(PeelError::Stuck { partial, .. }) => partial,
        }
    }

    /// Convenience for the reconciliation protocols: build the difference of
    /// two sets' IBLTs and peel it.
    pub fn diff_and_peel(a: &Iblt, b: &Iblt) -> PeelResult {
        let mut d = a.clone();
        d.subtract_batch(&[b]);
        d.peel_mut()
    }

    /// Decode several independent `(minuend, subtrahend)` pairs in one call:
    /// for each pair the difference table is built through the fused
    /// [`Iblt::subtract_batch`] kernel directly into the scratch copy that
    /// the in-place peeler ([`Iblt::peel_mut`]) then consumes, so every pair
    /// costs exactly one table copy instead of the two that `clone` +
    /// `subtract` + borrowing [`Iblt::peel`] used to pay. Results are
    /// positionally identical to calling [`Iblt::diff_and_peel`] per pair.
    ///
    /// This is the decode path of the Strata estimator, whose 32 strata are
    /// subtracted and peeled pairwise in a single batch.
    pub fn diff_and_peel_batch(pairs: &[(&Iblt, &Iblt)]) -> Vec<PeelResult> {
        pairs
            .iter()
            .map(|&(a, b)| {
                let mut d = a.clone();
                d.subtract_batch(&[b]);
                d.peel_mut()
            })
            .collect()
    }

    // -----------------------------------------------------------------------
    // Reference path (the seed's per-element scalar implementation)
    // -----------------------------------------------------------------------

    /// The seed's scalar insert: per-call seed derivation and a per-key
    /// index allocation. Kept as the baseline the `BENCH_decode_path.json`
    /// speedups are measured against and as ground truth for the
    /// batched-vs-scalar property tests. Produces exactly the same table
    /// state as [`Iblt::insert`].
    pub fn insert_reference(&mut self, key: u64) {
        self.apply_reference(key, 1);
    }

    /// Reference counterpart of [`Iblt::remove`]; see
    /// [`Iblt::insert_reference`].
    pub fn remove_reference(&mut self, key: u64) {
        self.apply_reference(key, -1);
    }

    fn apply_reference(&mut self, key: u64, delta: i64) {
        let p = self.partition_cells;
        let check = xxhash64(&key.to_le_bytes(), derive_seed(self.seed, CHECK_SALT));
        let idx: Vec<usize> = (0..self.hash_count as u64)
            .map(|i| {
                (i * p + xxhash64(&key.to_le_bytes(), derive_seed(self.seed, INDEX_SALT + i)) % p)
                    as usize
            })
            .collect();
        for i in idx {
            let cell = &mut self.cells[i];
            cell.count += delta;
            cell.key_sum ^= key;
            cell.hash_sum ^= check;
        }
    }

    /// The seed's peeling decoder: per-key index allocations, per-call seed
    /// derivations and a final full-table emptiness sweep. Same recovered
    /// sets and `complete` flag as [`Iblt::peel`]; kept as the
    /// `BENCH_decode_path.json` baseline.
    pub fn peel_reference(&self) -> PeelResult {
        let reference_check =
            |t: &Iblt, key: u64| xxhash64(&key.to_le_bytes(), derive_seed(t.seed, CHECK_SALT));
        let reference_indices = |t: &Iblt, key: u64| -> Vec<usize> {
            let p = t.partition_cells;
            (0..t.hash_count as u64)
                .map(|i| {
                    (i * p + xxhash64(&key.to_le_bytes(), derive_seed(t.seed, INDEX_SALT + i)) % p)
                        as usize
                })
                .collect()
        };
        let reference_pure = |t: &Iblt, i: usize| {
            let c = &t.cells[i];
            (c.count == 1 || c.count == -1) && reference_check(t, c.key_sum) == c.hash_sum
        };

        let mut work = self.clone();
        let mut result = PeelResult::default();
        let mut queue: Vec<usize> = (0..work.cells.len())
            .filter(|&i| reference_pure(&work, i))
            .collect();

        while let Some(i) = queue.pop() {
            if !reference_pure(&work, i) {
                continue;
            }
            let key = work.cells[i].key_sum;
            let sign = work.cells[i].count;
            if sign == 1 {
                result.only_in_self.push(key);
            } else {
                result.only_in_other.push(key);
            }
            let check = reference_check(&work, key);
            let idx = reference_indices(&work, key);
            for j in idx {
                let cell = &mut work.cells[j];
                cell.count -= sign;
                cell.key_sum ^= key;
                cell.hash_sum ^= check;
                if reference_pure(&work, j) {
                    queue.push(j);
                }
            }
        }

        result.complete = work.cells.iter().all(Cell::is_empty);
        result
    }
}

/// Seed-derivation label of [`SubtableIblt`]'s top-level routing hash.
const SHARD_SALT: u64 = 0x5AB7AB1E;

/// An IBLT *built* as cache-resident sub-tables: elements are grouped by a
/// top-level hash into fixed-size shards — independent mini-IBLTs over
/// disjoint cell ranges — so no peel cascade ever leaves its shard.
///
/// [`PeelStrategy::SubTable`] accelerates peeling a *flat* table by
/// buffering its cross-shard updates in spill queues; this type removes
/// those updates at construction instead. All `hash_count` cells of a key
/// live in the key's home shard, so every probe of a peel is L2-resident
/// no matter how large the whole table grows, and the shards are
/// independently peelable — serially in any order, or in parallel with
/// zero coordination ([`SubtableIblt::try_peel_parallel`], `parallel`
/// feature).
///
/// The layout is part of the code, not of the decoder: two parties must
/// agree on `(cells, hash_count, seed, shard_cells)` for
/// [`SubtableIblt::subtract`] to be meaningful — exactly as they already
/// must agree on a flat table's shape — and a sharded table is *not*
/// cell-compatible with a flat [`Iblt`]. Routing is binomial, so per-shard
/// occupancy fluctuates around the mean; sharded decoding therefore wants
/// a few percent more cell headroom than one flat table of the same total
/// size (see `docs/PERF.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtableIblt {
    shards: Vec<Iblt>,
    shard_cells: usize,
    shard_seed: u64,
}

impl SubtableIblt {
    /// Build an empty sharded table of at least `cells` total cells, split
    /// into shards of `shard_cells` (clamped to at least 16; the total is
    /// rounded up to a whole number of shards). Each shard is a flat
    /// [`Iblt`] under a seed derived from `seed` and its position, so two
    /// tables built with equal parameters are cell-compatible.
    pub fn new(cells: usize, hash_count: u32, seed: u64, shard_cells: usize) -> Self {
        let shard_cells = shard_cells
            .clamp(16, 1 << 30)
            .max(hash_count.max(1) as usize);
        let shards = cells.div_ceil(shard_cells).max(1);
        Self {
            shards: (0..shards)
                .map(|i| {
                    Iblt::new(
                        shard_cells,
                        hash_count,
                        derive_seed(seed, SHARD_SALT ^ i as u64),
                    )
                })
                .collect(),
            shard_cells,
            shard_seed: derive_seed(seed, SHARD_SALT),
        }
    }

    /// Total number of cells across all shards.
    pub fn cell_count(&self) -> usize {
        self.shards.len() * self.shard_cells
    }

    /// Number of shards (independent mini-IBLTs).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cells per shard.
    pub fn shard_cells(&self) -> usize {
        self.shard_cells
    }

    /// The shard `key` routes to.
    fn route(&self, key: u64) -> usize {
        (xxhash64_u64(key, self.shard_seed) % self.shards.len() as u64) as usize
    }

    /// Insert one key into its home shard.
    pub fn insert(&mut self, key: u64) {
        let s = self.route(key);
        self.shards[s].insert(key);
    }

    /// Remove one key from its home shard.
    pub fn remove(&mut self, key: u64) {
        let s = self.route(key);
        self.shards[s].remove(key);
    }

    /// Insert a slice of keys.
    pub fn insert_batch(&mut self, keys: &[u64]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Remove a slice of keys.
    pub fn remove_batch(&mut self, keys: &[u64]) {
        for &k in keys {
            self.remove(k);
        }
    }

    /// Shard-wise subtraction: afterwards `self` encodes the symmetric
    /// difference of the two original sets.
    ///
    /// # Panics
    /// Panics if the tables disagree on shard count or any shard shape
    /// (cells, hash count, seed) — differently-shaped sharded tables do
    /// not encode comparable layouts.
    pub fn subtract(&mut self, other: &SubtableIblt) {
        assert_eq!(
            self.shards.len(),
            other.shards.len(),
            "shard count mismatch"
        );
        for (a, b) in self.shards.iter_mut().zip(&other.shards) {
            a.subtract(b);
        }
    }

    /// Peel every shard in place and aggregate: the recovered sets are the
    /// concatenation of the per-shard decodes in shard order, `Ok` iff
    /// every shard decoded completely. On `Err`, the partial result holds
    /// everything every shard recovered and `stuck_cells` sums the
    /// leftovers.
    pub fn try_peel_mut(&mut self) -> Result<PeelResult, PeelError> {
        let mut agg = PeelResult {
            only_in_self: Vec::new(),
            only_in_other: Vec::new(),
            complete: true,
        };
        let mut stuck = 0usize;
        for shard in &mut self.shards {
            let partial = match shard.try_peel_mut() {
                Ok(r) => r,
                Err(PeelError::Stuck {
                    partial,
                    stuck_cells,
                }) => {
                    stuck += stuck_cells;
                    partial
                }
            };
            agg.only_in_self.extend(partial.only_in_self);
            agg.only_in_other.extend(partial.only_in_other);
        }
        if stuck == 0 {
            Ok(agg)
        } else {
            agg.complete = false;
            Err(PeelError::Stuck {
                partial: agg,
                stuck_cells: stuck,
            })
        }
    }

    /// Non-destructive [`SubtableIblt::try_peel_mut`] (peels a clone).
    pub fn try_peel(&self) -> Result<PeelResult, PeelError> {
        self.clone().try_peel_mut()
    }

    /// Peel all shards concurrently over worker threads and aggregate in
    /// shard order. Bit-for-bit the same result as
    /// [`SubtableIblt::try_peel`]: shards share no cells, so their decodes
    /// compose without any cross-shard coordination — this is the layout's
    /// whole point.
    #[cfg(feature = "parallel")]
    pub fn try_peel_parallel(&self) -> Result<PeelResult, PeelError> {
        let per_shard = protocol::par_map(&self.shards, |shard| shard.try_peel());
        let mut agg = PeelResult {
            only_in_self: Vec::new(),
            only_in_other: Vec::new(),
            complete: true,
        };
        let mut stuck = 0usize;
        for r in per_shard {
            let partial = match r {
                Ok(r) => r,
                Err(PeelError::Stuck {
                    partial,
                    stuck_cells,
                }) => {
                    stuck += stuck_cells;
                    partial
                }
            };
            agg.only_in_self.extend(partial.only_in_self);
            agg.only_in_other.extend(partial.only_in_other);
        }
        if stuck == 0 {
            Ok(agg)
        } else {
            agg.complete = false;
            Err(PeelError::Stuck {
                partial: agg,
                stuck_cells: stuck,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn build(keys: &[u64], cells: usize, hashes: u32, seed: u64) -> Iblt {
        let mut t = Iblt::new(cells, hashes, seed);
        t.insert_all(keys.iter().copied());
        t
    }

    #[test]
    fn insert_remove_round_trip_is_empty() {
        let mut t = Iblt::new(64, 3, 1);
        for k in 0..100u64 {
            t.insert(k + 1);
        }
        for k in 0..100u64 {
            t.remove(k + 1);
        }
        assert!(t.cells.iter().all(Cell::is_empty));
    }

    #[test]
    fn peel_recovers_small_difference() {
        let a: Vec<u64> = (1..=1000).collect();
        let b: Vec<u64> = (6..=1003).collect();
        let ta = build(&a, 60, 3, 42);
        let tb = build(&b, 60, 3, 42);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(peel.complete);
        let only_a: HashSet<u64> = peel.only_in_self.iter().copied().collect();
        let only_b: HashSet<u64> = peel.only_in_other.iter().copied().collect();
        assert_eq!(only_a, (1..=5).collect::<HashSet<u64>>());
        assert_eq!(only_b, (1001..=1003).collect::<HashSet<u64>>());
    }

    #[test]
    fn identical_sets_peel_to_nothing() {
        let a: Vec<u64> = (1..=500).collect();
        let ta = build(&a, 30, 4, 7);
        let tb = build(&a, 30, 4, 7);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(peel.complete);
        assert!(peel.is_empty());
    }

    #[test]
    fn undersized_table_reports_incomplete() {
        // 200 differences into 12 cells cannot decode.
        let a: Vec<u64> = (1..=200).collect();
        let ta = build(&a, 12, 3, 3);
        let tb = Iblt::new(12, 3, 3);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(!peel.complete);
    }

    #[test]
    fn try_peel_reports_stuck_state_with_partial_decode() {
        let a: Vec<u64> = (1..=200).collect();
        let ta = build(&a, 12, 3, 3);
        match ta.try_peel() {
            Ok(r) => panic!("200 keys in 12 cells must not decode, got {} keys", r.len()),
            Err(PeelError::Stuck {
                partial,
                stuck_cells,
            }) => {
                assert!(stuck_cells > 0 && stuck_cells <= 12);
                assert!(!partial.complete);
                // Whatever was peeled must be genuine keys.
                for k in partial.all() {
                    assert!((1..=200).contains(&k), "fake key {k} peeled");
                }
                // The error folds into the legacy `complete` flag.
                assert_eq!(ta.peel(), partial);
            }
        }
    }

    #[test]
    fn try_peel_succeeds_on_decodable_table() {
        let a: Vec<u64> = (1..=10).collect();
        let ta = build(&a, 40, 3, 9);
        let result = ta.try_peel().expect("10 keys in 40 cells decode");
        assert!(result.complete);
        assert_eq!(result.len(), 10);
    }

    #[test]
    fn decode_rate_with_recommended_sizing() {
        // With ~2d cells and 4 hash functions (the §8.1.1 D.Digest
        // parameterization for d ≤ 200), the decoder succeeds in the vast
        // majority of trials. The threshold leaves room for the small
        // finite-size failure probability peeling has at this scale.
        let d = 100usize;
        let mut successes = 0;
        for trial in 0..50u64 {
            let a: Vec<u64> = (1..=(d as u64)).map(|x| x + trial * 100_000).collect();
            let ta = build(&a, 2 * d, 4, trial);
            let tb = Iblt::new(2 * d, 4, trial);
            let peel = Iblt::diff_and_peel(&ta, &tb);
            if peel.complete && peel.len() == d {
                successes += 1;
            }
        }
        assert!(successes >= 44, "only {successes}/50 decodes succeeded");
    }

    #[test]
    fn wire_size_accounting() {
        let t = Iblt::new(100, 3, 0);
        assert_eq!(t.wire_bits(32), 3 * 32 * 100);
        assert_eq!(t.wire_bits(64), 3 * 64 * 100);
    }

    #[test]
    fn subtraction_is_antisymmetric() {
        let a: Vec<u64> = vec![1, 2, 3, 10];
        let b: Vec<u64> = vec![3, 10, 77];
        let ta = build(&a, 40, 3, 9);
        let tb = build(&b, 40, 3, 9);
        let ab = Iblt::diff_and_peel(&ta, &tb);
        let ba = Iblt::diff_and_peel(&tb, &ta);
        let ab_self: HashSet<u64> = ab.only_in_self.iter().copied().collect();
        let ba_other: HashSet<u64> = ba.only_in_other.iter().copied().collect();
        assert_eq!(ab_self, ba_other);
        assert_eq!(ab_self, HashSet::from([1, 2]));
    }

    #[test]
    fn batched_kernels_match_reference_path() {
        let keys: Vec<u64> = (0..137u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) | 1)
            .collect();
        let mut batched = Iblt::new(97, 4, 11);
        batched.insert_batch(&keys);
        let mut scalar = Iblt::new(97, 4, 11);
        for &k in &keys {
            scalar.insert_reference(k);
        }
        assert_eq!(batched, scalar);
        batched.remove_batch(&keys[..40]);
        for &k in &keys[..40] {
            scalar.remove_reference(k);
        }
        assert_eq!(batched, scalar);
        // The wave peeler extracts in a different order than the seed's
        // peeler, but peeling is confluent: same sets, same completeness.
        let fast = batched.peel();
        let reference = batched.peel_reference();
        assert_eq!(fast.complete, reference.complete);
        let set = |v: &[u64]| v.iter().copied().collect::<HashSet<u64>>();
        assert_eq!(set(&fast.only_in_self), set(&reference.only_in_self));
        assert_eq!(set(&fast.only_in_other), set(&reference.only_in_other));
    }

    #[test]
    fn diff_and_peel_batch_matches_pairwise_calls() {
        let shapes: Vec<(Iblt, Iblt)> = (0..8u64)
            .map(|i| {
                let a: Vec<u64> = (1..=40 + 5 * i).collect();
                let b: Vec<u64> = (3 * i + 1..=60).collect();
                (build(&a, 50, 3, 100 + i), build(&b, 50, 3, 100 + i))
            })
            .collect();
        let pairs: Vec<(&Iblt, &Iblt)> = shapes.iter().map(|(a, b)| (a, b)).collect();
        let batch = Iblt::diff_and_peel_batch(&pairs);
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[k], Iblt::diff_and_peel(a, b), "pair {k} diverged");
        }
        // The in-place peeler drains the table it decodes.
        let mut d = pairs[0].0.clone();
        d.subtract(pairs[0].1);
        let direct = d.peel_mut();
        assert_eq!(direct, batch[0]);
        if direct.complete {
            assert!(d.cells().iter().all(|c| c.is_empty()));
        }
    }

    #[test]
    fn subtract_batch_matches_repeated_subtract() {
        let ta = build(&(1..=50).collect::<Vec<u64>>(), 40, 3, 5);
        let tb = build(&(20..=60).collect::<Vec<u64>>(), 40, 3, 5);
        let tc = build(&(55..=70).collect::<Vec<u64>>(), 40, 3, 5);
        let mut fused = ta.clone();
        fused.subtract_batch(&[&tb, &tc]);
        let mut serial = ta.clone();
        serial.subtract(&tb);
        serial.subtract(&tc);
        assert_eq!(fused, serial);
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn subtract_with_different_seeds_panics() {
        let mut a = Iblt::new(8, 3, 1);
        let b = Iblt::new(8, 3, 2);
        a.subtract(&b);
    }

    #[test]
    fn zero_shapes_clamp_instead_of_panicking() {
        // A rounded-to-zero cell count (or hash count) from hostile or
        // degenerate wire parameters must not divide-by-zero in the hash
        // mapping; `new` clamps both to 1 and the table stays usable.
        let mut t = Iblt::new(0, 0, 7);
        assert_eq!(t.cell_count(), 1);
        assert_eq!(t.hash_count(), 1);
        t.insert(9);
        let r = t.try_peel().expect("one key in one cell decodes");
        assert_eq!(r.only_in_self, vec![9]);
    }

    #[test]
    fn try_new_reports_degenerate_shapes() {
        assert_eq!(Iblt::try_new(0, 3, 1).unwrap_err(), ShapeError::ZeroCells);
        assert_eq!(Iblt::try_new(8, 0, 1).unwrap_err(), ShapeError::ZeroHashes);
        let t = Iblt::try_new(8, 3, 1).expect("valid shape accepted");
        assert_eq!(t.cell_count(), 8);
        assert_eq!(t.hash_count(), 3);
    }

    /// Find `(seed, key)` such that the key's cells in a `cells`-cell,
    /// 2-hash table are two *distinct* indices for which `pred` holds —
    /// i.e. inserting just that key leaves it pure in two cells at once,
    /// the layout that would corrupt the table if extracted twice.
    fn doubly_pure_layout(cells: usize, pred: impl Fn(usize, usize) -> bool) -> (u64, u64) {
        for seed in 0..1000u64 {
            for key in 1..200u64 {
                let mut t = Iblt::new(cells, 2, seed);
                t.insert(key);
                let pure: Vec<usize> = (0..t.cell_count())
                    .filter(|&i| t.cells()[i].count == 1)
                    .collect();
                if pure.len() == 2 && pred(pure[0], pure[1]) {
                    return (seed, key);
                }
            }
        }
        panic!("no doubly-pure layout found");
    }

    #[test]
    fn doubly_pure_key_is_extracted_once() {
        // Regression: a key pure in two cells simultaneously must be
        // extracted exactly once — a second extraction would double-XOR it
        // back into its cells and corrupt the cascade. Pin the behavior on
        // every engine.
        let (seed, key) = doubly_pure_layout(32, |_, _| true);
        let strategies = [
            PeelStrategy::Wave,
            PeelStrategy::SubTable {
                shard_cells: 16,
                parallel: false,
            },
            PeelStrategy::SubTable {
                shard_cells: 16,
                parallel: true,
            },
        ];
        for strat in strategies {
            let mut t = Iblt::new(32, 2, seed);
            t.insert(key);
            let r = t
                .try_peel_with(strat)
                .unwrap_or_else(|e| panic!("{strat:?} stuck on doubly-pure key: {e}"));
            assert_eq!(r.only_in_self, vec![key], "{strat:?} duplicated the key");
            assert!(r.only_in_other.is_empty());
        }
    }

    #[test]
    fn doubly_pure_key_across_shards_is_extracted_once() {
        // Same regression with the two pure cells in *different* shards
        // (shard size 16, cells 32 → shard boundary at index 16), so the
        // second cell's update travels through the cross-shard spill queue.
        let (seed, key) = doubly_pure_layout(32, |a, b| (a < 16) != (b < 16));
        for parallel in [false, true] {
            let mut t = Iblt::new(32, 2, seed);
            t.insert(key);
            let r = t
                .try_peel_with(PeelStrategy::SubTable {
                    shard_cells: 16,
                    parallel,
                })
                .expect("cross-shard doubly-pure key decodes");
            assert_eq!(r.only_in_self, vec![key]);
            assert!(r.only_in_other.is_empty());
        }
    }

    #[test]
    fn sharded_layout_decodes_a_difference() {
        let a: Vec<u64> = (1..=2000).collect();
        let b: Vec<u64> = (101..=2100).collect();
        let mut ta = SubtableIblt::new(600, 3, 42, 64);
        let mut tb = SubtableIblt::new(600, 3, 42, 64);
        ta.insert_batch(&a);
        tb.insert_batch(&b);
        ta.subtract(&tb);
        let peel = ta.try_peel_mut().expect("difference decodes");
        assert!(peel.complete);
        let only_a: HashSet<u64> = peel.only_in_self.iter().copied().collect();
        let only_b: HashSet<u64> = peel.only_in_other.iter().copied().collect();
        assert_eq!(only_a, (1..=100).collect::<HashSet<u64>>());
        assert_eq!(only_b, (2001..=2100).collect::<HashSet<u64>>());
    }

    #[test]
    fn sharded_layout_insert_remove_round_trip_is_empty() {
        let mut t = SubtableIblt::new(512, 4, 9, 64);
        let ks: Vec<u64> = (1..=300).collect();
        t.insert_batch(&ks);
        t.remove_batch(&ks);
        assert_eq!(t, SubtableIblt::new(512, 4, 9, 64));
    }

    #[test]
    fn sharded_layout_equal_params_are_cell_compatible() {
        // Two independently built tables with equal parameters must cancel
        // exactly under subtraction — the layout (routing + per-shard
        // seeds) is fully determined by the constructor arguments.
        let ks: Vec<u64> = (1..=500).collect();
        let mut ta = SubtableIblt::new(2048, 4, 1234, 128);
        let mut tb = SubtableIblt::new(2048, 4, 1234, 128);
        ta.insert_batch(&ks);
        tb.insert_batch(&ks);
        ta.subtract(&tb);
        assert_eq!(ta, SubtableIblt::new(2048, 4, 1234, 128));
    }

    #[test]
    #[should_panic(expected = "shard count mismatch")]
    fn sharded_layout_shape_mismatch_panics() {
        let mut a = SubtableIblt::new(512, 4, 9, 64);
        let b = SubtableIblt::new(1024, 4, 9, 64);
        a.subtract(&b);
    }

    #[test]
    fn sharded_layout_degenerate_params_are_clamped() {
        // Zero-ish shapes must clamp instead of dividing by zero, like
        // `Iblt::new`.
        let mut t = SubtableIblt::new(0, 0, 7, 0);
        assert!(t.shard_count() >= 1);
        t.insert(9);
        let r = t.try_peel_mut().expect("single key decodes");
        assert_eq!(r.only_in_self, vec![9]);
    }
}
