//! Invertible Bloom Lookup Tables (IBLT / "invertible Bloom filter").
//!
//! The IBF is the substrate of the paper's two IBF-based baselines:
//! Difference Digest \[15\] and Graphene \[32\] (§7). Each cell carries three
//! fields — `count`, `keySum`, `hashSum` — each one machine word of
//! `log|U|` bits, which is why IBF-based reconciliation costs roughly
//! `3 · (#cells) · log|U|` bits on the wire and why, with the ~2d cells the
//! decoder needs, Difference Digest lands at about 6× the theoretical
//! minimum (§7, §8.1).
//!
//! Supported operations:
//!
//! * [`Iblt::insert`] / [`Iblt::remove`] an element, or a whole slice at a
//!   time through the batched kernels [`Iblt::insert_batch`] /
//!   [`Iblt::remove_batch`] (four keys hashed per step, no per-key
//!   allocations, per-table-precomputed hash seeds),
//! * [`Iblt::subtract`] another IBLT cell-wise (the "difference" IBF), or
//!   several at once in one fused pass with [`Iblt::subtract_batch`],
//! * [`Iblt::peel`] / [`Iblt::try_peel`] the difference into the two
//!   one-sided difference sets using a worklist peeling decoder (find a pure
//!   cell, extract, push newly pure cells — no full-table rescans).
//!   [`Iblt::try_peel`] reports a stuck decoder (no pure cell left but the
//!   table is not empty) as an explicit [`PeelError::Stuck`] carrying the
//!   partial result, instead of silently truncating.
//!
//! The seed's per-element scalar path (per-call seed derivation, per-key
//! index allocation, final full-table emptiness rescan) is kept verbatim as
//! [`Iblt::insert_reference`] / [`Iblt::peel_reference`]: it is the ground
//! truth for the batched-vs-scalar property tests and the baseline the
//! `BENCH_decode_path.json` speedups are measured against.

//!
//! # Example
//!
//! ```
//! use iblt::Iblt;
//!
//! let mut a = Iblt::new(64, 4, 7);
//! a.insert_all(1..=100u64);
//! let mut b = Iblt::new(64, 4, 7);
//! b.insert_all(4..=103u64);
//! let diff = Iblt::diff_and_peel(&a, &b);
//! assert!(diff.complete);
//! let mut only_a = diff.only_in_self.clone();
//! only_a.sort_unstable();
//! assert_eq!(only_a, vec![1, 2, 3]);      // A \ B
//! let mut only_b = diff.only_in_other.clone();
//! only_b.sort_unstable();
//! assert_eq!(only_b, vec![101, 102, 103]); // B \ A
//! ```

#![warn(missing_docs)]

use xhash::{derive_seed, xxhash64, xxhash64_u64};

/// Seed-derivation label of the check-hash function.
const CHECK_SALT: u64 = 0xC0FFEE;
/// Seed-derivation label base of the cell-index hash functions.
const INDEX_SALT: u64 = 0x1D11;

/// One IBLT cell: `count`, `keySum`, `hashSum`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Signed number of elements hashed into this cell (insertions minus
    /// deletions; negative after subtracting a larger table).
    pub count: i64,
    /// XOR of all element keys hashed into this cell.
    pub key_sum: u64,
    /// XOR of the check-hashes of all elements hashed into this cell.
    pub hash_sum: u64,
}

impl Cell {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.hash_sum == 0
    }
}

/// Result of peeling a difference IBLT.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeelResult {
    /// Elements present in the *minuend* (the table `subtract` was called on)
    /// but not in the subtrahend — for `IBLT(A) − IBLT(B)` this is `A\B`.
    pub only_in_self: Vec<u64>,
    /// Elements present in the subtrahend only — `B\A`.
    pub only_in_other: Vec<u64>,
    /// `true` if the peeling process emptied every cell; `false` means the
    /// decode failed (too many differences for the table size).
    pub complete: bool,
}

impl PeelResult {
    /// All recovered difference elements regardless of side.
    pub fn all(&self) -> impl Iterator<Item = u64> + '_ {
        self.only_in_self
            .iter()
            .copied()
            .chain(self.only_in_other.iter().copied())
    }

    /// Total number of recovered elements.
    pub fn len(&self) -> usize {
        self.only_in_self.len() + self.only_in_other.len()
    }

    /// `true` when nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why [`Iblt::try_peel`] could not fully decode a difference table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeelError {
    /// The decoder got stuck: no pure cell remains but the table is not
    /// empty (the difference exceeds the peeling threshold for this table
    /// size, or a hash collision produced an unpeelable 2-core). The
    /// elements recovered before the decoder stalled are returned so callers
    /// can still use the partial decode — but they must treat it as such.
    Stuck {
        /// Everything peeled before the decoder stalled (`complete == false`).
        partial: PeelResult,
        /// Number of nonempty cells left un-decoded.
        stuck_cells: usize,
    },
}

impl std::fmt::Display for PeelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeelError::Stuck {
                partial,
                stuck_cells,
            } => write!(
                f,
                "IBLT peeling stuck: {} cells undecodable after recovering {} elements",
                stuck_cells,
                partial.len()
            ),
        }
    }
}

impl std::error::Error for PeelError {}

/// An invertible Bloom lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iblt {
    cells: Vec<Cell>,
    hash_count: u32,
    seed: u64,
    /// Per-hash-function index seeds, derived once at construction so the
    /// hot paths pay one hash per (key, function) instead of a seed
    /// derivation (itself a hash) plus a hash. Deterministic in `seed`.
    index_seeds: Vec<u64>,
    /// Check-hash seed, likewise derived once.
    check_seed: u64,
}

/// Apply `(key, delta)` to every cell the key maps to. Free function over
/// the split-out fields so the batched and scalar paths share it without
/// re-borrowing the whole table.
#[inline]
fn apply_one(cells: &mut [Cell], index_seeds: &[u64], check_seed: u64, key: u64, delta: i64) {
    let n = cells.len() as u64;
    let check = xxhash64_u64(key, check_seed);
    for &s in index_seeds {
        let j = (xxhash64_u64(key, s) % n) as usize;
        let cell = &mut cells[j];
        cell.count += delta;
        cell.key_sum ^= key;
        cell.hash_sum ^= check;
    }
}

impl Iblt {
    /// Create an IBLT with `cells` cells and `hash_count` hash functions,
    /// keyed by `seed`. Two tables must share all three parameters to be
    /// subtracted from each other.
    pub fn new(cells: usize, hash_count: u32, seed: u64) -> Self {
        assert!(cells > 0, "IBLT needs at least one cell");
        assert!(hash_count > 0, "IBLT needs at least one hash function");
        let index_seeds = (0..hash_count as u64)
            .map(|i| derive_seed(seed, INDEX_SALT + i))
            .collect();
        Iblt {
            cells: vec![Cell::default(); cells],
            hash_count,
            seed,
            index_seeds,
            check_seed: derive_seed(seed, CHECK_SALT),
        }
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.hash_count
    }

    /// Read-only view of the cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Wire size in bits: three `log|U|`-bit words per cell (the paper's
    /// accounting for IBF communication; §7). `universe_bits` is `log|U|`.
    pub fn wire_bits(&self, universe_bits: u32) -> u64 {
        3 * universe_bits as u64 * self.cells.len() as u64
    }

    /// Insert an element.
    pub fn insert(&mut self, key: u64) {
        apply_one(&mut self.cells, &self.index_seeds, self.check_seed, key, 1);
    }

    /// Remove an element (the table tolerates removals of absent elements;
    /// the cell counts simply go negative, as required for difference IBLTs).
    pub fn remove(&mut self, key: u64) {
        apply_one(&mut self.cells, &self.index_seeds, self.check_seed, key, -1);
    }

    /// Toggle a whole slice of keys by `delta`: the 4-wide batched kernel.
    ///
    /// Four keys advance together — their four check-hashes are computed
    /// up front, then each hash function's four cell indices are resolved
    /// and applied in one step — so the four index hashes per function are
    /// independent and overlap in the pipeline. Cell updates commute
    /// (`+=`/`^=`), so the final table state is identical to applying the
    /// keys one at a time.
    fn apply_batch(&mut self, keys: &[u64], delta: i64) {
        let n = self.cells.len() as u64;
        let cells = &mut self.cells;
        let index_seeds = &self.index_seeds;
        let check_seed = self.check_seed;
        let mut chunks = keys.chunks_exact(4);
        for quad in &mut chunks {
            let keys4 = [quad[0], quad[1], quad[2], quad[3]];
            let checks = keys4.map(|k| xxhash64_u64(k, check_seed));
            for &s in index_seeds {
                let idx = keys4.map(|k| (xxhash64_u64(k, s) % n) as usize);
                for k in 0..4 {
                    let cell = &mut cells[idx[k]];
                    cell.count += delta;
                    cell.key_sum ^= keys4[k];
                    cell.hash_sum ^= checks[k];
                }
            }
        }
        for &key in chunks.remainder() {
            apply_one(cells, index_seeds, check_seed, key, delta);
        }
    }

    /// Insert a slice of keys through the batched kernel. Equivalent to
    /// calling [`Iblt::insert`] per key.
    pub fn insert_batch(&mut self, keys: &[u64]) {
        self.apply_batch(keys, 1);
    }

    /// Remove a slice of keys through the batched kernel. Equivalent to
    /// calling [`Iblt::remove`] per key.
    pub fn remove_batch(&mut self, keys: &[u64]) {
        self.apply_batch(keys, -1);
    }

    /// Insert a whole set (buffered into the batched kernel).
    pub fn insert_all(&mut self, keys: impl IntoIterator<Item = u64>) {
        let mut buf = [0u64; 64];
        let mut n = 0;
        for k in keys {
            buf[n] = k;
            n += 1;
            if n == buf.len() {
                self.insert_batch(&buf);
                n = 0;
            }
        }
        self.insert_batch(&buf[..n]);
    }

    /// Cell-wise subtraction: after `a.subtract(&b)`, `a` encodes the
    /// symmetric difference of the two original sets.
    ///
    /// # Panics
    /// Panics if the two tables have different sizes, hash counts or seeds.
    pub fn subtract(&mut self, other: &Iblt) {
        self.subtract_batch(&[other]);
    }

    /// Subtract several tables in one fused pass over the cells: each cell
    /// of `self` is loaded once and every subtrahend's matching cell is
    /// applied to it, instead of streaming the whole table through the cache
    /// once per subtrahend.
    ///
    /// # Panics
    /// Panics if any table has a different size, hash count or seed.
    pub fn subtract_batch(&mut self, others: &[&Iblt]) {
        for other in others {
            assert_eq!(self.cells.len(), other.cells.len(), "cell count mismatch");
            assert_eq!(self.hash_count, other.hash_count, "hash count mismatch");
            assert_eq!(self.seed, other.seed, "seed mismatch");
        }
        for (i, a) in self.cells.iter_mut().enumerate() {
            for other in others {
                let b = &other.cells[i];
                a.count -= b.count;
                a.key_sum ^= b.key_sum;
                a.hash_sum ^= b.hash_sum;
            }
        }
    }

    /// Indices of every cell with a ±1 count — the peeler's initial
    /// candidate list (full purity, including the check hash, is
    /// established when a candidate is popped), in ascending order. With the
    /// `parallel` feature the per-cell scan fans out over worker threads
    /// through [`protocol::par_map`]; output order is identical.
    fn candidate_cells(&self) -> Vec<usize> {
        let candidate = |i: &usize| matches!(self.cells[*i].count, 1 | -1);
        #[cfg(feature = "parallel")]
        {
            const CHUNK: usize = 8192;
            if self.cells.len() >= 2 * CHUNK {
                let ranges: Vec<(usize, usize)> = (0..self.cells.len())
                    .step_by(CHUNK)
                    .map(|s| (s, (s + CHUNK).min(self.cells.len())))
                    .collect();
                let lists = protocol::par_map(&ranges, |&(s, e)| {
                    (s..e).filter(candidate).collect::<Vec<usize>>()
                });
                return lists.concat();
            }
        }
        (0..self.cells.len()).filter(candidate).collect()
    }

    /// Peel a difference IBLT into its two sides, reporting a stuck decoder
    /// as an error.
    ///
    /// Worklist peeling: seed the queue with every pure cell, then
    /// repeatedly pop one, report its key on the side given by the count's
    /// sign, remove the key from all its cells and push any cell that just
    /// became pure — no rescans of the full table. The number of nonempty
    /// cells is maintained incrementally, so completion is detected the
    /// moment the last cell empties rather than by a final O(#cells) sweep.
    ///
    /// Returns [`PeelError::Stuck`] — carrying the partial decode — when the
    /// worklist drains while nonempty cells remain (the difference exceeds
    /// the peeling threshold, §8.1.1).
    pub fn try_peel(&self) -> Result<PeelResult, PeelError> {
        self.clone().try_peel_mut()
    }

    /// Destructive counterpart of [`Iblt::try_peel`]: peels *this* table
    /// in place instead of cloning it first. On success every cell is left
    /// empty; on [`PeelError::Stuck`] the unpeelable cells remain. Callers
    /// that already own a scratch difference table (see
    /// [`Iblt::diff_and_peel_batch`]) use this to skip the extra full-table
    /// copy [`Iblt::try_peel`] pays.
    pub fn try_peel_mut(&mut self) -> Result<PeelResult, PeelError> {
        /// Keys extracted per wave. Extractions of *distinct* pure keys
        /// commute (every cell update is a `+=`/`^=`), so a whole wave's
        /// index hashes can be computed and its cell lines prefetched before
        /// any update lands — the random-access misses of up to
        /// `WAVE · hash_count` cells overlap instead of serializing key by
        /// key, which is where a peel over a larger-than-L2 table spends
        /// most of its time.
        const WAVE: usize = 32;

        let mut queue = self.candidate_cells();
        let mut result = PeelResult {
            only_in_self: Vec::with_capacity(queue.len()),
            only_in_other: Vec::new(),
            complete: false,
        };

        let n = self.cells.len() as u64;
        let check_seed = self.check_seed;
        let hash_count = self.index_seeds.len();
        let cells = &mut self.cells;
        let index_seeds = &self.index_seeds;
        let prefetch = |cells: &[Cell], i: usize| {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `i` is in bounds (always `hash % cells.len()`);
            // prefetch has no architectural effect beyond the cache.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(cells.as_ptr().add(i) as *const i8, _MM_HINT_T0);
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = (cells, i);
            }
        };

        let mut wave: Vec<(u64, i64, u64)> = Vec::with_capacity(WAVE); // (key, sign, check)
        let mut wave_idx: Vec<usize> = Vec::with_capacity(WAVE * hash_count);
        loop {
            // Fill a wave with currently-pure cells. The queue holds lazy
            // candidates (pushed on a count of ±1 alone), so full purity —
            // including the check hash, computed once and reused as the
            // removal mask — is established here. A key pure in two cells at
            // once must not be extracted twice, so a repeat within the wave
            // closes the wave (the duplicate cell goes back on the queue;
            // applying the wave empties it, and the re-check at the next
            // fill skips it).
            wave.clear();
            while wave.len() < WAVE {
                let Some(i) = queue.pop() else { break };
                let c = &cells[i];
                if c.count != 1 && c.count != -1 {
                    continue;
                }
                let check = xxhash64_u64(c.key_sum, check_seed);
                if check != c.hash_sum {
                    continue;
                }
                if wave.iter().any(|&(k, _, _)| k == c.key_sum) {
                    queue.push(i);
                    break;
                }
                wave.push((c.key_sum, c.count, check));
            }
            if wave.is_empty() {
                break;
            }
            // Start pulling the next wave's fill candidates in now: the
            // whole apply phase below overlaps their (random, usually cold)
            // loads, which a prefetch issued right before the fill loop
            // could not.
            for &i in queue.iter().rev().take(WAVE) {
                prefetch(cells, i);
            }

            // Hash every wave key's cell indices (independent chains), then
            // one prefetch sweep so the random cell lines are pulled in
            // concurrently instead of one miss at a time.
            wave_idx.clear();
            for &(key, _, _) in &wave {
                for &s in index_seeds {
                    wave_idx.push((xxhash64_u64(key, s) % n) as usize);
                }
            }
            for &j in &wave_idx {
                prefetch(cells, j);
            }

            // Apply the wave: toggle each key out of its cells; any cell
            // left with a ±1 count is a new lazy candidate.
            for (w, &(key, sign, check)) in wave.iter().enumerate() {
                if sign == 1 {
                    result.only_in_self.push(key);
                } else {
                    result.only_in_other.push(key);
                }
                for &j in &wave_idx[w * hash_count..(w + 1) * hash_count] {
                    let cell = &mut cells[j];
                    cell.count -= sign;
                    cell.key_sum ^= key;
                    cell.hash_sum ^= check;
                    if cell.count == 1 || cell.count == -1 {
                        queue.push(j);
                    }
                }
            }
        }

        // One sequential sweep decides the outcome (the hardware prefetcher
        // makes this far cheaper than tracking emptiness on every random
        // update).
        let stuck_cells = cells.iter().filter(|c| !c.is_empty()).count();
        if stuck_cells == 0 {
            result.complete = true;
            Ok(result)
        } else {
            Err(PeelError::Stuck {
                partial: result,
                stuck_cells,
            })
        }
    }

    /// Peel a difference IBLT into its two sides.
    ///
    /// Convenience wrapper over [`Iblt::try_peel`] for callers that fold the
    /// stuck state into the [`PeelResult::complete`] flag.
    pub fn peel(&self) -> PeelResult {
        match self.try_peel() {
            Ok(result) => result,
            Err(PeelError::Stuck { partial, .. }) => partial,
        }
    }

    /// Destructive counterpart of [`Iblt::peel`]; see [`Iblt::try_peel_mut`].
    pub fn peel_mut(&mut self) -> PeelResult {
        match self.try_peel_mut() {
            Ok(result) => result,
            Err(PeelError::Stuck { partial, .. }) => partial,
        }
    }

    /// Convenience for the reconciliation protocols: build the difference of
    /// two sets' IBLTs and peel it.
    pub fn diff_and_peel(a: &Iblt, b: &Iblt) -> PeelResult {
        let mut d = a.clone();
        d.subtract_batch(&[b]);
        d.peel_mut()
    }

    /// Decode several independent `(minuend, subtrahend)` pairs in one call:
    /// for each pair the difference table is built through the fused
    /// [`Iblt::subtract_batch`] kernel directly into the scratch copy that
    /// the in-place peeler ([`Iblt::peel_mut`]) then consumes, so every pair
    /// costs exactly one table copy instead of the two that `clone` +
    /// `subtract` + borrowing [`Iblt::peel`] used to pay. Results are
    /// positionally identical to calling [`Iblt::diff_and_peel`] per pair.
    ///
    /// This is the decode path of the Strata estimator, whose 32 strata are
    /// subtracted and peeled pairwise in a single batch.
    pub fn diff_and_peel_batch(pairs: &[(&Iblt, &Iblt)]) -> Vec<PeelResult> {
        pairs
            .iter()
            .map(|&(a, b)| {
                let mut d = a.clone();
                d.subtract_batch(&[b]);
                d.peel_mut()
            })
            .collect()
    }

    // -----------------------------------------------------------------------
    // Reference path (the seed's per-element scalar implementation)
    // -----------------------------------------------------------------------

    /// The seed's scalar insert: per-call seed derivation and a per-key
    /// index allocation. Kept as the baseline the `BENCH_decode_path.json`
    /// speedups are measured against and as ground truth for the
    /// batched-vs-scalar property tests. Produces exactly the same table
    /// state as [`Iblt::insert`].
    pub fn insert_reference(&mut self, key: u64) {
        self.apply_reference(key, 1);
    }

    /// Reference counterpart of [`Iblt::remove`]; see
    /// [`Iblt::insert_reference`].
    pub fn remove_reference(&mut self, key: u64) {
        self.apply_reference(key, -1);
    }

    fn apply_reference(&mut self, key: u64, delta: i64) {
        let n = self.cells.len() as u64;
        let check = xxhash64(&key.to_le_bytes(), derive_seed(self.seed, CHECK_SALT));
        let idx: Vec<usize> = (0..self.hash_count as u64)
            .map(|i| {
                (xxhash64(&key.to_le_bytes(), derive_seed(self.seed, INDEX_SALT + i)) % n) as usize
            })
            .collect();
        for i in idx {
            let cell = &mut self.cells[i];
            cell.count += delta;
            cell.key_sum ^= key;
            cell.hash_sum ^= check;
        }
    }

    /// The seed's peeling decoder: per-key index allocations, per-call seed
    /// derivations and a final full-table emptiness sweep. Same recovered
    /// sets and `complete` flag as [`Iblt::peel`]; kept as the
    /// `BENCH_decode_path.json` baseline.
    pub fn peel_reference(&self) -> PeelResult {
        let reference_check =
            |t: &Iblt, key: u64| xxhash64(&key.to_le_bytes(), derive_seed(t.seed, CHECK_SALT));
        let reference_indices = |t: &Iblt, key: u64| -> Vec<usize> {
            let n = t.cells.len() as u64;
            (0..t.hash_count as u64)
                .map(|i| {
                    (xxhash64(&key.to_le_bytes(), derive_seed(t.seed, INDEX_SALT + i)) % n) as usize
                })
                .collect()
        };
        let reference_pure = |t: &Iblt, i: usize| {
            let c = &t.cells[i];
            (c.count == 1 || c.count == -1) && reference_check(t, c.key_sum) == c.hash_sum
        };

        let mut work = self.clone();
        let mut result = PeelResult::default();
        let mut queue: Vec<usize> = (0..work.cells.len())
            .filter(|&i| reference_pure(&work, i))
            .collect();

        while let Some(i) = queue.pop() {
            if !reference_pure(&work, i) {
                continue;
            }
            let key = work.cells[i].key_sum;
            let sign = work.cells[i].count;
            if sign == 1 {
                result.only_in_self.push(key);
            } else {
                result.only_in_other.push(key);
            }
            let check = reference_check(&work, key);
            let idx = reference_indices(&work, key);
            for j in idx {
                let cell = &mut work.cells[j];
                cell.count -= sign;
                cell.key_sum ^= key;
                cell.hash_sum ^= check;
                if reference_pure(&work, j) {
                    queue.push(j);
                }
            }
        }

        result.complete = work.cells.iter().all(Cell::is_empty);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn build(keys: &[u64], cells: usize, hashes: u32, seed: u64) -> Iblt {
        let mut t = Iblt::new(cells, hashes, seed);
        t.insert_all(keys.iter().copied());
        t
    }

    #[test]
    fn insert_remove_round_trip_is_empty() {
        let mut t = Iblt::new(64, 3, 1);
        for k in 0..100u64 {
            t.insert(k + 1);
        }
        for k in 0..100u64 {
            t.remove(k + 1);
        }
        assert!(t.cells.iter().all(Cell::is_empty));
    }

    #[test]
    fn peel_recovers_small_difference() {
        let a: Vec<u64> = (1..=1000).collect();
        let b: Vec<u64> = (6..=1003).collect();
        let ta = build(&a, 60, 3, 42);
        let tb = build(&b, 60, 3, 42);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(peel.complete);
        let only_a: HashSet<u64> = peel.only_in_self.iter().copied().collect();
        let only_b: HashSet<u64> = peel.only_in_other.iter().copied().collect();
        assert_eq!(only_a, (1..=5).collect::<HashSet<u64>>());
        assert_eq!(only_b, (1001..=1003).collect::<HashSet<u64>>());
    }

    #[test]
    fn identical_sets_peel_to_nothing() {
        let a: Vec<u64> = (1..=500).collect();
        let ta = build(&a, 30, 4, 7);
        let tb = build(&a, 30, 4, 7);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(peel.complete);
        assert!(peel.is_empty());
    }

    #[test]
    fn undersized_table_reports_incomplete() {
        // 200 differences into 12 cells cannot decode.
        let a: Vec<u64> = (1..=200).collect();
        let ta = build(&a, 12, 3, 3);
        let tb = Iblt::new(12, 3, 3);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(!peel.complete);
    }

    #[test]
    fn try_peel_reports_stuck_state_with_partial_decode() {
        let a: Vec<u64> = (1..=200).collect();
        let ta = build(&a, 12, 3, 3);
        match ta.try_peel() {
            Ok(r) => panic!("200 keys in 12 cells must not decode, got {} keys", r.len()),
            Err(PeelError::Stuck {
                partial,
                stuck_cells,
            }) => {
                assert!(stuck_cells > 0 && stuck_cells <= 12);
                assert!(!partial.complete);
                // Whatever was peeled must be genuine keys.
                for k in partial.all() {
                    assert!((1..=200).contains(&k), "fake key {k} peeled");
                }
                // The error folds into the legacy `complete` flag.
                assert_eq!(ta.peel(), partial);
            }
        }
    }

    #[test]
    fn try_peel_succeeds_on_decodable_table() {
        let a: Vec<u64> = (1..=10).collect();
        let ta = build(&a, 40, 3, 9);
        let result = ta.try_peel().expect("10 keys in 40 cells decode");
        assert!(result.complete);
        assert_eq!(result.len(), 10);
    }

    #[test]
    fn decode_rate_with_recommended_sizing() {
        // With ~2d cells and 4 hash functions (the §8.1.1 D.Digest
        // parameterization for d ≤ 200), the decoder succeeds in the vast
        // majority of trials. The threshold leaves room for the small
        // finite-size failure probability peeling has at this scale.
        let d = 100usize;
        let mut successes = 0;
        for trial in 0..50u64 {
            let a: Vec<u64> = (1..=(d as u64)).map(|x| x + trial * 100_000).collect();
            let ta = build(&a, 2 * d, 4, trial);
            let tb = Iblt::new(2 * d, 4, trial);
            let peel = Iblt::diff_and_peel(&ta, &tb);
            if peel.complete && peel.len() == d {
                successes += 1;
            }
        }
        assert!(successes >= 44, "only {successes}/50 decodes succeeded");
    }

    #[test]
    fn wire_size_accounting() {
        let t = Iblt::new(100, 3, 0);
        assert_eq!(t.wire_bits(32), 3 * 32 * 100);
        assert_eq!(t.wire_bits(64), 3 * 64 * 100);
    }

    #[test]
    fn subtraction_is_antisymmetric() {
        let a: Vec<u64> = vec![1, 2, 3, 10];
        let b: Vec<u64> = vec![3, 10, 77];
        let ta = build(&a, 40, 3, 9);
        let tb = build(&b, 40, 3, 9);
        let ab = Iblt::diff_and_peel(&ta, &tb);
        let ba = Iblt::diff_and_peel(&tb, &ta);
        let ab_self: HashSet<u64> = ab.only_in_self.iter().copied().collect();
        let ba_other: HashSet<u64> = ba.only_in_other.iter().copied().collect();
        assert_eq!(ab_self, ba_other);
        assert_eq!(ab_self, HashSet::from([1, 2]));
    }

    #[test]
    fn batched_kernels_match_reference_path() {
        let keys: Vec<u64> = (0..137u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) | 1)
            .collect();
        let mut batched = Iblt::new(97, 4, 11);
        batched.insert_batch(&keys);
        let mut scalar = Iblt::new(97, 4, 11);
        for &k in &keys {
            scalar.insert_reference(k);
        }
        assert_eq!(batched, scalar);
        batched.remove_batch(&keys[..40]);
        for &k in &keys[..40] {
            scalar.remove_reference(k);
        }
        assert_eq!(batched, scalar);
        // The wave peeler extracts in a different order than the seed's
        // peeler, but peeling is confluent: same sets, same completeness.
        let fast = batched.peel();
        let reference = batched.peel_reference();
        assert_eq!(fast.complete, reference.complete);
        let set = |v: &[u64]| v.iter().copied().collect::<HashSet<u64>>();
        assert_eq!(set(&fast.only_in_self), set(&reference.only_in_self));
        assert_eq!(set(&fast.only_in_other), set(&reference.only_in_other));
    }

    #[test]
    fn diff_and_peel_batch_matches_pairwise_calls() {
        let shapes: Vec<(Iblt, Iblt)> = (0..8u64)
            .map(|i| {
                let a: Vec<u64> = (1..=40 + 5 * i).collect();
                let b: Vec<u64> = (3 * i + 1..=60).collect();
                (build(&a, 50, 3, 100 + i), build(&b, 50, 3, 100 + i))
            })
            .collect();
        let pairs: Vec<(&Iblt, &Iblt)> = shapes.iter().map(|(a, b)| (a, b)).collect();
        let batch = Iblt::diff_and_peel_batch(&pairs);
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[k], Iblt::diff_and_peel(a, b), "pair {k} diverged");
        }
        // The in-place peeler drains the table it decodes.
        let mut d = pairs[0].0.clone();
        d.subtract(pairs[0].1);
        let direct = d.peel_mut();
        assert_eq!(direct, batch[0]);
        if direct.complete {
            assert!(d.cells().iter().all(|c| c.is_empty()));
        }
    }

    #[test]
    fn subtract_batch_matches_repeated_subtract() {
        let ta = build(&(1..=50).collect::<Vec<u64>>(), 40, 3, 5);
        let tb = build(&(20..=60).collect::<Vec<u64>>(), 40, 3, 5);
        let tc = build(&(55..=70).collect::<Vec<u64>>(), 40, 3, 5);
        let mut fused = ta.clone();
        fused.subtract_batch(&[&tb, &tc]);
        let mut serial = ta.clone();
        serial.subtract(&tb);
        serial.subtract(&tc);
        assert_eq!(fused, serial);
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn subtract_with_different_seeds_panics() {
        let mut a = Iblt::new(8, 3, 1);
        let b = Iblt::new(8, 3, 2);
        a.subtract(&b);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        Iblt::new(0, 3, 1);
    }
}
