//! Invertible Bloom Lookup Tables (IBLT / "invertible Bloom filter").
//!
//! The IBF is the substrate of the paper's two IBF-based baselines:
//! Difference Digest [15] and Graphene [32] (§7). Each cell carries three
//! fields — `count`, `keySum`, `hashSum` — each one machine word of
//! `log|U|` bits, which is why IBF-based reconciliation costs roughly
//! `3 · (#cells) · log|U|` bits on the wire and why, with the ~2d cells the
//! decoder needs, Difference Digest lands at about 6× the theoretical
//! minimum (§7, §8.1).
//!
//! Supported operations:
//!
//! * [`Iblt::insert`] / [`Iblt::remove`] an element,
//! * [`Iblt::subtract`] another IBLT cell-wise (the "difference" IBF),
//! * [`Iblt::peel`] the difference into the two one-sided difference sets
//!   using the standard peeling decoder (find a pure cell, extract, repeat).

#![warn(missing_docs)]

use xhash::{derive_seed, xxhash64};

/// One IBLT cell: `count`, `keySum`, `hashSum`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Signed number of elements hashed into this cell (insertions minus
    /// deletions; negative after subtracting a larger table).
    pub count: i64,
    /// XOR of all element keys hashed into this cell.
    pub key_sum: u64,
    /// XOR of the check-hashes of all elements hashed into this cell.
    pub hash_sum: u64,
}

impl Cell {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.hash_sum == 0
    }
}

/// Result of peeling a difference IBLT.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeelResult {
    /// Elements present in the *minuend* (the table `subtract` was called on)
    /// but not in the subtrahend — for `IBLT(A) − IBLT(B)` this is `A\B`.
    pub only_in_self: Vec<u64>,
    /// Elements present in the subtrahend only — `B\A`.
    pub only_in_other: Vec<u64>,
    /// `true` if the peeling process emptied every cell; `false` means the
    /// decode failed (too many differences for the table size).
    pub complete: bool,
}

impl PeelResult {
    /// All recovered difference elements regardless of side.
    pub fn all(&self) -> impl Iterator<Item = u64> + '_ {
        self.only_in_self
            .iter()
            .copied()
            .chain(self.only_in_other.iter().copied())
    }

    /// Total number of recovered elements.
    pub fn len(&self) -> usize {
        self.only_in_self.len() + self.only_in_other.len()
    }

    /// `true` when nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An invertible Bloom lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iblt {
    cells: Vec<Cell>,
    hash_count: u32,
    seed: u64,
}

impl Iblt {
    /// Create an IBLT with `cells` cells and `hash_count` hash functions,
    /// keyed by `seed`. Two tables must share all three parameters to be
    /// subtracted from each other.
    pub fn new(cells: usize, hash_count: u32, seed: u64) -> Self {
        assert!(cells > 0, "IBLT needs at least one cell");
        assert!(hash_count > 0, "IBLT needs at least one hash function");
        Iblt {
            cells: vec![Cell::default(); cells],
            hash_count,
            seed,
        }
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.hash_count
    }

    /// Read-only view of the cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Wire size in bits: three `log|U|`-bit words per cell (the paper's
    /// accounting for IBF communication; §7). `universe_bits` is `log|U|`.
    pub fn wire_bits(&self, universe_bits: u32) -> u64 {
        3 * universe_bits as u64 * self.cells.len() as u64
    }

    /// The check-hash used to recognize pure cells.
    fn check_hash(&self, key: u64) -> u64 {
        xxhash64(&key.to_le_bytes(), derive_seed(self.seed, 0xC0FFEE))
    }

    /// Cell indices for a key: `hash_count` independently seeded hashes.
    /// Independent hashes (rather than double hashing) keep the peeling
    /// threshold at its textbook value, which matters for the small tables
    /// the Difference Digest sizing rule produces.
    fn indices(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let n = self.cells.len() as u64;
        (0..self.hash_count as u64).map(move |i| {
            (xxhash64(&key.to_le_bytes(), derive_seed(self.seed, 0x1D11 + i)) % n) as usize
        })
    }

    fn apply(&mut self, key: u64, delta: i64) {
        let check = self.check_hash(key);
        let idx: Vec<usize> = self.indices(key).collect();
        for i in idx {
            let cell = &mut self.cells[i];
            cell.count += delta;
            cell.key_sum ^= key;
            cell.hash_sum ^= check;
        }
    }

    /// Insert an element.
    pub fn insert(&mut self, key: u64) {
        self.apply(key, 1);
    }

    /// Remove an element (the table tolerates removals of absent elements;
    /// the cell counts simply go negative, as required for difference IBLTs).
    pub fn remove(&mut self, key: u64) {
        self.apply(key, -1);
    }

    /// Insert a whole set.
    pub fn insert_all(&mut self, keys: impl IntoIterator<Item = u64>) {
        for k in keys {
            self.insert(k);
        }
    }

    /// Cell-wise subtraction: after `a.subtract(&b)`, `a` encodes the
    /// symmetric difference of the two original sets.
    ///
    /// # Panics
    /// Panics if the two tables have different sizes, hash counts or seeds.
    pub fn subtract(&mut self, other: &Iblt) {
        assert_eq!(self.cells.len(), other.cells.len(), "cell count mismatch");
        assert_eq!(self.hash_count, other.hash_count, "hash count mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.count -= b.count;
            a.key_sum ^= b.key_sum;
            a.hash_sum ^= b.hash_sum;
        }
    }

    /// Is this cell "pure": exactly one (signed) element and a matching
    /// check-hash?
    fn is_pure(&self, i: usize) -> bool {
        let c = &self.cells[i];
        (c.count == 1 || c.count == -1) && self.check_hash(c.key_sum) == c.hash_sum
    }

    /// Peel a difference IBLT into its two sides.
    ///
    /// Standard peeling: repeatedly find a pure cell, report its key on the
    /// side given by the count's sign, and remove the key from all its cells.
    /// Fails (`complete == false`) when no pure cell remains but the table is
    /// not empty.
    pub fn peel(&self) -> PeelResult {
        let mut work = self.clone();
        let mut result = PeelResult::default();
        let mut queue: Vec<usize> = (0..work.cells.len()).filter(|&i| work.is_pure(i)).collect();

        while let Some(i) = queue.pop() {
            if !work.is_pure(i) {
                continue;
            }
            let key = work.cells[i].key_sum;
            let sign = work.cells[i].count;
            if sign == 1 {
                result.only_in_self.push(key);
            } else {
                result.only_in_other.push(key);
            }
            // Remove the key from every cell it maps to.
            let check = work.check_hash(key);
            let idx: Vec<usize> = work.indices(key).collect();
            for j in idx {
                let cell = &mut work.cells[j];
                cell.count -= sign;
                cell.key_sum ^= key;
                cell.hash_sum ^= check;
                if work.is_pure(j) {
                    queue.push(j);
                }
            }
        }

        result.complete = work.cells.iter().all(Cell::is_empty);
        result
    }

    /// Convenience for the reconciliation protocols: build the difference of
    /// two sets' IBLTs and peel it.
    pub fn diff_and_peel(a: &Iblt, b: &Iblt) -> PeelResult {
        let mut d = a.clone();
        d.subtract(b);
        d.peel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn build(keys: &[u64], cells: usize, hashes: u32, seed: u64) -> Iblt {
        let mut t = Iblt::new(cells, hashes, seed);
        t.insert_all(keys.iter().copied());
        t
    }

    #[test]
    fn insert_remove_round_trip_is_empty() {
        let mut t = Iblt::new(64, 3, 1);
        for k in 0..100u64 {
            t.insert(k + 1);
        }
        for k in 0..100u64 {
            t.remove(k + 1);
        }
        assert!(t.cells.iter().all(Cell::is_empty));
    }

    #[test]
    fn peel_recovers_small_difference() {
        let a: Vec<u64> = (1..=1000).collect();
        let b: Vec<u64> = (6..=1003).collect();
        let ta = build(&a, 60, 3, 42);
        let tb = build(&b, 60, 3, 42);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(peel.complete);
        let only_a: HashSet<u64> = peel.only_in_self.iter().copied().collect();
        let only_b: HashSet<u64> = peel.only_in_other.iter().copied().collect();
        assert_eq!(only_a, (1..=5).collect::<HashSet<u64>>());
        assert_eq!(only_b, (1001..=1003).collect::<HashSet<u64>>());
    }

    #[test]
    fn identical_sets_peel_to_nothing() {
        let a: Vec<u64> = (1..=500).collect();
        let ta = build(&a, 30, 4, 7);
        let tb = build(&a, 30, 4, 7);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(peel.complete);
        assert!(peel.is_empty());
    }

    #[test]
    fn undersized_table_reports_incomplete() {
        // 200 differences into 12 cells cannot decode.
        let a: Vec<u64> = (1..=200).collect();
        let ta = build(&a, 12, 3, 3);
        let tb = Iblt::new(12, 3, 3);
        let peel = Iblt::diff_and_peel(&ta, &tb);
        assert!(!peel.complete);
    }

    #[test]
    fn decode_rate_with_recommended_sizing() {
        // With ~2d cells and 4 hash functions (the §8.1.1 D.Digest
        // parameterization for d ≤ 200), the decoder succeeds in the vast
        // majority of trials. The threshold leaves room for the small
        // finite-size failure probability peeling has at this scale.
        let d = 100usize;
        let mut successes = 0;
        for trial in 0..50u64 {
            let a: Vec<u64> = (1..=(d as u64)).map(|x| x + trial * 100_000).collect();
            let ta = build(&a, 2 * d, 4, trial);
            let tb = Iblt::new(2 * d, 4, trial);
            let peel = Iblt::diff_and_peel(&ta, &tb);
            if peel.complete && peel.len() == d {
                successes += 1;
            }
        }
        assert!(successes >= 44, "only {successes}/50 decodes succeeded");
    }

    #[test]
    fn wire_size_accounting() {
        let t = Iblt::new(100, 3, 0);
        assert_eq!(t.wire_bits(32), 3 * 32 * 100);
        assert_eq!(t.wire_bits(64), 3 * 64 * 100);
    }

    #[test]
    fn subtraction_is_antisymmetric() {
        let a: Vec<u64> = vec![1, 2, 3, 10];
        let b: Vec<u64> = vec![3, 10, 77];
        let ta = build(&a, 40, 3, 9);
        let tb = build(&b, 40, 3, 9);
        let ab = Iblt::diff_and_peel(&ta, &tb);
        let ba = Iblt::diff_and_peel(&tb, &ta);
        let ab_self: HashSet<u64> = ab.only_in_self.iter().copied().collect();
        let ba_other: HashSet<u64> = ba.only_in_other.iter().copied().collect();
        assert_eq!(ab_self, ba_other);
        assert_eq!(ab_self, HashSet::from([1, 2]));
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn subtract_with_different_seeds_panics() {
        let mut a = Iblt::new(8, 3, 1);
        let b = Iblt::new(8, 3, 2);
        a.subtract(&b);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        Iblt::new(0, 3, 1);
    }
}
