//! Sub-table-vs-flat peel equivalence properties.
//!
//! The sub-table engine changes only the *traversal* of the peel — the
//! cell layout and hash mapping are identical to the flat table — and
//! peeling is confluent (the unpeelable 2-core of the underlying
//! hypergraph is unique). So for every input the sub-table peel must
//! recover exactly the flat wave peel's element sets, report the same
//! completeness, and — on a stuck decode — strand the same partial decode
//! and leave the table in the same final cell state. These properties are
//! exercised across shard sizes small enough (16–256 cells against tables
//! of up to ~600 cells) that cross-shard spills dominate, plus a
//! full-size check of the `Auto` dispatch threshold, and a parallel-vs-
//! serial shard-peel equivalence test under the `parallel` feature.
//!
//! The construction-level sharded layout (`SubtableIblt`) routes keys to
//! disjoint mini-tables, so it is *not* cell-comparable with the flat
//! layout; its equivalence properties are at the decoded-set level
//! (against the ground-truth difference and a complete flat decode), plus
//! bit-for-bit parallel-vs-serial agreement under `parallel`.

use iblt::{Iblt, PeelError, PeelStrategy, SubtableIblt};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Build the difference table of two overlapping key ranges: `d` keys only
/// in A, `d_other` only in B, `shared` in both (cancelling out).
fn difference_table(d: usize, d_other: usize, shared: usize, cells: usize, seed: u64) -> Iblt {
    let mix = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let a: Vec<u64> = (1..=(d + shared) as u64).map(mix).collect();
    let b: Vec<u64> = ((d + 1) as u64..=(d + shared + d_other) as u64)
        .map(mix)
        .collect();
    let mut ta = Iblt::new(cells, 4, seed);
    ta.insert_batch(&a);
    let mut tb = Iblt::new(cells, 4, seed);
    tb.insert_batch(&b);
    ta.subtract(&tb);
    ta
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// Peel a clone of `diff` with `strategy` and the flat wave peeler, and
/// assert set-level equality of the outcome plus cell-level equality of
/// the final table state.
fn assert_matches_flat(diff: &Iblt, strategy: PeelStrategy) -> Result<(), TestCaseError> {
    let mut flat = diff.clone();
    let flat_res = flat.try_peel_mut_with(PeelStrategy::Wave);
    let mut sub = diff.clone();
    let sub_res = sub.try_peel_mut_with(strategy);
    match (flat_res, sub_res) {
        (Ok(f), Ok(s)) => {
            prop_assert!(f.complete && s.complete);
            prop_assert_eq!(sorted(f.only_in_self), sorted(s.only_in_self));
            prop_assert_eq!(sorted(f.only_in_other), sorted(s.only_in_other));
        }
        (
            Err(PeelError::Stuck {
                partial: f,
                stuck_cells: fc,
            }),
            Err(PeelError::Stuck {
                partial: s,
                stuck_cells: sc,
            }),
        ) => {
            prop_assert_eq!(fc, sc, "different stuck cell counts");
            prop_assert_eq!(sorted(f.only_in_self), sorted(s.only_in_self));
            prop_assert_eq!(sorted(f.only_in_other), sorted(s.only_in_other));
        }
        (f, s) => prop_assert!(false, "flat {f:?} vs sub-table {s:?} disagree on success"),
    }
    // Confluence: same extracted set ⇒ bit-identical final table state
    // (all cells empty on success, the same stranded 2-core when stuck).
    prop_assert_eq!(flat, sub);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Complete decodes (table sized at the §8.1.1 ~2d rule) and shard
    /// sizes far below the table size, so extractions constantly spill
    /// across shard boundaries.
    #[test]
    fn subtable_peel_matches_flat_on_decodable_tables(
        d in 0usize..120,
        d_other in 0usize..60,
        shared in 0usize..200,
        seed in any::<u64>(),
        shard_pow in 4u32..9, // shard_cells in 16..=256
    ) {
        let cells = (2 * (d + d_other)).max(8);
        let diff = difference_table(d, d_other, shared, cells, seed);
        assert_matches_flat(&diff, PeelStrategy::SubTable {
            shard_cells: 1usize << shard_pow,
            parallel: false,
        })?;
    }

    /// Stuck decodes: the table is deliberately undersized so the decoder
    /// strands a partial result, which must match the flat peel exactly
    /// (same partial sets, same stuck cells, same final state).
    #[test]
    fn subtable_peel_matches_flat_on_stuck_tables(
        d in 40usize..200,
        seed in any::<u64>(),
        shard_pow in 4u32..7,
    ) {
        // d keys into d/3 cells cannot fully decode (way past the peeling
        // threshold); occasionally it still completes for tiny d, which
        // assert_matches_flat handles either way.
        let cells = (d / 3).max(4);
        let diff = difference_table(d, 0, 50, cells, seed);
        assert_matches_flat(&diff, PeelStrategy::SubTable {
            shard_cells: 1usize << shard_pow,
            parallel: false,
        })?;
    }
}

#[cfg(feature = "parallel")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel-vs-serial shard peel: the round-parallel engine (with its
    /// barrier spill exchange and duplicate-extraction fix-up) must agree
    /// with the serial visit-pass engine on sets, completeness, stuck
    /// cells and final table state.
    #[test]
    fn parallel_shard_peel_matches_serial(
        d in 0usize..150,
        shared in 0usize..200,
        undersize in any::<bool>(),
        seed in any::<u64>(),
        shard_pow in 4u32..8,
    ) {
        let cells = if undersize { (d / 3).max(4) } else { (2 * d).max(8) };
        let diff = difference_table(d, d / 4, shared, cells, seed);
        let shard_cells = 1usize << shard_pow;
        let mut serial = diff.clone();
        let serial_res = serial.try_peel_mut_with(PeelStrategy::SubTable { shard_cells, parallel: false });
        let mut par = diff.clone();
        let par_res = par.try_peel_mut_with(PeelStrategy::SubTable { shard_cells, parallel: true });
        match (serial_res, par_res) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(sorted(s.only_in_self), sorted(p.only_in_self));
                prop_assert_eq!(sorted(s.only_in_other), sorted(p.only_in_other));
            }
            (
                Err(PeelError::Stuck { partial: s, stuck_cells: sc }),
                Err(PeelError::Stuck { partial: p, stuck_cells: pc }),
            ) => {
                prop_assert_eq!(sc, pc);
                prop_assert_eq!(sorted(s.only_in_self), sorted(p.only_in_self));
                prop_assert_eq!(sorted(s.only_in_other), sorted(p.only_in_other));
            }
            (s, p) => prop_assert!(false, "serial {s:?} vs parallel {p:?} disagree on success"),
        }
        prop_assert_eq!(serial, par);
    }
}

/// The two logical key sets behind [`difference_table`], so sharded-layout
/// decodes can be checked against the ground-truth difference rather than
/// against the flat table's (differently laid out, so not cell-comparable)
/// decode.
fn difference_sets(d: usize, d_other: usize, shared: usize) -> (Vec<u64>, Vec<u64>) {
    let mix = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let only_a: Vec<u64> = (1..=d as u64).map(mix).collect();
    let only_b: Vec<u64> = ((d + shared + 1) as u64..=(d + shared + d_other) as u64)
        .map(mix)
        .collect();
    (only_a, only_b)
}

/// Build the same A/B difference as [`difference_table`] but in the
/// construction-level sharded layout.
fn sharded_difference_table(
    d: usize,
    d_other: usize,
    shared: usize,
    cells: usize,
    seed: u64,
    shard_cells: usize,
) -> SubtableIblt {
    let mix = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let a: Vec<u64> = (1..=(d + shared) as u64).map(mix).collect();
    let b: Vec<u64> = ((d + 1) as u64..=(d + shared + d_other) as u64)
        .map(mix)
        .collect();
    let mut ta = SubtableIblt::new(cells, 4, seed, shard_cells);
    ta.insert_batch(&a);
    let mut tb = SubtableIblt::new(cells, 4, seed, shard_cells);
    tb.insert_batch(&b);
    ta.subtract(&tb);
    ta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The construction-level sharded layout (`SubtableIblt`) must decode
    /// the same difference as the flat table built from the same key sets.
    /// The layouts are not cell-comparable (keys are routed to disjoint
    /// mini-tables), so equivalence is at the set level against the known
    /// ground truth: every extraction — complete or stranded partial — is a
    /// true difference element on the correct side, and a complete decode
    /// recovers exactly the flat decode's sets. The sharded table gets 3d
    /// cells (vs the flat 2d rule) because the binomial key split across
    /// shards leaves some shards proportionally overloaded.
    #[test]
    fn sharded_layout_decode_matches_flat(
        d in 0usize..120,
        d_other in 0usize..60,
        shared in 0usize..200,
        seed in any::<u64>(),
        shard_pow in 4u32..9, // shard_cells in 16..=256
    ) {
        let (truth_a, truth_b) = difference_sets(d, d_other, shared);
        let flat = difference_table(d, d_other, shared, (2 * (d + d_other)).max(8), seed);
        let sharded = sharded_difference_table(
            d, d_other, shared,
            (3 * (d + d_other)).max(8),
            seed,
            1usize << shard_pow,
        );

        let check_sides = |r: &iblt::PeelResult| -> Result<(), TestCaseError> {
            for k in &r.only_in_self {
                prop_assert!(truth_a.contains(k), "sharded invented {k} on self side");
            }
            for k in &r.only_in_other {
                prop_assert!(truth_b.contains(k), "sharded invented {k} on other side");
            }
            Ok(())
        };
        match sharded.try_peel() {
            Ok(s) => {
                prop_assert!(s.complete);
                check_sides(&s)?;
                prop_assert_eq!(sorted(s.only_in_self.clone()), sorted(truth_a.clone()));
                prop_assert_eq!(sorted(s.only_in_other.clone()), sorted(truth_b.clone()));
                // And therefore equal to a complete flat decode of the same keys.
                if let Ok(f) = flat.try_peel() {
                    prop_assert_eq!(sorted(f.only_in_self), sorted(s.only_in_self));
                    prop_assert_eq!(sorted(f.only_in_other), sorted(s.only_in_other));
                }
            }
            Err(PeelError::Stuck { partial, stuck_cells }) => {
                prop_assert!(!partial.complete);
                prop_assert!(stuck_cells > 0);
                check_sides(&partial)?; // partials never invent elements
            }
        }
    }
}

#[cfg(feature = "parallel")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded-layout parallel peel: shards are fully independent
    /// mini-tables, so `try_peel_parallel` must agree with the serial
    /// `try_peel` bit for bit — same sets in the same (shard-major) order,
    /// same completeness, and on a stuck decode the same aggregated
    /// partial and stuck-cell count.
    #[test]
    fn sharded_parallel_peel_matches_serial(
        d in 0usize..150,
        shared in 0usize..200,
        undersize in any::<bool>(),
        seed in any::<u64>(),
        shard_pow in 4u32..8,
    ) {
        let cells = if undersize { (d / 3).max(4) } else { (3 * d).max(8) };
        let sharded = sharded_difference_table(d, d / 4, shared, cells, seed, 1usize << shard_pow);
        prop_assert_eq!(sharded.try_peel(), sharded.try_peel_parallel());
    }
}

/// The `Auto` dispatch threshold: a table big enough to take the
/// sub-table path through the default `peel()` entry points must still
/// agree with an explicit flat wave peel. (One deterministic full-size
/// case — 2^16 cells — rather than a proptest, to keep the suite fast.)
#[test]
fn auto_dispatch_at_threshold_matches_wave() {
    let d = 20_000;
    let diff = difference_table(d, 0, 10_000, 1 << 16, 0xA07C);
    let auto = diff.peel();
    let mut wave = diff.clone();
    let wave_res = match wave.try_peel_mut_with(PeelStrategy::Wave) {
        Ok(r) => r,
        Err(PeelError::Stuck { partial, .. }) => partial,
    };
    assert_eq!(auto.complete, wave_res.complete);
    assert_eq!(
        sorted(auto.only_in_self.clone()),
        sorted(wave_res.only_in_self)
    );
    assert_eq!(
        sorted(auto.only_in_other.clone()),
        sorted(wave_res.only_in_other)
    );
}
