//! Batched-vs-scalar equivalence properties for the IBLT kernels.
//!
//! Every batched path (4-wide insert/remove, fused multi-table subtract,
//! wave peeling) must produce exactly the state or sets the seed's scalar
//! reference path produces, for arbitrary table shapes and key sets.

use iblt::{Iblt, PeelError};
use proptest::prelude::*;
use std::collections::HashSet;

fn dedup(keys: Vec<u64>) -> Vec<u64> {
    let mut seen = HashSet::new();
    keys.into_iter()
        .filter(|&k| k != 0 && seen.insert(k))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_batch_matches_reference(
        cells in 1usize..300,
        hashes in 1u32..6,
        seed in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let keys = dedup(keys);
        let mut batched = Iblt::new(cells, hashes, seed);
        batched.insert_batch(&keys);
        let mut reference = Iblt::new(cells, hashes, seed);
        for &k in &keys {
            reference.insert_reference(k);
        }
        prop_assert_eq!(&batched, &reference);
        // Scalar insert agrees too, and removal round-trips to empty.
        let mut scalar = Iblt::new(cells, hashes, seed);
        for &k in &keys {
            scalar.insert(k);
        }
        prop_assert_eq!(&batched, &scalar);
        batched.remove_batch(&keys);
        prop_assert_eq!(&batched, &Iblt::new(cells, hashes, seed));
    }

    #[test]
    fn subtract_batch_matches_sequential_subtracts(
        cells in 1usize..200,
        hashes in 1u32..5,
        seed in any::<u64>(),
        a in prop::collection::vec(any::<u64>(), 0..120),
        b in prop::collection::vec(any::<u64>(), 0..120),
        c in prop::collection::vec(any::<u64>(), 0..120),
    ) {
        let build = |keys: &[u64]| {
            let mut t = Iblt::new(cells, hashes, seed);
            t.insert_batch(&dedup(keys.to_vec()));
            t
        };
        let (ta, tb, tc) = (build(&a), build(&b), build(&c));
        let mut fused = ta.clone();
        fused.subtract_batch(&[&tb, &tc]);
        let mut serial = ta.clone();
        serial.subtract(&tb);
        serial.subtract(&tc);
        prop_assert_eq!(fused, serial);
    }

    #[test]
    fn wave_peel_matches_reference_peel(
        d in 0usize..120,
        shared in 0usize..200,
        seed in any::<u64>(),
    ) {
        // Difference of exactly d keys, peeled from a table sized by the
        // §8.1.1 rule; compare the wave peeler against the seed's decoder.
        let cells = (2 * d).max(8);
        let a: Vec<u64> = (1..=(shared + d) as u64).map(|x| x.wrapping_mul(0x9E3779B97F4A7C15) | 1).collect();
        let b = &a[d..];
        let mut ta = Iblt::new(cells, 4, seed);
        ta.insert_batch(&a);
        let mut tb = Iblt::new(cells, 4, seed);
        tb.insert_batch(b);
        ta.subtract(&tb);
        let fast = ta.peel();
        let reference = ta.peel_reference();
        prop_assert_eq!(fast.complete, reference.complete);
        let set = |v: &[u64]| v.iter().copied().collect::<HashSet<u64>>();
        prop_assert_eq!(set(&fast.only_in_self), set(&reference.only_in_self));
        prop_assert_eq!(set(&fast.only_in_other), set(&reference.only_in_other));
        // try_peel agrees with the legacy flag and reports stuck cells.
        match ta.try_peel() {
            Ok(r) => {
                prop_assert!(r.complete);
                prop_assert_eq!(r.complete, fast.complete);
            }
            Err(PeelError::Stuck { partial, stuck_cells }) => {
                prop_assert!(!fast.complete);
                prop_assert!(stuck_cells > 0);
                prop_assert_eq!(partial.len(), fast.len());
            }
        }
    }
}
