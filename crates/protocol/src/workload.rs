//! Workload generation matching the paper's experiment setup (§8).
//!
//! "Our evaluation uses a key space (universe) U of all 32-bit binary
//! strings. [...] elements in A are drawn from U uniformly at random without
//! replacement. A certain number (|A| − d) of elements in A are then sampled
//! also uniformly at random without replacement to make up set B so that the
//! set difference A△B contains exactly d elements."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A generated experiment instance: Alice's set, Bob's set, and the exact
/// difference between them.
#[derive(Debug, Clone)]
pub struct SetPair {
    /// Alice's set `A`.
    pub a: Vec<u64>,
    /// Bob's set `B` (a subset of `A` under the paper's setup).
    pub b: Vec<u64>,
    /// Ground-truth symmetric difference `A△B`.
    pub diff: HashSet<u64>,
}

impl SetPair {
    /// Cardinality of the ground-truth difference.
    pub fn d(&self) -> usize {
        self.diff.len()
    }
}

/// Parameters of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Cardinality of Alice's set `|A|` (the paper fixes 10^6).
    pub set_size: usize,
    /// Exact set-difference cardinality `d = |A△B|`.
    pub d: usize,
    /// Bit length of an element signature, `log|U|` (32 in the paper's main
    /// experiments; 64/256 in extensions).
    pub universe_bits: u32,
    /// When `true` (the paper's setup, also Graphene's best case) `B ⊂ A`;
    /// when `false` the difference is split between `A\B` and `B\A`.
    pub subset_mode: bool,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            set_size: 1_000_000,
            d: 1_000,
            universe_bits: 32,
            subset_mode: true,
        }
    }
}

impl Workload {
    /// Create a workload with the paper's defaults (`|A|`=10^6, 32-bit universe,
    /// `B ⊂ A`) and the given difference cardinality.
    pub fn paper_default(d: usize) -> Self {
        Workload {
            d,
            ..Default::default()
        }
    }

    /// Generate one `(A, B)` instance. All randomness is derived from `seed`,
    /// so the same `(workload, seed)` pair always produces the same instance.
    ///
    /// # Panics
    /// Panics if `d > set_size`, or the universe is too small to hold
    /// `set_size` distinct nonzero elements.
    pub fn generate(&self, seed: u64) -> SetPair {
        assert!(self.d <= self.set_size, "d cannot exceed |A|");
        assert!(
            (1..=64).contains(&self.universe_bits),
            "universe_bits must be in 1..=64"
        );
        let universe = if self.universe_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.universe_bits) - 1
        };
        assert!(
            (self.set_size as u64) < universe,
            "universe too small for the requested set size"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Draw |A| (+ d extra when not in subset mode) distinct nonzero elements.
        let extra = if self.subset_mode { 0 } else { self.d / 2 };
        let mut chosen: HashSet<u64> = HashSet::with_capacity(self.set_size + extra);
        while chosen.len() < self.set_size + extra {
            // The all-zero element is excluded from the universe (§2.1).
            let candidate = (rng.random::<u64>() & universe).max(1);
            chosen.insert(candidate);
        }
        let mut pool: Vec<u64> = chosen.into_iter().collect();
        // HashSet iteration order is not deterministic across instances; sort
        // before shuffling so the same (workload, seed) pair always yields the
        // same instance, as the API promises.
        pool.sort_unstable();
        pool.shuffle(&mut rng);

        if self.subset_mode {
            let a = pool;
            // B = A minus d randomly chosen elements; since `pool` is already
            // shuffled, taking the first |A| - d elements is a uniform choice.
            let b: Vec<u64> = a[..self.set_size - self.d].to_vec();
            let diff: HashSet<u64> = a[self.set_size - self.d..].iter().copied().collect();
            SetPair { a, b, diff }
        } else {
            // Split the difference between A-only and B-only elements.
            let b_only = extra;
            let a_only = self.d - b_only;
            let a: Vec<u64> = pool[..self.set_size].to_vec();
            let shared = &pool[a_only..self.set_size];
            let mut b: Vec<u64> = shared.to_vec();
            b.extend_from_slice(&pool[self.set_size..]);
            let mut diff: HashSet<u64> = pool[..a_only].iter().copied().collect();
            diff.extend(pool[self.set_size..].iter().copied());
            SetPair { a, b, diff }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetric_difference;

    #[test]
    fn subset_mode_produces_exact_difference() {
        let w = Workload {
            set_size: 5_000,
            d: 37,
            universe_bits: 32,
            subset_mode: true,
        };
        let pair = w.generate(1);
        assert_eq!(pair.a.len(), 5_000);
        assert_eq!(pair.b.len(), 5_000 - 37);
        assert_eq!(pair.d(), 37);
        assert_eq!(symmetric_difference(&pair.a, &pair.b), pair.diff);
        // B must be a subset of A.
        let sa: HashSet<u64> = pair.a.iter().copied().collect();
        assert!(pair.b.iter().all(|e| sa.contains(e)));
    }

    #[test]
    fn two_sided_mode_produces_exact_difference() {
        let w = Workload {
            set_size: 2_000,
            d: 100,
            universe_bits: 32,
            subset_mode: false,
        };
        let pair = w.generate(9);
        assert_eq!(pair.a.len(), 2_000);
        assert_eq!(pair.d(), 100);
        assert_eq!(symmetric_difference(&pair.a, &pair.b), pair.diff);
        // Both sides should own some exclusive elements.
        let sa: HashSet<u64> = pair.a.iter().copied().collect();
        let sb: HashSet<u64> = pair.b.iter().copied().collect();
        assert!(pair.diff.iter().any(|e| sa.contains(e) && !sb.contains(e)));
        assert!(pair.diff.iter().any(|e| sb.contains(e) && !sa.contains(e)));
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let w = Workload::paper_default(50);
        let w_small = Workload {
            set_size: 1_000,
            ..w
        };
        let p1 = w_small.generate(77);
        let p2 = w_small.generate(77);
        let p3 = w_small.generate(78);
        assert_eq!(p1.a, p2.a);
        assert_eq!(p1.b, p2.b);
        assert_ne!(p1.a, p3.a);
    }

    #[test]
    fn elements_are_nonzero_and_in_universe() {
        let w = Workload {
            set_size: 3_000,
            d: 10,
            universe_bits: 16,
            subset_mode: true,
        };
        let pair = w.generate(3);
        assert!(pair.a.iter().all(|&e| e > 0 && e < (1 << 16)));
    }

    #[test]
    fn zero_difference_means_equal_sets() {
        let w = Workload {
            set_size: 500,
            d: 0,
            universe_bits: 32,
            subset_mode: true,
        };
        let pair = w.generate(11);
        assert_eq!(pair.d(), 0);
        assert_eq!(pair.a.len(), pair.b.len());
    }

    #[test]
    #[should_panic(expected = "d cannot exceed |A|")]
    fn oversized_difference_panics() {
        Workload {
            set_size: 10,
            d: 11,
            universe_bits: 32,
            subset_mode: true,
        }
        .generate(0);
    }
}
