//! Message transcripts and communication accounting.

/// Direction of a protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Alice → Bob.
    AliceToBob,
    /// Bob → Alice.
    BobToAlice,
}

/// Aggregate communication statistics of a reconciliation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Bytes sent from Alice to Bob.
    pub bytes_alice_to_bob: u64,
    /// Bytes sent from Bob to Alice.
    pub bytes_bob_to_alice: u64,
    /// Number of messages exchanged (either direction).
    pub messages: u32,
}

impl CommStats {
    /// Total bytes exchanged in both directions — the paper's
    /// "data transmitted" metric (Figures 1b, 2b, 3b, 5).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_alice_to_bob + self.bytes_bob_to_alice
    }

    /// Total kilobytes exchanged (the unit the paper plots).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1000.0
    }

    /// Merge another run's statistics into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_alice_to_bob += other.bytes_alice_to_bob;
        self.bytes_bob_to_alice += other.bytes_bob_to_alice;
        self.messages += other.messages;
    }
}

/// A record of one logical message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageRecord {
    /// Protocol round this message belongs to (1-based).
    pub round: u32,
    /// Direction of the message.
    pub direction: Direction,
    /// A short label describing the payload (e.g. `"bch-sketch"`).
    pub label: &'static str,
    /// Payload size in **bits** — the paper accounts several sub-byte
    /// quantities (bit-error positions of `log n` bits each), so the ledger
    /// keeps bit precision and rounds up only at the aggregate level.
    pub bits: u64,
    /// Size of the message as actually *serialized* for a transport, in
    /// bytes. The paper's accounting (`bits`) charges the
    /// information-theoretic payload; a real wire format pays fixed-width
    /// fields and per-message headers on top. [`Transcript::send_bits`] /
    /// [`Transcript::send_bytes`] default this to `ceil(bits / 8)`;
    /// [`Transcript::send_encoded`] records the measured encoding.
    pub wire_bytes: u64,
}

/// A ledger of all messages exchanged during a reconciliation run.
///
/// Schemes record every payload they *would* put on the wire; the transcript
/// sums them so the experiment harness reports measured (not estimated)
/// communication overhead, including any extra rounds.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    records: Vec<MessageRecord>,
    current_round: u32,
    round_trips: u32,
}

impl Transcript {
    /// Create an empty transcript (round counter starts at 1).
    pub fn new() -> Self {
        Transcript {
            records: Vec::new(),
            current_round: 1,
            round_trips: 0,
        }
    }

    /// The current round number (1-based).
    pub fn round(&self) -> u32 {
        self.current_round
    }

    /// Advance to the next protocol round.
    pub fn next_round(&mut self) {
        self.current_round += 1;
    }

    /// Record one request-response exchange on the transport. Protocol
    /// rounds and round trips coincide in the classic protocol, but a
    /// pipelined transport packs several rounds into one trip — this
    /// counter ledgers the wall-clock-relevant quantity separately from the
    /// paper's round numbering.
    pub fn record_round_trip(&mut self) {
        self.round_trips += 1;
    }

    /// Number of request-response exchanges recorded with
    /// [`Transcript::record_round_trip`]. Zero when the driver never
    /// recorded any (e.g. purely in-process runs that predate pipelining).
    pub fn round_trips(&self) -> u32 {
        self.round_trips
    }

    /// Record a message of `bits` bits in the current round. The serialized
    /// size defaults to the byte-rounded payload; use
    /// [`Transcript::send_encoded`] when the actual encoding was measured.
    pub fn send_bits(&mut self, direction: Direction, label: &'static str, bits: u64) {
        self.send_encoded(direction, label, bits, bits.div_ceil(8));
    }

    /// Record a message of `bytes` bytes in the current round.
    pub fn send_bytes(&mut self, direction: Direction, label: &'static str, bytes: u64) {
        self.send_bits(direction, label, bytes * 8);
    }

    /// Record a message with both its information-theoretic payload (`bits`,
    /// the paper's accounting) and its measured serialized size
    /// (`wire_bytes`). The networked subsystem uses this to keep the two
    /// ledgers — what the paper charges and what a socket would carry —
    /// side by side in one transcript.
    pub fn send_encoded(
        &mut self,
        direction: Direction,
        label: &'static str,
        bits: u64,
        wire_bytes: u64,
    ) {
        self.records.push(MessageRecord {
            round: self.current_round,
            direction,
            label,
            bits,
            wire_bytes,
        });
    }

    /// All recorded messages.
    pub fn records(&self) -> &[MessageRecord] {
        &self.records
    }

    /// Total bits sent in the given direction.
    pub fn bits_in_direction(&self, direction: Direction) -> u64 {
        self.records
            .iter()
            .filter(|r| r.direction == direction)
            .map(|r| r.bits)
            .sum()
    }

    /// Total bits recorded during the given round.
    pub fn bits_in_round(&self, round: u32) -> u64 {
        self.records
            .iter()
            .filter(|r| r.round == round)
            .map(|r| r.bits)
            .sum()
    }

    /// Total bits for messages carrying the given label.
    pub fn bits_for_label(&self, label: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.label == label)
            .map(|r| r.bits)
            .sum()
    }

    /// Total serialized bytes for messages carrying the given label — e.g.
    /// the `"delta-batch"` ledger a delta-subscription run keeps beside its
    /// reconciliation bytes, so tests can pin "delta bytes are
    /// O(|changes|)" against measured encodings rather than wall time.
    pub fn wire_bytes_for_label(&self, label: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.label == label)
            .map(|r| r.wire_bytes)
            .sum()
    }

    /// Total serialized bytes in the given direction (see
    /// [`MessageRecord::wire_bytes`]).
    pub fn wire_bytes_in_direction(&self, direction: Direction) -> u64 {
        self.records
            .iter()
            .filter(|r| r.direction == direction)
            .map(|r| r.wire_bytes)
            .sum()
    }

    /// Total serialized bytes in both directions — the number a byte counter
    /// on the connection would report for the payloads recorded here.
    pub fn wire_bytes_total(&self) -> u64 {
        self.records.iter().map(|r| r.wire_bytes).sum()
    }

    /// The number of rounds in which at least one message was sent.
    pub fn rounds_used(&self) -> u32 {
        self.records.iter().map(|r| r.round).max().unwrap_or(0)
    }

    /// Collapse the ledger into aggregate [`CommStats`]. Bits are converted
    /// to bytes per direction, rounding up.
    pub fn stats(&self) -> CommStats {
        let a2b = self.bits_in_direction(Direction::AliceToBob);
        let b2a = self.bits_in_direction(Direction::BobToAlice);
        CommStats {
            bytes_alice_to_bob: a2b.div_ceil(8),
            bytes_bob_to_alice: b2a.div_ceil(8),
            messages: self.records.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_accumulates_bits_and_rounds() {
        let mut t = Transcript::new();
        t.send_bits(Direction::AliceToBob, "bch-sketch", 13 * 7);
        t.send_bytes(Direction::BobToAlice, "xor-sums", 20);
        t.next_round();
        t.send_bits(Direction::AliceToBob, "bch-sketch", 50);
        assert_eq!(t.rounds_used(), 2);
        assert_eq!(t.bits_in_direction(Direction::AliceToBob), 141);
        assert_eq!(t.bits_in_direction(Direction::BobToAlice), 160);
        assert_eq!(t.bits_in_round(1), 91 + 160);
        assert_eq!(t.bits_for_label("bch-sketch"), 141);
        let s = t.stats();
        assert_eq!(s.bytes_alice_to_bob, 18); // ceil(141 / 8)
        assert_eq!(s.bytes_bob_to_alice, 20);
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_bytes(), 38);
        // Without measured encodings the wire ledger is the per-message
        // byte-rounded payload: ceil(91/8) + 20 + ceil(50/8).
        assert_eq!(t.wire_bytes_total(), 12 + 20 + 7);
    }

    #[test]
    fn measured_encodings_are_ledgered_separately() {
        let mut t = Transcript::new();
        t.send_encoded(Direction::AliceToBob, "framed-sketch", 13 * 7, 120);
        t.send_encoded(Direction::BobToAlice, "framed-report", 64, 33);
        t.send_bits(Direction::AliceToBob, "bch-sketch", 9);
        assert_eq!(t.bits_in_direction(Direction::AliceToBob), 91 + 9);
        assert_eq!(t.wire_bytes_in_direction(Direction::AliceToBob), 120 + 2);
        assert_eq!(t.wire_bytes_in_direction(Direction::BobToAlice), 33);
        assert_eq!(t.wire_bytes_total(), 155);
        assert_eq!(t.wire_bytes_for_label("framed-sketch"), 120);
        assert_eq!(t.wire_bytes_for_label("absent"), 0);
        // The paper-accounting aggregate is untouched by wire sizes
        // (bits summed per direction, then rounded: ceil(100/8) + ceil(64/8)).
        assert_eq!(t.stats().total_bytes(), 13 + 8);
    }

    #[test]
    fn stats_merge() {
        let mut a = CommStats {
            bytes_alice_to_bob: 10,
            bytes_bob_to_alice: 5,
            messages: 2,
        };
        let b = CommStats {
            bytes_alice_to_bob: 1,
            bytes_bob_to_alice: 2,
            messages: 1,
        };
        a.merge(&b);
        assert_eq!(a.total_bytes(), 18);
        assert_eq!(a.messages, 3);
        assert!((a.total_kb() - 0.018).abs() < 1e-12);
    }

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert_eq!(t.rounds_used(), 0);
        assert_eq!(t.stats().total_bytes(), 0);
        assert_eq!(t.round_trips(), 0);
    }

    #[test]
    fn round_trips_ledger_independently_of_rounds() {
        // A pipelined exchange: one trip carries two protocol rounds.
        let mut t = Transcript::new();
        t.record_round_trip();
        t.send_bits(Direction::AliceToBob, "bch-sketch", 100);
        t.next_round();
        t.send_bits(Direction::AliceToBob, "bch-sketch", 100);
        t.next_round();
        t.send_bits(Direction::BobToAlice, "bin-report", 50);
        assert_eq!(t.round_trips(), 1);
        assert_eq!(t.rounds_used(), 3);
    }
}
