//! Common protocol layer for all set-reconciliation schemes in the workspace.
//!
//! The paper evaluates four schemes (PBS, PinSketch, Difference Digest and
//! Graphene) on the same workloads and the same two metrics: communication
//! overhead (bytes exchanged until Alice knows `A△B`) and computational
//! overhead (encoding and decoding time). This crate defines the pieces they
//! all share so the experiment harness can treat them uniformly:
//!
//! * [`Reconciler`] — the trait every scheme implements: given Alice's and
//!   Bob's sets, run the (possibly multi-round) protocol and report the
//!   recovered difference together with [`CommStats`] and [`TimingStats`].
//! * [`Transcript`] — a message ledger that accounts every byte sent in each
//!   direction and every protocol round, so communication overhead is
//!   measured rather than estimated.
//! * [`Workload`] — the §8 experiment setup: `|A| = 10^6` elements drawn
//!   uniformly at random without replacement from a `log|U|`-bit universe and
//!   `B ⊂ A` with `|A△B| = d` exactly.

//!
//! # Example
//!
//! ```
//! use protocol::{Direction, Transcript};
//!
//! let mut t = Transcript::new();
//! t.record_round_trip();
//! t.send_bits(Direction::AliceToBob, "bch-sketch", 13 * 11);
//! t.send_bits(Direction::BobToAlice, "bin-report", 43);
//! assert_eq!(t.stats().total_bytes(), 18 + 6); // per-direction ceil to bytes
//! assert_eq!(t.rounds_used(), 1);
//! assert_eq!(t.round_trips(), 1);
//! ```

#![warn(missing_docs)]

mod transcript;
mod workload;

pub use transcript::{CommStats, Direction, MessageRecord, Transcript};
pub use workload::{SetPair, Workload};

use std::collections::HashSet;
use std::time::Duration;

/// Order-preserving map over a slice, run on worker threads when the
/// `parallel` feature is enabled and serially otherwise.
///
/// The group sketching loops of PBS and PinSketch/WP are embarrassingly
/// parallel — each group's BCH sketch depends only on that group's elements
/// — so this is safe to parallelize without changing any result: the output
/// is `items.iter().map(f)` in order either way, keeping transcripts and
/// decode outcomes deterministic. Implemented with `std::thread::scope`
/// (the registry mirror that would serve rayon is unreachable in this
/// build environment, and chunked scoped threads are all these loops need).
#[cfg(feature = "parallel")]
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (chunk, slot) in items.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            scope.spawn(|| {
                for (item, s) in chunk.iter().zip(slot.iter_mut()) {
                    *s = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("worker filled every slot"))
        .collect()
}

/// Serial fallback of [`par_map`] when the `parallel` feature is off.
#[cfg(not(feature = "parallel"))]
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    F: Fn(&T) -> U,
{
    items.iter().map(f).collect()
}

/// Wall-clock timing of the two sides of a reconciliation run.
///
/// Following the paper's convention (§8), *encoding time* is the time spent
/// building sketches/filters/digests of the full sets, and *decoding time* is
/// the time spent recovering the difference from them (including any
/// additional rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingStats {
    /// Time spent encoding the input sets into sketches.
    pub encode: Duration,
    /// Time spent decoding sketches into the set difference.
    pub decode: Duration,
}

impl TimingStats {
    /// Total computational time (encode + decode).
    pub fn total(&self) -> Duration {
        self.encode + self.decode
    }
}

/// The outcome of one reconciliation run.
#[derive(Debug, Clone)]
pub struct ReconcileOutcome {
    /// The set difference Alice recovered (claimed `A△B`).
    pub recovered: Vec<u64>,
    /// Whether the scheme itself believes it succeeded (e.g. every IBLT
    /// peeled, every checksum verified). The harness additionally compares
    /// `recovered` against the ground truth.
    pub claimed_success: bool,
    /// Bytes and rounds exchanged.
    pub comm: CommStats,
    /// Encode/decode timing.
    pub timing: TimingStats,
    /// Number of protocol rounds executed.
    pub rounds: u32,
}

impl ReconcileOutcome {
    /// Check the recovered difference against ground truth (exact match as
    /// sets). This is what the paper calls a *successful* reconciliation.
    pub fn matches(&self, truth: &HashSet<u64>) -> bool {
        if self.recovered.len() != truth.len() {
            return false;
        }
        let got: HashSet<u64> = self.recovered.iter().copied().collect();
        got == *truth
    }
}

/// A unidirectional set-reconciliation scheme: Alice learns `A△B`.
pub trait Reconciler {
    /// Human-readable scheme name used by the experiment harness
    /// (e.g. `"PBS"`, `"PinSketch"`, `"D.Digest"`, `"Graphene"`).
    fn name(&self) -> &'static str;

    /// Run the protocol between Alice (holding `a`) and Bob (holding `b`)
    /// and return what Alice learned. `seed` drives every random choice the
    /// scheme makes (hash seeds etc.) so runs are reproducible.
    fn reconcile(&self, a: &[u64], b: &[u64], seed: u64) -> ReconcileOutcome;
}

/// Convenience: compute the exact symmetric difference of two slices
/// (ground truth for the harness and tests).
pub fn symmetric_difference(a: &[u64], b: &[u64]) -> HashSet<u64> {
    let sa: HashSet<u64> = a.iter().copied().collect();
    let sb: HashSet<u64> = b.iter().copied().collect();
    sa.symmetric_difference(&sb).copied().collect()
}

/// The information-theoretic minimum communication for a difference of `d`
/// elements over a `universe_bits`-bit universe, in bytes (§1.1:
/// `d · log|U|` bits).
pub fn theoretical_minimum_bytes(d: usize, universe_bits: u32) -> f64 {
    d as f64 * universe_bits as f64 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_difference_basic() {
        let a = [1u64, 2, 3, 4];
        let b = [3u64, 4, 5];
        let d = symmetric_difference(&a, &b);
        assert_eq!(d, HashSet::from([1u64, 2, 5]));
    }

    #[test]
    fn outcome_matches_ground_truth() {
        let truth: HashSet<u64> = [7u64, 9].into_iter().collect();
        let out = ReconcileOutcome {
            recovered: vec![9, 7],
            claimed_success: true,
            comm: CommStats::default(),
            timing: TimingStats::default(),
            rounds: 1,
        };
        assert!(out.matches(&truth));
        let bad = ReconcileOutcome {
            recovered: vec![9, 8],
            ..out.clone()
        };
        assert!(!bad.matches(&truth));
        let short = ReconcileOutcome {
            recovered: vec![9],
            ..out
        };
        assert!(!short.matches(&truth));
    }

    #[test]
    fn theoretical_minimum() {
        assert_eq!(theoretical_minimum_bytes(1000, 32), 4000.0);
        assert_eq!(theoretical_minimum_bytes(10, 256), 320.0);
    }
}
