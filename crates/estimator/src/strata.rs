//! The Strata estimator of Difference Digest (Eppstein et al. [15]).
//!
//! The estimator keeps one small IBLT per "stratum"; an element goes into
//! stratum `i` with probability `2^-(i+1)` (determined by the number of
//! trailing zeros of a hash of the element, the Flajolet–Martin idea).
//! To estimate `|A△B|`, the strata are subtracted pairwise and decoded from
//! the deepest stratum downward: as soon as stratum `i` fails to decode, the
//! estimate is `2^(i+1) ×` (number of differences recovered in the strata
//! above it). Appendix B notes this estimator is considerably less
//! space-efficient than ToW — reproduced by its `wire_bits` here.

use crate::Estimator;
use iblt::Iblt;
use xhash::{derive_seed, xxhash64_u64};

/// Number of strata (enough for differences up to 2^32).
const DEFAULT_STRATA: usize = 32;
/// Cells per stratum IBLT, as in the Difference Digest paper.
const CELLS_PER_STRATUM: usize = 80;
/// Hash functions per stratum IBLT.
const HASHES_PER_STRATUM: u32 = 3;

/// Strata estimator: a ladder of fixed-size IBLTs.
#[derive(Debug, Clone)]
pub struct StrataEstimator {
    strata: Vec<Iblt>,
    seed: u64,
    /// Seed of the stratum-assignment hash, derived once at construction so
    /// the insert paths pay one hash per element instead of two.
    stratum_seed: u64,
    universe_bits: u32,
}

impl StrataEstimator {
    /// Create an estimator with the Difference Digest defaults
    /// (32 strata × 80 cells) for a `universe_bits`-bit element universe.
    pub fn new(universe_bits: u32, seed: u64) -> Self {
        Self::with_shape(DEFAULT_STRATA, CELLS_PER_STRATUM, universe_bits, seed)
    }

    /// Create an estimator with an explicit number of strata and cells.
    pub fn with_shape(strata: usize, cells: usize, universe_bits: u32, seed: u64) -> Self {
        assert!(strata > 0 && strata <= 64, "strata count must be in 1..=64");
        let tables = (0..strata)
            .map(|i| {
                Iblt::new(
                    cells,
                    HASHES_PER_STRATUM,
                    derive_seed(seed, 0x5712A7A + i as u64),
                )
            })
            .collect();
        StrataEstimator {
            strata: tables,
            seed,
            stratum_seed: derive_seed(seed, 0x57A7),
            universe_bits,
        }
    }

    /// Stratum index of an element: the number of trailing zeros of a hash,
    /// capped at the deepest stratum.
    #[inline]
    fn stratum_of(&self, element: u64) -> usize {
        let h = xxhash64_u64(element, self.stratum_seed);
        (h.trailing_zeros() as usize).min(self.strata.len() - 1)
    }

    /// Number of strata.
    pub fn strata_count(&self) -> usize {
        self.strata.len()
    }
}

impl Estimator for StrataEstimator {
    fn name(&self) -> &'static str {
        "Strata"
    }

    fn insert(&mut self, element: u64) {
        let s = self.stratum_of(element);
        self.strata[s].insert(element);
    }

    /// Batched insert: one stratum-hash pass over the slice buckets the
    /// elements per stratum, then each stratum's bucket goes through the
    /// IBLT's 4-wide [`Iblt::insert_batch`] kernel — so the stratum hash is
    /// computed exactly once per element and the per-table hash seeds are
    /// reused across the whole bucket. Summary identical to per-element
    /// [`Estimator::insert`].
    fn insert_slice(&mut self, elements: &[u64]) {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); self.strata.len()];
        for &e in elements {
            buckets[self.stratum_of(e)].push(e);
        }
        for (table, bucket) in self.strata.iter_mut().zip(&buckets) {
            if !bucket.is_empty() {
                table.insert_batch(bucket);
            }
        }
    }

    fn wire_bits(&self) -> u64 {
        self.strata
            .iter()
            .map(|t| t.wire_bits(self.universe_bits))
            .sum()
    }

    /// Estimate `|A△B|` from the two strata ladders.
    ///
    /// All strata are subtracted and peeled in one call to the fused
    /// [`Iblt::diff_and_peel_batch`] kernel (one table copy per stratum,
    /// with the subtraction folded into that copy and the peel running in
    /// place) instead of 32 serial `clone`+`subtract`+`peel` passes. Peeling
    /// a stratum is `O(cells)` regardless of how many elements were inserted
    /// into it, so decoding the shallow strata that the early-exit walk may
    /// never consult costs a bounded ~80-cell scan each — the walk below
    /// still stops at the first undecodable stratum, producing exactly the
    /// estimate the serial loop did.
    fn estimate(&self, other: &Self) -> f64 {
        assert_eq!(
            self.strata.len(),
            other.strata.len(),
            "strata count mismatch"
        );
        assert_eq!(self.seed, other.seed, "estimators must share their seed");
        let pairs: Vec<(&Iblt, &Iblt)> = self.strata.iter().zip(&other.strata).collect();
        let peels = Iblt::diff_and_peel_batch(&pairs);
        let mut recovered = 0usize;
        // Walk from the deepest (sparsest) stratum down to stratum 0; stop
        // at the first stratum that fails to decode and scale up.
        for (i, peel) in peels.iter().enumerate().rev() {
            if peel.complete {
                recovered += peel.len();
            } else {
                return (recovered as f64) * 2f64.powi(i as i32 + 1);
            }
        }
        // Every stratum decoded: the recovered count is exact.
        recovered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert(rng.random::<u64>() | 1);
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // makes multi-seed statistical tests flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    fn build(set: &[u64], seed: u64) -> StrataEstimator {
        let mut e = StrataEstimator::new(32, seed);
        for &x in set {
            e.insert(x);
        }
        e
    }

    #[test]
    fn small_difference_is_recovered_exactly() {
        let (a, b) = random_pair(2_000, 20, 1);
        let ea = build(&a, 5);
        let eb = build(&b, 5);
        let est = ea.estimate(&eb);
        // Small differences decode exactly in every stratum.
        assert!((est - 20.0).abs() <= 8.0, "estimate {est} too far from 20");
    }

    #[test]
    fn large_difference_estimate_is_right_order() {
        let d = 5_000usize;
        let (a, b) = random_pair(20_000, d, 2);
        let ea = build(&a, 9);
        let eb = build(&b, 9);
        let est = ea.estimate(&eb);
        assert!(
            est > 0.3 * d as f64 && est < 3.0 * d as f64,
            "estimate {est} not within 3x of true d={d}"
        );
    }

    #[test]
    fn identical_sets_estimate_zero() {
        let (a, _) = random_pair(1_000, 0, 3);
        let ea = build(&a, 1);
        let eb = build(&a, 1);
        assert_eq!(ea.estimate(&eb), 0.0);
    }

    #[test]
    fn wire_size_is_much_larger_than_tow() {
        // Appendix B: the Strata estimator is far less space-efficient than
        // ToW. 32 strata × 80 cells × 3 words × 32 bits ≈ 30 KB vs 336 bytes.
        let strata = StrataEstimator::new(32, 0);
        let tow_bits = 128u64 * 21;
        assert!(strata.wire_bits() > 10 * tow_bits);
    }

    #[test]
    #[should_panic(expected = "strata count must be in 1..=64")]
    fn invalid_strata_count_panics() {
        StrataEstimator::with_shape(0, 10, 32, 0);
    }
}
