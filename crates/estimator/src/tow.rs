//! The Tug-of-War (ToW) set-difference cardinality estimator (§6).
//!
//! One ToW sketch of a set `S` under a ±1 hash `f` is `Y_f(S) = Σ_{s∈S} f(s)`.
//! For two sets, `(Y_f(A) − Y_f(B))²` is an unbiased estimator of
//! `d = |A△B|` with variance `2d² − 2d` (Appendix A); averaging ℓ
//! independent sketches divides the variance by ℓ. The paper uses ℓ = 128
//! sketches (336 bytes) and the inflation factor γ = 1.38, the smallest γ
//! for which `Pr[d ≤ γ·d̂] ≥ 99%` at that ℓ.

use crate::Estimator;
use xhash::{derive_seed, SignHasher};

/// Number of sketches the paper settles on (§6.2).
pub const DEFAULT_SKETCH_COUNT: usize = 128;

/// The γ = 1.38 inflation factor applied to the estimate before choosing
/// protocol parameters (§6.2).
pub const RECOMMENDED_INFLATION: f64 = 1.38;

/// The §6.2 parameterization rule: inflate a raw estimate `d̂` by γ and
/// round up to at least 1. Every consumer of a ToW estimate — the
/// in-process `Pbs::reconcile`, [`TowEstimator::conservative_estimate`],
/// and the networked server's estimator exchange — must use this one
/// helper so the client and server always derive the same `d`.
pub fn inflate_estimate(d_hat: f64) -> usize {
    (d_hat * RECOMMENDED_INFLATION).ceil().max(1.0) as usize
}

/// A bank of ℓ ToW sketches of one set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TowEstimator {
    sketches: Vec<i64>,
    hashers: Vec<SignHasher>,
    seed: u64,
    items: u64,
}

impl TowEstimator {
    /// Create an estimator with `sketch_count` sketches derived from `seed`.
    pub fn new(sketch_count: usize, seed: u64) -> Self {
        assert!(sketch_count > 0, "need at least one sketch");
        let hashers = (0..sketch_count)
            .map(|i| SignHasher::from_seed(derive_seed(seed, i as u64)))
            .collect();
        TowEstimator {
            sketches: vec![0i64; sketch_count],
            hashers,
            seed,
            items: 0,
        }
    }

    /// The paper's default configuration: 128 sketches.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(DEFAULT_SKETCH_COUNT, seed)
    }

    /// Number of sketches ℓ.
    pub fn sketch_count(&self) -> usize {
        self.sketches.len()
    }

    /// Raw sketch values.
    pub fn sketches(&self) -> &[i64] {
        &self.sketches
    }

    /// Number of inserted elements (used for wire-size accounting: each
    /// sketch is an integer in `[-|S|, |S|]`, i.e. `log2(2|S|+1)` bits).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Estimate `d` and apply the γ inflation, returning the value PBS
    /// should be parameterized with (rounded up, at least 1).
    pub fn conservative_estimate(&self, other: &Self) -> usize {
        inflate_estimate(self.estimate(other))
    }

    /// The construction seed. A peer must build its estimator from the same
    /// seed for [`Estimator::estimate`] to combine the two banks.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serialize the bank for a transport-level estimator exchange (the
    /// `EstimatorExchange` frame of the networked protocol): sketch count,
    /// item count, seed, then the raw sketch values, all little-endian
    /// fixed-width. The deserialized bank re-derives its hashers from the
    /// seed, so the ±1 hash functions are never on the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + 8 + 8 * self.sketches.len());
        out.extend_from_slice(&(self.sketches.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.items.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        for &v in &self.sketches {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize a bank produced by [`TowEstimator::to_bytes`]. Returns
    /// `None` for truncated, oversized or count-inconsistent input (the
    /// declared sketch count must match the bytes actually present, so a
    /// hostile length field cannot trigger a huge allocation).
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let count = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?) as usize;
        if count == 0 || buf.len() != 4 + 8 + 8 + 8 * count {
            return None;
        }
        let items = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let seed = u64::from_le_bytes(buf[12..20].try_into().ok()?);
        let mut bank = TowEstimator::new(count, seed);
        bank.items = items;
        for (i, sk) in bank.sketches.iter_mut().enumerate() {
            let at = 20 + 8 * i;
            *sk = i64::from_le_bytes(buf[at..at + 8].try_into().ok()?);
        }
        Some(bank)
    }
}

impl Estimator for TowEstimator {
    fn name(&self) -> &'static str {
        "ToW"
    }

    fn insert(&mut self, element: u64) {
        for (sk, h) in self.sketches.iter_mut().zip(&self.hashers) {
            *sk += h.sign(element);
        }
        self.items += 1;
    }

    /// Batched insert: four elements advance through the sketch bank
    /// together. Each hasher's coefficients are loaded once per quad (one
    /// pass over the bank per four elements instead of one per element) and
    /// the four ±1 evaluations run as interleaved Horner chains
    /// ([`SignHasher::sign_sum4`]). Summary identical to per-element
    /// [`Estimator::insert`].
    fn insert_slice(&mut self, elements: &[u64]) {
        let mut chunks = elements.chunks_exact(4);
        for quad in &mut chunks {
            let quad = [quad[0], quad[1], quad[2], quad[3]];
            for (sk, h) in self.sketches.iter_mut().zip(&self.hashers) {
                *sk += h.sign_sum4(&quad);
            }
        }
        for &e in chunks.remainder() {
            for (sk, h) in self.sketches.iter_mut().zip(&self.hashers) {
                *sk += h.sign(e);
            }
        }
        self.items += elements.len() as u64;
    }

    fn wire_bits(&self) -> u64 {
        // Each sketch is an integer within [-|S|, |S|]: log2(2|S|+1) bits.
        let per_sketch = (2.0 * self.items.max(1) as f64 + 1.0).log2().ceil() as u64;
        per_sketch * self.sketches.len() as u64
    }

    fn estimate(&self, other: &Self) -> f64 {
        assert_eq!(
            self.sketches.len(),
            other.sketches.len(),
            "sketch count mismatch"
        );
        assert_eq!(self.seed, other.seed, "estimators must share their seed");
        let sum: f64 = self
            .sketches
            .iter()
            .zip(&other.sketches)
            .map(|(&a, &b)| {
                let diff = (a - b) as f64;
                diff * diff
            })
            .sum();
        sum / self.sketches.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert(rng.random::<u64>() | 1);
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // makes multi-seed statistical tests flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    fn build(set: &[u64], sketches: usize, seed: u64) -> TowEstimator {
        let mut e = TowEstimator::new(sketches, seed);
        for &x in set {
            e.insert(x);
        }
        e
    }

    #[test]
    fn exact_for_identical_sets() {
        let (a, _) = random_pair(500, 0, 1);
        let ea = build(&a, 32, 7);
        let eb = build(&a, 32, 7);
        assert_eq!(ea.estimate(&eb), 0.0);
    }

    #[test]
    fn estimate_is_near_true_d() {
        let d = 200usize;
        let (a, b) = random_pair(3000, d, 2);
        let ea = build(&a, 128, 9);
        let eb = build(&b, 128, 9);
        let est = ea.estimate(&eb);
        // With ℓ=128 the standard deviation is about d·sqrt(2/128) ≈ 0.125 d;
        // allow ±50%.
        assert!(
            (est - d as f64).abs() < 0.5 * d as f64,
            "estimate {est} too far from true d={d}"
        );
    }

    #[test]
    fn unbiasedness_over_many_trials() {
        // Average of many single-sketch estimates should approach d.
        let d = 50usize;
        let (a, b) = random_pair(600, d, 3);
        let trials = 400;
        let mut total = 0.0;
        for t in 0..trials {
            let ea = build(&a, 1, 1000 + t);
            let eb = build(&b, 1, 1000 + t);
            total += ea.estimate(&eb);
        }
        let mean = total / trials as f64;
        assert!(
            (mean - d as f64).abs() < 0.25 * d as f64,
            "mean estimate {mean} deviates from d={d}"
        );
    }

    #[test]
    fn conservative_estimate_overshoots_with_high_probability() {
        // Reproduce the §6.2 guarantee Pr[d <= 1.38 d̂] >= 0.99 (roughly,
        // with fewer trials for test speed).
        let d = 300usize;
        let (a, b) = random_pair(2000, d, 4);
        let trials = 100;
        let mut covered = 0;
        for t in 0..trials {
            let ea = build(&a, DEFAULT_SKETCH_COUNT, 5000 + t);
            let eb = build(&b, DEFAULT_SKETCH_COUNT, 5000 + t);
            if ea.conservative_estimate(&eb) >= d {
                covered += 1;
            }
        }
        assert!(
            covered >= 95,
            "γ-inflated estimate covered d in only {covered}/100 trials"
        );
    }

    #[test]
    fn wire_size_matches_paper_figure() {
        // 128 sketches over a 10^6-element set: ceil(log2(2e6+1)) = 21 bits
        // per sketch -> 336 bytes, the figure quoted in §6.1.
        let mut e = TowEstimator::paper_default(0);
        e.items = 1_000_000;
        assert_eq!(e.wire_bits(), 128 * 21);
        assert_eq!(e.wire_bits().div_ceil(8), 336);
    }

    #[test]
    fn wire_round_trip_preserves_estimates() {
        let (a, b) = random_pair(800, 40, 6);
        let ea = build(&a, 64, 11);
        let eb = build(&b, 64, 11);
        let bytes = ea.to_bytes();
        let back = TowEstimator::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, ea);
        assert_eq!(back.seed(), ea.seed());
        assert_eq!(back.items(), ea.items());
        assert_eq!(back.estimate(&eb), ea.estimate(&eb));
    }

    #[test]
    fn malformed_estimator_bytes_rejected() {
        let e = build(&[1, 2, 3], 8, 5);
        let bytes = e.to_bytes();
        assert!(TowEstimator::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(TowEstimator::from_bytes(&[]).is_none());
        // A huge declared count with no backing bytes must not allocate.
        let mut hostile = bytes.clone();
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(TowEstimator::from_bytes(&hostile).is_none());
        // Zero sketches is not a valid bank.
        let mut zero = bytes;
        zero[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(TowEstimator::from_bytes(&zero[..20]).is_none());
    }

    #[test]
    #[should_panic(expected = "sketch count mismatch")]
    fn mismatched_sketch_counts_panic() {
        let a = TowEstimator::new(8, 1);
        let b = TowEstimator::new(16, 1);
        let _ = a.estimate(&b);
    }
}
