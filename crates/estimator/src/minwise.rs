//! The min-wise set-difference estimator (Appendix B).
//!
//! `k` independent min-hashes estimate the Jaccard similarity
//! `J = |A∩B| / |A∪B|` as the fraction of hash functions whose minimum
//! agrees between the two sets; with both set sizes known,
//! `|A△B| = (1 − J)/(1 + J) · (|A| + |B|)`.

use crate::Estimator;
use xhash::{derive_seed, xxhash64_u64};

/// Min-wise estimator state: one running minimum per hash function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinWiseEstimator {
    minima: Vec<u64>,
    /// Per-hash seeds, derived once at construction so the insert paths pay
    /// one hash per (element, function) instead of a seed derivation
    /// (itself a hash) plus a hash.
    hash_seeds: Vec<u64>,
    seed: u64,
    items: u64,
}

impl MinWiseEstimator {
    /// Create an estimator with `hash_count` min-hashes.
    pub fn new(hash_count: usize, seed: u64) -> Self {
        assert!(hash_count > 0, "need at least one hash");
        MinWiseEstimator {
            minima: vec![u64::MAX; hash_count],
            hash_seeds: (0..hash_count as u64)
                .map(|i| derive_seed(seed, i))
                .collect(),
            seed,
            items: 0,
        }
    }

    /// Number of min-hashes.
    pub fn hash_count(&self) -> usize {
        self.minima.len()
    }

    /// Number of inserted elements.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Estimated Jaccard similarity against another summary.
    pub fn jaccard(&self, other: &Self) -> f64 {
        assert_eq!(self.minima.len(), other.minima.len(), "hash count mismatch");
        assert_eq!(self.seed, other.seed, "estimators must share their seed");
        let agree = self
            .minima
            .iter()
            .zip(&other.minima)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.minima.len() as f64
    }
}

impl Estimator for MinWiseEstimator {
    fn name(&self) -> &'static str {
        "MinWise"
    }

    fn insert(&mut self, element: u64) {
        for (slot, &seed) in self.minima.iter_mut().zip(&self.hash_seeds) {
            let h = xxhash64_u64(element, seed);
            if h < *slot {
                *slot = h;
            }
        }
        self.items += 1;
    }

    /// Batched insert: four elements advance through the minima bank
    /// together (one pass over the bank per quad instead of one per
    /// element), with the four hashes per bank slot computed as independent
    /// chains and min-reduced branch-free. The bank stays L1-resident while
    /// the element stream is read once. Summary identical to per-element
    /// [`Estimator::insert`].
    fn insert_slice(&mut self, elements: &[u64]) {
        let mut chunks = elements.chunks_exact(4);
        for quad in &mut chunks {
            let quad = [quad[0], quad[1], quad[2], quad[3]];
            for (slot, &seed) in self.minima.iter_mut().zip(&self.hash_seeds) {
                let h = quad.map(|e| xxhash64_u64(e, seed));
                *slot = (*slot).min(h[0].min(h[1])).min(h[2].min(h[3]));
            }
        }
        for &e in chunks.remainder() {
            for (slot, &seed) in self.minima.iter_mut().zip(&self.hash_seeds) {
                *slot = (*slot).min(xxhash64_u64(e, seed));
            }
        }
        self.items += elements.len() as u64;
    }

    fn wire_bits(&self) -> u64 {
        // Each minimum is a full 64-bit hash value, plus the set size.
        64 * self.minima.len() as u64 + 64
    }

    fn estimate(&self, other: &Self) -> f64 {
        let j = self.jaccard(other);
        let total = (self.items + other.items) as f64;
        // |A△B| = (1-J)/(1+J) * (|A| + |B|)
        (1.0 - j) / (1.0 + j) * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = HashSet::new();
        while set.len() < n {
            set.insert(rng.random::<u64>() | 1);
        }
        // Sort before slicing: `HashSet` iteration order is per-process
        // random, and letting it pick *which* elements form the difference
        // makes multi-seed statistical tests flake rarely.
        let mut a: Vec<u64> = set.into_iter().collect();
        a.sort_unstable();
        let b = a[..n - d].to_vec();
        (a, b)
    }

    fn build(set: &[u64], k: usize, seed: u64) -> MinWiseEstimator {
        let mut e = MinWiseEstimator::new(k, seed);
        for &x in set {
            e.insert(x);
        }
        e
    }

    #[test]
    fn identical_sets_have_jaccard_one_and_zero_difference() {
        let (a, _) = random_pair(500, 0, 1);
        let ea = build(&a, 64, 3);
        let eb = build(&a, 64, 3);
        assert_eq!(ea.jaccard(&eb), 1.0);
        assert_eq!(ea.estimate(&eb), 0.0);
    }

    #[test]
    fn disjoint_sets_have_low_jaccard() {
        let (a, _) = random_pair(300, 0, 5);
        let (b, _) = random_pair(300, 0, 6);
        let ea = build(&a, 128, 7);
        let eb = build(&b, 128, 7);
        assert!(ea.jaccard(&eb) < 0.1);
        let est = ea.estimate(&eb);
        assert!(
            est > 400.0,
            "disjoint sets should estimate near 600, got {est}"
        );
    }

    #[test]
    fn moderate_difference_estimate_in_right_range() {
        let d = 400usize;
        let (a, b) = random_pair(2_000, d, 8);
        let ea = build(&a, 256, 11);
        let eb = build(&b, 256, 11);
        let est = ea.estimate(&eb);
        assert!(
            est > 0.4 * d as f64 && est < 2.5 * d as f64,
            "estimate {est} not within range of true d={d}"
        );
    }

    #[test]
    fn wire_size_grows_with_hash_count() {
        assert!(
            MinWiseEstimator::new(256, 0).wire_bits() > MinWiseEstimator::new(64, 0).wire_bits()
        );
    }
}
