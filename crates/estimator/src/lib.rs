//! Set-difference cardinality estimators.
//!
//! PBS (and PinSketch, and Difference Digest) must be parameterized with the
//! difference cardinality `d = |A△B|`, which is not known a priori. §6 of
//! the paper proposes estimating it with a **Tug-of-War (ToW) sketch** and
//! inflating the estimate by γ = 1.38 so that `Pr[d ≤ γ·d̂] ≥ 99%` when
//! ℓ = 128 sketches are used. Appendix B compares ToW against the two
//! estimators used by earlier work — the **Strata** estimator of Difference
//! Digest and the **min-wise** estimator — and finds ToW the most
//! space-efficient; all three are implemented here so that comparison can be
//! reproduced.

//!
//! # Example
//!
//! ```
//! use estimator::{inflate_estimate, Estimator, TowEstimator};
//!
//! let a: Vec<u64> = (1..=1000).collect();
//! let b: Vec<u64> = (51..=1000).collect(); // true d = 50
//! let mut bank_a = TowEstimator::new(128, 42);
//! bank_a.insert_slice(&a);
//! let mut bank_b = TowEstimator::new(128, 42);
//! bank_b.insert_slice(&b);
//! let d_hat = bank_a.estimate(&bank_b);
//! assert!(d_hat > 10.0 && d_hat < 250.0);
//! // γ-inflate before parameterizing PBS: Pr[d <= γ·d̂] >= 99%.
//! assert!(inflate_estimate(d_hat) >= 1);
//! ```

#![warn(missing_docs)]

mod minwise;
mod strata;
mod tow;

pub use minwise::MinWiseEstimator;
pub use strata::StrataEstimator;
pub use tow::{inflate_estimate, TowEstimator, DEFAULT_SKETCH_COUNT, RECOMMENDED_INFLATION};

/// A set-difference cardinality estimator.
///
/// The protocol is always the same shape: Alice builds a summary of `A` and
/// sends it to Bob (costing [`Estimator::wire_bits`]); Bob builds the same
/// kind of summary of `B` and combines the two into an estimate `d̂` of
/// `|A△B|`.
pub trait Estimator {
    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;

    /// Insert one element into the summary.
    fn insert(&mut self, element: u64);

    /// Insert a whole slice of elements.
    ///
    /// The default loops over [`Estimator::insert`]; every estimator in this
    /// crate overrides it with a batched kernel (four elements hashed per
    /// step, hash passes hoisted out of the per-element loop) that produces
    /// exactly the same summary — checked by batched-vs-scalar property
    /// tests.
    fn insert_slice(&mut self, elements: &[u64]) {
        for &e in elements {
            self.insert(e);
        }
    }

    /// Size of the summary on the wire, in bits.
    fn wire_bits(&self) -> u64;

    /// Combine with the peer's summary and estimate `|A△B|`.
    ///
    /// # Panics
    /// Panics if the two summaries were built with different parameters.
    fn estimate(&self, other: &Self) -> f64;
}

/// Build an estimator summary over a whole set (through the batched
/// [`Estimator::insert_slice`] path).
pub fn summarize<E: Estimator>(mut estimator: E, set: &[u64]) -> E {
    estimator.insert_slice(set);
    estimator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_inserts_everything() {
        let est = summarize(TowEstimator::new(16, 1), &[1, 2, 3]);
        let empty = TowEstimator::new(16, 1);
        // Against an empty summary the estimate is |A| in expectation; just
        // check it is positive and finite.
        let d = est.estimate(&empty);
        assert!(d.is_finite() && d > 0.0);
    }
}
