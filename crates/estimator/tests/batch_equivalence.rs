//! Batched-vs-scalar equivalence properties for every estimator insert path.
//!
//! `insert_slice` must build exactly the same summary — sketch values,
//! strata tables, minima, item counts, and therefore estimates — as one
//! `insert` call per element.

use estimator::{Estimator, MinWiseEstimator, StrataEstimator, TowEstimator};
use proptest::prelude::*;

fn scalar<E: Estimator>(mut e: E, elements: &[u64]) -> E {
    for &x in elements {
        e.insert(x);
    }
    e
}

fn batched<E: Estimator>(mut e: E, elements: &[u64]) -> E {
    e.insert_slice(elements);
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tow_insert_slice_matches_insert(
        sketches in 1usize..40,
        seed in any::<u64>(),
        elements in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        let a = batched(TowEstimator::new(sketches, seed), &elements);
        let b = scalar(TowEstimator::new(sketches, seed), &elements);
        prop_assert_eq!(a.sketches(), b.sketches());
        prop_assert_eq!(a.items(), b.items());
        prop_assert_eq!(a.wire_bits(), b.wire_bits());
    }

    #[test]
    fn strata_insert_slice_matches_insert(
        seed in any::<u64>(),
        elements in prop::collection::vec(1u64..=u64::MAX, 0..150),
        others in prop::collection::vec(1u64..=u64::MAX, 0..150),
    ) {
        let a = batched(StrataEstimator::with_shape(16, 20, 32, seed), &elements);
        let b = scalar(StrataEstimator::with_shape(16, 20, 32, seed), &elements);
        // StrataEstimator carries no PartialEq; equal summaries must yield
        // identical estimates against any third summary.
        let probe = batched(StrataEstimator::with_shape(16, 20, 32, seed), &others);
        prop_assert_eq!(a.estimate(&probe), b.estimate(&probe));
        prop_assert_eq!(a.wire_bits(), b.wire_bits());
    }

    #[test]
    fn minwise_insert_slice_matches_insert(
        hashes in 1usize..40,
        seed in any::<u64>(),
        elements in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        let a = batched(MinWiseEstimator::new(hashes, seed), &elements);
        let b = scalar(MinWiseEstimator::new(hashes, seed), &elements);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.items(), b.items());
    }
}
