//! Appendix B comparison: the three difference-cardinality estimators side by
//! side on the same set pairs — accuracy in the same ballpark, wire size
//! strongly favouring the Tug-of-War estimator.

use estimator::{Estimator, MinWiseEstimator, StrataEstimator, TowEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn random_pair(n: usize, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = HashSet::new();
    while set.len() < n {
        set.insert(rng.random::<u64>() | 1);
    }
    // Sort before slicing: `HashSet` iteration order is per-process
    // random, and letting it pick *which* elements form the difference
    // makes multi-seed statistical tests flake rarely.
    let mut a: Vec<u64> = set.into_iter().collect();
    a.sort_unstable();
    let b = a[..n - d].to_vec();
    (a, b)
}

fn feed<E: Estimator>(e: &mut E, set: &[u64]) {
    for &x in set {
        e.insert(x);
    }
}

#[test]
fn all_three_estimators_land_in_the_right_ballpark() {
    let d = 500usize;
    let (a, b) = random_pair(8_000, d, 42);

    let mut tow_a = TowEstimator::paper_default(1);
    let mut tow_b = TowEstimator::paper_default(1);
    feed(&mut tow_a, &a);
    feed(&mut tow_b, &b);
    let tow = tow_a.estimate(&tow_b);

    let mut strata_a = StrataEstimator::new(32, 2);
    let mut strata_b = StrataEstimator::new(32, 2);
    feed(&mut strata_a, &a);
    feed(&mut strata_b, &b);
    let strata = strata_a.estimate(&strata_b);

    let mut mw_a = MinWiseEstimator::new(256, 3);
    let mut mw_b = MinWiseEstimator::new(256, 3);
    feed(&mut mw_a, &a);
    feed(&mut mw_b, &b);
    let minwise = mw_a.estimate(&mw_b);

    for (name, est) in [("ToW", tow), ("Strata", strata), ("MinWise", minwise)] {
        assert!(
            est > 0.3 * d as f64 && est < 3.0 * d as f64,
            "{name} estimate {est} is not within 3x of d = {d}"
        );
    }
}

#[test]
fn tow_is_the_most_space_efficient() {
    let (a, _) = random_pair(50_000, 0, 7);
    let mut tow = TowEstimator::paper_default(1);
    let mut strata = StrataEstimator::new(32, 1);
    let mut minwise = MinWiseEstimator::new(128, 1);
    feed(&mut tow, &a);
    feed(&mut strata, &a);
    feed(&mut minwise, &a);
    // §6.1: 128 ToW sketches over a large set stay within a few hundred bytes.
    assert!(tow.wire_bits() <= 128 * 21);
    // Appendix B: ToW is far smaller than the Strata estimator and also
    // smaller than a min-wise summary of comparable accuracy.
    assert!(strata.wire_bits() > 10 * tow.wire_bits());
    assert!(minwise.wire_bits() > tow.wire_bits());
}

#[test]
fn estimators_are_insensitive_to_which_side_builds_first() {
    let (a, b) = random_pair(3_000, 100, 9);
    let mut ea = TowEstimator::paper_default(5);
    let mut eb = TowEstimator::paper_default(5);
    feed(&mut ea, &a);
    feed(&mut eb, &b);
    assert_eq!(ea.estimate(&eb), eb.estimate(&ea));
}
