//! A standard Bloom filter, built as the substrate for the Graphene baseline.
//!
//! Graphene (§7, \[32\]) couples an IBLT with a Bloom filter of Bob's set so
//! that Alice can first weed out the elements the filter says Bob already
//! has, and only the (few) remaining ones need to be covered by the IBLT.
//! The filter here is the textbook construction: `k` hash functions over an
//! `m`-bit array, with helpers to pick `m` and `k` for a target false
//! positive rate, and wire-size accounting so the experiment harness can
//! charge its transmission correctly.

//!
//! # Example
//!
//! ```
//! use bloom::BloomFilter;
//!
//! let mut filter = BloomFilter::new(1024, 4, 9);
//! filter.insert_all(1..=64u64);
//! assert!(filter.contains(17));           // no false negatives
//! assert!(filter.estimated_fpr() < 0.05); // few false positives at this sizing
//! ```

#![warn(missing_docs)]

use xhash::{derive_seed, xxhash64};

/// A Bloom filter over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    bit_count: u64,
    hash_count: u32,
    seed: u64,
    items: u64,
}

impl BloomFilter {
    /// Create a filter with an explicit number of bits and hash functions.
    pub fn new(bit_count: u64, hash_count: u32, seed: u64) -> Self {
        assert!(bit_count > 0, "Bloom filter needs at least one bit");
        assert!(hash_count > 0, "Bloom filter needs at least one hash");
        let words = bit_count.div_ceil(64) as usize;
        BloomFilter {
            bits: vec![0u64; words],
            bit_count,
            hash_count,
            seed,
            items: 0,
        }
    }

    /// Create a filter sized for `expected_items` insertions and a target
    /// false-positive rate `fpr`, using the standard optimal sizing
    /// `m = -n·ln(fpr)/ln(2)²` and `k = (m/n)·ln(2)`.
    pub fn with_rate(expected_items: usize, fpr: f64, seed: u64) -> Self {
        assert!(
            fpr > 0.0 && fpr < 1.0,
            "false positive rate must be in (0, 1)"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * fpr.ln()) / (ln2 * ln2)).ceil().max(8.0) as u64;
        let k = ((m as f64 / n) * ln2).round().max(1.0) as u32;
        BloomFilter::new(m, k.min(16), seed)
    }

    /// Number of bits in the filter (its wire size).
    pub fn bit_count(&self) -> u64 {
        self.bit_count
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.hash_count
    }

    /// Number of inserted items.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// `true` if no item has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Wire size in bits (the bit array; parameters are a few bytes and are
    /// accounted separately by the protocols).
    pub fn wire_bits(&self) -> u64 {
        self.bit_count
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        let h1 = xxhash64(&key.to_le_bytes(), derive_seed(self.seed, 11));
        let h2 = xxhash64(&key.to_le_bytes(), derive_seed(self.seed, 13)) | 1;
        let m = self.bit_count;
        (0..self.hash_count as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<u64> = self.positions(key).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
        self.items += 1;
    }

    /// Insert every key of an iterator.
    pub fn insert_all(&mut self, keys: impl IntoIterator<Item = u64>) {
        for k in keys {
            self.insert(k);
        }
    }

    /// Query a key: `false` means definitely absent, `true` means probably
    /// present.
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|p| self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0)
    }

    /// The theoretical false-positive rate for the current fill level.
    pub fn estimated_fpr(&self) -> f64 {
        let k = self.hash_count as f64;
        let n = self.items as f64;
        let m = self.bit_count as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01, 7);
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 7919 + 1).collect();
        bf.insert_all(keys.iter().copied());
        for &k in &keys {
            assert!(bf.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut bf = BloomFilter::with_rate(10_000, 0.01, 3);
        bf.insert_all((0..10_000u64).map(|i| i * 2 + 1));
        // Query keys guaranteed not inserted (even numbers beyond range).
        let trials = 20_000u64;
        let fp = (10_000_000..10_000_000 + trials)
            .filter(|&k| bf.contains(k * 2))
            .count();
        let rate = fp as f64 / trials as f64;
        assert!(rate < 0.03, "observed fpr {rate} far above the 1% target");
        assert!(bf.estimated_fpr() < 0.03);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::new(1024, 4, 5);
        assert!(bf.is_empty());
        let hits = (0..1000u64).filter(|&k| bf.contains(k)).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn sizing_formula_monotonicity() {
        let loose = BloomFilter::with_rate(1000, 0.1, 0);
        let tight = BloomFilter::with_rate(1000, 0.001, 0);
        assert!(tight.bit_count() > loose.bit_count());
        assert!(tight.hash_count() >= loose.hash_count());
        assert_eq!(loose.wire_bits(), loose.bit_count());
    }

    #[test]
    fn deterministic_across_instances_with_same_seed() {
        let mut a = BloomFilter::new(512, 3, 99);
        let mut b = BloomFilter::new(512, 3, 99);
        a.insert(1234);
        b.insert(1234);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "false positive rate must be in (0, 1)")]
    fn invalid_rate_panics() {
        BloomFilter::with_rate(10, 1.5, 0);
    }
}
