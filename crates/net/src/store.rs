//! Element stores and the multi-tenant store registry.
//!
//! A server reconciles clients against one or more named [`SetStore`]s:
//!
//! * [`InMemoryStore`] — the plain `RwLock<HashSet>` store of PR 3.
//! * [`MutableStore`] — a store that can additionally be *mutated from the
//!   server side* between sessions ([`MutableStore::apply`]), with an
//!   epoch-stamped changelog ([`MutableStore::changes_since`]) so readers
//!   can follow the store as a delta feed instead of re-snapshotting.
//! * [`StoreRegistry`] — the name → store map the v2 handshake routes on,
//!   carrying per-store statistics and per-store limit overrides.
//!
//! Mutation safety is snapshot-based: a session takes one
//! [`SetStore::snapshot`] before its estimator exchange and never looks at
//! the store again until the final transfer, so writers may mutate a
//! [`MutableStore`] *between* (but not observably *during*) the sessions'
//! snapshot points — concurrent sessions simply reconcile against the epoch
//! they snapshotted.

use crate::server::ServerStats;
use crate::wal::{self, DurableOptions, RecoveryReport, Wal};
use obs::{Gauge, Histogram};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A mutation callback registered with [`SetStore::register_notifier`]:
/// called with the store's new epoch after every effective change batch.
/// Return `false` to unregister (the store drops the notifier). Called
/// *outside* the store's element lock, but must still be fast and
/// non-blocking — a slow notifier delays the mutator, not the sessions.
pub type StoreNotifier = Box<dyn Fn(u64) -> bool + Send + Sync>;

/// What a store can answer when a delta subscriber asks for the changes
/// since an epoch ([`SetStore::delta_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaAnswer {
    /// The store keeps no epochs/changelog at all — every subscriber must
    /// run a full reconciliation.
    Unsupported,
    /// The changelog no longer reaches back to the requested epoch (it was
    /// trimmed past it, the epoch lies in this store's future — e.g. the
    /// server restarted with a fresh store — or the epoch space is
    /// exhausted). The subscriber must re-establish a baseline with a full
    /// reconciliation.
    Trimmed {
        /// The store's current epoch.
        current: u64,
    },
    /// The changes since the requested epoch, oldest first (empty when the
    /// subscriber is already current), plus the epoch they lead to — read
    /// atomically, so replaying `batches` over the subscriber's state
    /// yields exactly the store at `current`.
    Changes {
        /// Change batches after the requested epoch, oldest first.
        batches: Vec<ChangeBatch>,
        /// The store's epoch once every batch is applied.
        current: u64,
    },
}

/// The element store a server reconciles against.
///
/// `snapshot` is taken once per session (estimator and `BobSession` must
/// see the same set); `apply_missing` receives the client's final `Done`
/// transfer — the elements the client holds and this store lacks — so the
/// two sides converge on the union.
///
/// The two epoch methods ([`SetStore::epoch_snapshot`],
/// [`SetStore::delta_since`]) have defaults describing a store without a
/// changelog; [`MutableStore`] overrides them to serve the wire protocol's
/// v3 delta-subscription path.
pub trait SetStore: Send + Sync + 'static {
    /// The current element set.
    fn snapshot(&self) -> Vec<u64>;
    /// Ingest elements learned from a client.
    fn apply_missing(&self, elements: &[u64]);
    /// Number of elements currently held. The default materializes a
    /// snapshot; implementors with a cheap count should override it.
    fn element_count(&self) -> usize {
        self.snapshot().len()
    }
    /// The current element set together with the epoch it corresponds to
    /// (`None` when the store keeps no epochs). Epoch-capable stores must
    /// read the two atomically.
    fn epoch_snapshot(&self) -> (Vec<u64>, Option<u64>) {
        (self.snapshot(), None)
    }
    /// The changes since `epoch`, for delta subscribers. The default
    /// answers [`DeltaAnswer::Unsupported`].
    fn delta_since(&self, _epoch: u64) -> DeltaAnswer {
        DeltaAnswer::Unsupported
    }
    /// Register a mutation notifier (the live-subscription wakeup hook).
    /// Returns `false` when the store cannot notify (no epochs/changelog —
    /// the default), in which case the notifier is dropped unused.
    fn register_notifier(&self, _notifier: StoreNotifier) -> bool {
        false
    }
    /// Hook called once when the store is registered with a
    /// [`StoreRegistry`]: stores with internal timings publish them into
    /// `metrics` under the given `store` label. The default publishes
    /// nothing.
    fn attach_metrics(&self, _metrics: &obs::Registry, _label: &str) {}
}

/// A `RwLock<HashSet>`-backed [`SetStore`].
#[derive(Debug, Default)]
pub struct InMemoryStore {
    elements: RwLock<HashSet<u64>>,
}

impl InMemoryStore {
    /// Create a store holding the given elements.
    pub fn new(elements: impl IntoIterator<Item = u64>) -> Self {
        InMemoryStore {
            elements: RwLock::new(elements.into_iter().collect()),
        }
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.elements.read().unwrap().len()
    }

    /// `true` when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, element: u64) -> bool {
        self.elements.read().unwrap().contains(&element)
    }
}

impl SetStore for InMemoryStore {
    fn snapshot(&self) -> Vec<u64> {
        self.elements.read().unwrap().iter().copied().collect()
    }

    fn apply_missing(&self, elements: &[u64]) {
        let mut guard = self.elements.write().unwrap();
        guard.extend(elements.iter().copied());
    }

    fn element_count(&self) -> usize {
        self.len()
    }
}

/// One epoch's worth of effective changes to a [`MutableStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeBatch {
    /// The epoch this batch produced (epochs start at 0 and increase by 1
    /// per effective batch).
    pub epoch: u64,
    /// Elements the batch inserted (that were not present before).
    pub added: Vec<u64>,
    /// Elements the batch removed (that were present before).
    pub removed: Vec<u64>,
}

#[derive(Debug)]
struct MutableInner {
    elements: HashSet<u64>,
    epoch: u64,
    /// Recent change batches, oldest first; every batch's `epoch` is
    /// `base_epoch + its 1-based position`.
    log: VecDeque<ChangeBatch>,
    /// The epoch the oldest logged batch starts from. A reader at an epoch
    /// older than this can no longer catch up incrementally.
    base_epoch: u64,
    log_capacity: usize,
    /// The persistence backend, when this store is durable: every effective
    /// batch is written ahead to the WAL before memory is mutated, and
    /// snapshots compact the log periodically (see [`crate::wal`]).
    wal: Option<Wal>,
}

#[derive(Default)]
struct Notifiers(Mutex<Vec<StoreNotifier>>);

impl std::fmt::Debug for Notifiers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Notifiers({})",
            self.0.lock().map(|v| v.len()).unwrap_or(0)
        )
    }
}

/// A [`SetStore`] that supports server-side mutation between sessions,
/// with an epoch-stamped changelog.
///
/// Every effective mutation batch — [`MutableStore::apply`] from a local
/// feed (e.g. `pbs-syncd --watch-dir`) or [`SetStore::apply_missing`] from
/// a client's final transfer — bumps the store epoch and appends a
/// [`ChangeBatch`] to a bounded changelog. [`MutableStore::changes_since`]
/// turns the store into a delta feed: a reader that remembers the epoch of
/// its last look can fetch exactly the elements that changed since, or
/// learn that the log was truncated and a full re-snapshot is needed.
#[derive(Debug)]
pub struct MutableStore {
    inner: RwLock<MutableInner>,
    /// Live-subscription wakeup hooks, fired (with the new epoch) after
    /// every effective batch, *after* the element lock is released — a
    /// notifier may immediately call back into the store.
    notifiers: Notifiers,
    /// Store-layer telemetry, installed once at registry attach time
    /// ([`SetStore::attach_metrics`]); `None` until then, so unregistered
    /// stores pay nothing.
    metrics: OnceLock<MutableMetrics>,
    /// How long [`wal::recover`] took, for stores opened durably — published
    /// as a gauge when metrics attach.
    recovery_time: Option<Duration>,
}

/// The [`MutableStore`]-level instruments (WAL append/fsync/compaction
/// timers live inside [`Wal`] itself).
#[derive(Debug)]
struct MutableMetrics {
    /// Latency of one effective `apply` batch, WAL write-through included.
    apply: Arc<Histogram>,
    /// Current element count.
    elements: Gauge,
    /// Current epoch.
    epoch: Gauge,
}

/// Default number of change batches a [`MutableStore`] retains.
pub const DEFAULT_CHANGELOG_CAPACITY: usize = 1024;

impl MutableStore {
    /// Create a store holding the given elements at epoch 0, retaining
    /// [`DEFAULT_CHANGELOG_CAPACITY`] change batches.
    pub fn new(elements: impl IntoIterator<Item = u64>) -> Self {
        Self::with_log_capacity(elements, DEFAULT_CHANGELOG_CAPACITY)
    }

    /// Create a store with an explicit changelog capacity (0 disables the
    /// delta feed: every [`MutableStore::changes_since`] call from an older
    /// epoch reports truncation).
    pub fn with_log_capacity(elements: impl IntoIterator<Item = u64>, log_capacity: usize) -> Self {
        Self::with_epoch_origin(elements, 0, log_capacity)
    }

    /// Create a store whose epoch counter starts at `origin` instead of 0 —
    /// e.g. to resume a persisted store at the epoch it was saved at, so
    /// subscribers holding cached epochs keep working across a restart.
    /// `origin == u64::MAX` constructs the store with its epoch space
    /// already exhausted (see [`MutableStore::apply`]).
    pub fn with_epoch_origin(
        elements: impl IntoIterator<Item = u64>,
        origin: u64,
        log_capacity: usize,
    ) -> Self {
        MutableStore {
            inner: RwLock::new(MutableInner {
                elements: elements.into_iter().collect(),
                epoch: origin,
                log: VecDeque::new(),
                base_epoch: origin,
                log_capacity,
                wal: None,
            }),
            notifiers: Notifiers::default(),
            metrics: OnceLock::new(),
            recovery_time: None,
        }
    }

    /// Open a durable store backed by the directory `dir`: recover the
    /// persisted state (newest valid snapshot + WAL tail, truncating any
    /// torn final record — see [`wal::recover`]) and attach the WAL so
    /// every further effective batch is written through before memory is
    /// mutated. A missing or empty directory opens as the empty store at
    /// epoch 0. Epochs continue exactly where the persisted store left
    /// off, so subscribers' cached epochs stay valid across restarts.
    pub fn open_durable(dir: &Path, options: DurableOptions) -> io::Result<MutableStore> {
        Ok(Self::open_durable_report(dir, options)?.0)
    }

    /// [`MutableStore::open_durable`], additionally returning the recovery
    /// summary (replayed records, truncated bytes, rejected snapshots).
    pub fn open_durable_report(
        dir: &Path,
        options: DurableOptions,
    ) -> io::Result<(MutableStore, RecoveryReport)> {
        let recovery_start = Instant::now();
        let recovered = wal::recover(dir, options.log_capacity)?;
        let recovery_time = recovery_start.elapsed();
        let report = recovered.report();
        let wal = Wal::open(dir, options)?;
        let base_epoch = recovered
            .log
            .first()
            .map(|b| b.epoch - 1)
            .unwrap_or(recovered.epoch);
        let store = MutableStore {
            inner: RwLock::new(MutableInner {
                elements: recovered.elements,
                epoch: recovered.epoch,
                log: recovered.log.into(),
                base_epoch,
                log_capacity: options.log_capacity,
                wal: Some(wal),
            }),
            notifiers: Notifiers::default(),
            metrics: OnceLock::new(),
            recovery_time: Some(recovery_time),
        };
        Ok((store, report))
    }

    /// `true` when this store writes through to a WAL.
    pub fn is_durable(&self) -> bool {
        self.inner.read().unwrap().wal.is_some()
    }

    /// Force a snapshot + log compaction now (durable stores only; a no-op
    /// otherwise). Useful after seeding a store's initial contents so a
    /// restart recovers them from one snapshot instead of a WAL replay.
    pub fn compact_now(&self) -> io::Result<()> {
        let mut inner = self.inner.write().unwrap();
        Self::compact_inner(&mut inner)
    }

    /// Fault-injection hook for the crash-recovery tests: arm a
    /// [`wal::CrashPoint`] so the next matching persistence operation does
    /// its partial work and fails like a killed process. No-op on
    /// non-durable stores.
    pub fn inject_crash(&self, point: Option<wal::CrashPoint>) {
        if let Some(wal) = self.inner.write().unwrap().wal.as_mut() {
            wal.inject_crash(point);
        }
    }

    fn compact_inner(inner: &mut MutableInner) -> io::Result<()> {
        if inner.wal.is_none() {
            return Ok(());
        }
        let elements: Vec<u64> = inner.elements.iter().copied().collect();
        let log: Vec<ChangeBatch> = inner.log.iter().cloned().collect();
        let epoch = inner.epoch;
        inner
            .wal
            .as_mut()
            .expect("checked above")
            .compact(&elements, epoch, &log)
    }

    /// The store's current epoch. Epoch 0 is the construction state; every
    /// effective mutation batch increments it by one.
    pub fn epoch(&self) -> u64 {
        self.inner.read().unwrap().epoch
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().elements.len()
    }

    /// `true` when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, element: u64) -> bool {
        self.inner.read().unwrap().elements.contains(&element)
    }

    /// Atomically insert `added` and remove `removed`, returning the
    /// resulting epoch. Only *effective* changes are recorded: inserting a
    /// present element or removing an absent one is ignored, and a batch
    /// with no effective change does not bump the epoch. An element in both
    /// lists is treated as an insert (adds win).
    ///
    /// **Epoch exhaustion.** Epochs increase strictly monotonically, so at
    /// `u64::MAX` (unreachable in practice — one batch per nanosecond for
    /// five centuries) the counter cannot advance without handing two
    /// different states the same stamp. The store then pins the epoch at
    /// `u64::MAX`, drops the changelog and permanently disables the delta
    /// feed: every [`MutableStore::changes_since`] /
    /// [`SetStore::delta_since`] call reports truncation, forcing readers
    /// back to full reconciliation — degraded, never wrong.
    pub fn apply(&self, added: &[u64], removed: &[u64]) -> u64 {
        match self.try_apply(added, removed) {
            Ok(epoch) => epoch,
            Err(e) => {
                // The write-ahead append failed, so the batch was rejected
                // and memory is unchanged — degraded (the feed misses the
                // batch), never silently divergent from disk.
                if obs::trace::enabled(obs::trace::Level::Error) {
                    obs::trace::event(
                        obs::trace::Level::Error,
                        "store",
                        None,
                        "durable_apply_failed",
                        &[("error", obs::trace::Value::Str(&e.to_string()))],
                    );
                } else {
                    eprintln!("pbs store: durable apply failed, batch dropped: {e}");
                }
                self.epoch()
            }
        }
    }

    /// [`MutableStore::apply`] with the durability error surfaced. On a
    /// durable store the effective changes are computed first, written
    /// ahead to the WAL, and only then applied to memory — an `Err` from
    /// the append leaves both memory *and* the store's logical state
    /// exactly as before the call. An `Err` from the post-apply compaction
    /// (snapshotting) means the batch itself *was* applied and is durable
    /// in the WAL; only the snapshot is missing, and the next compaction
    /// retries it. Non-durable stores never return `Err`.
    pub fn try_apply(&self, added: &[u64], removed: &[u64]) -> io::Result<u64> {
        let metrics = self.metrics.get();
        let start = metrics.map(|_| Instant::now());
        let mut effective = None;
        let (result, len) = {
            let mut inner = self.inner.write().unwrap();
            let result = Self::apply_locked(&mut inner, added, removed, &mut effective);
            (result, inner.elements.len())
        };
        if let (Some(m), Some(start)) = (metrics, start) {
            if let Some(epoch) = effective {
                m.apply.record_duration(start.elapsed());
                m.elements.set(len as f64);
                m.epoch.set(epoch as f64);
            }
        }
        // Fire the notifiers only after the element lock is released, so a
        // notifier (the event loop's wakeup hook) may call straight back
        // into `delta_since` without deadlocking.
        if let Some(epoch) = effective {
            self.notifiers.0.lock().unwrap().retain(|n| n(epoch));
        }
        result
    }

    fn apply_locked(
        inner: &mut MutableInner,
        added: &[u64],
        removed: &[u64],
        effective: &mut Option<u64>,
    ) -> io::Result<u64> {
        // Hash the add list first: a linear `added.contains` per removed
        // element would make a full-file replacement O(|added|·|removed|)
        // inside the write lock, stalling every session on the store.
        // Effective changes are computed against the *unmutated* set so the
        // WAL append strictly precedes the state change.
        let add_set: HashSet<u64> = added.iter().copied().collect();
        let mut seen = HashSet::new();
        let removed: Vec<u64> = removed
            .iter()
            .copied()
            .filter(|e| !add_set.contains(e) && inner.elements.contains(e) && seen.insert(*e))
            .collect();
        seen.clear();
        let added: Vec<u64> = added
            .iter()
            .copied()
            .filter(|&e| !inner.elements.contains(&e) && seen.insert(e))
            .collect();
        if added.is_empty() && removed.is_empty() {
            return Ok(inner.epoch);
        }
        let Some(next) = inner.epoch.checked_add(1) else {
            // Epoch space exhausted: stay at u64::MAX with the feed off.
            // The changes still land in the set.
            for e in &removed {
                inner.elements.remove(e);
            }
            inner.elements.extend(added.iter().copied());
            inner.log.clear();
            inner.base_epoch = u64::MAX;
            *effective = Some(u64::MAX);
            // The WAL's strict epoch sequencing cannot express a pinned
            // counter; persist the post-batch state as a snapshot instead.
            Self::compact_inner(inner)?;
            return Ok(inner.epoch);
        };
        // Write-ahead: the batch must be on disk before memory changes.
        let compaction_due = match inner.wal.as_mut() {
            Some(wal) => wal.append(next, &added, &removed)?,
            None => false,
        };
        inner.epoch = next;
        for e in &removed {
            inner.elements.remove(e);
        }
        inner.elements.extend(added.iter().copied());
        let batch = ChangeBatch {
            epoch: next,
            added,
            removed,
        };
        inner.log.push_back(batch);
        *effective = Some(next);
        while inner.log.len() > inner.log_capacity {
            let dropped = inner.log.pop_front().expect("log not empty");
            inner.base_epoch = dropped.epoch;
        }
        if inner.log_capacity == 0 {
            inner.base_epoch = inner.epoch;
            inner.log.clear();
        }
        if inner.epoch == u64::MAX {
            // The counter can never advance again; disable the feed now so
            // no reader ever mistakes the pinned epoch for "current".
            inner.log.clear();
            inner.base_epoch = u64::MAX;
        }
        if compaction_due {
            Self::compact_inner(inner)?;
        }
        Ok(inner.epoch)
    }

    /// Every change batch after `epoch`, oldest first — empty when the
    /// reader is already current. Returns `None` when the changelog no
    /// longer reaches back to `epoch` (the reader must re-snapshot); see
    /// [`MutableStore::apply`] for the exhausted-epoch case.
    pub fn changes_since(&self, epoch: u64) -> Option<Vec<ChangeBatch>> {
        match self.delta_since(epoch) {
            DeltaAnswer::Changes { batches, .. } => Some(batches),
            _ => None,
        }
    }

    /// The current elements together with the epoch they correspond to —
    /// the starting point of a delta-feed reader.
    pub fn snapshot_with_epoch(&self) -> (Vec<u64>, u64) {
        let inner = self.inner.read().unwrap();
        (inner.elements.iter().copied().collect(), inner.epoch)
    }
}

impl SetStore for MutableStore {
    fn snapshot(&self) -> Vec<u64> {
        self.snapshot_with_epoch().0
    }

    fn apply_missing(&self, elements: &[u64]) {
        self.apply(elements, &[]);
    }

    fn element_count(&self) -> usize {
        self.len()
    }

    fn epoch_snapshot(&self) -> (Vec<u64>, Option<u64>) {
        let (elements, epoch) = self.snapshot_with_epoch();
        (elements, Some(epoch))
    }

    fn register_notifier(&self, notifier: StoreNotifier) -> bool {
        self.notifiers.0.lock().unwrap().push(notifier);
        true
    }

    fn attach_metrics(&self, metrics: &obs::Registry, label: &str) {
        let labels = [("store", label)];
        let m = MutableMetrics {
            apply: metrics.histogram(
                "pbs_store_apply_seconds",
                "Latency of one effective mutation batch, WAL write-through included.",
                &labels,
                1e-9,
            ),
            elements: metrics.gauge("pbs_store_elements", "Current element count.", &labels),
            epoch: metrics.gauge("pbs_store_epoch", "Current store epoch.", &labels),
        };
        {
            let mut inner = self.inner.write().unwrap();
            m.elements.set(inner.elements.len() as f64);
            m.epoch.set(inner.epoch as f64);
            if let Some(wal) = inner.wal.as_mut() {
                wal.set_timers(
                    metrics.histogram(
                        "pbs_store_wal_append_seconds",
                        "WAL append latency (encode + buffered write, fsync excluded).",
                        &labels,
                        1e-9,
                    ),
                    metrics.histogram(
                        "pbs_store_wal_fsync_seconds",
                        "WAL fsync latency (sync_writes stores only).",
                        &labels,
                        1e-9,
                    ),
                    metrics.histogram(
                        "pbs_store_compaction_seconds",
                        "Snapshot + log compaction duration.",
                        &labels,
                        1e-9,
                    ),
                );
            }
        }
        if let Some(t) = self.recovery_time {
            metrics
                .gauge(
                    "pbs_store_recovery_seconds",
                    "How long crash recovery (snapshot load + WAL replay) took at open.",
                    &labels,
                )
                .set(t.as_secs_f64());
        }
        let _ = self.metrics.set(m);
    }

    fn delta_since(&self, epoch: u64) -> DeltaAnswer {
        let inner = self.inner.read().unwrap();
        // A reader from this store's future (a cached epoch surviving a
        // server restart with a fresh store), a reader older than the
        // retained log, or an exhausted epoch counter: all must rebuild
        // their baseline with a full reconciliation.
        if epoch > inner.epoch || epoch < inner.base_epoch || inner.epoch == u64::MAX {
            return DeltaAnswer::Trimmed {
                current: inner.epoch,
            };
        }
        DeltaAnswer::Changes {
            batches: inner
                .log
                .iter()
                .filter(|b| b.epoch > epoch)
                .cloned()
                .collect(),
            current: inner.epoch,
        }
    }
}

/// Per-store overrides of the server-wide session limits. `None` falls
/// back to the matching [`crate::ServerConfig`] field.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Override of `ServerConfig::round_cap`.
    pub round_cap: Option<u32>,
    /// Override of `ServerConfig::max_d`.
    pub max_d: Option<u64>,
    /// Override of `ServerConfig::max_done_elements`.
    pub max_done_elements: Option<u32>,
}

/// A named store registered with a server: the store itself, its limit
/// overrides, and its own statistics counters (sessions are additionally
/// folded into the server-wide stats).
pub struct RegisteredStore {
    name: String,
    store: Arc<dyn SetStore>,
    options: StoreOptions,
    stats: Arc<ServerStats>,
}

impl RegisteredStore {
    /// The name the handshake routes on (empty = the default store).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The store itself.
    pub fn store(&self) -> &Arc<dyn SetStore> {
        &self.store
    }

    /// The per-store limit overrides.
    pub fn options(&self) -> StoreOptions {
        self.options
    }

    /// This store's own counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }
}

impl std::fmt::Debug for RegisteredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredStore")
            .field("name", &self.name)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// The name → store map a server serves. The empty name is the default
/// store — the one v1 clients (whose `Hello` has no store field) land on.
///
/// Stores can be registered while the server is running (`pbs-syncd
/// --watch-dir` does); sessions resolve the name exactly once, at their
/// handshake.
#[derive(Debug, Default)]
pub struct StoreRegistry {
    stores: RwLock<HashMap<String, Arc<RegisteredStore>>>,
    /// When set, [`StoreRegistry::register_durable`] roots each store's
    /// persistence directory here.
    persistence_root: RwLock<Option<PathBuf>>,
    /// The metric registry every per-store counter, gauge and histogram
    /// registers into — shared with the server(s) built over this registry,
    /// so one `/metrics` render covers everything.
    metrics: Arc<obs::Registry>,
}

/// The `store` label value a name renders under: the default store (empty
/// name) is labeled `default` so the label is never the empty string.
pub fn store_label(name: &str) -> &str {
    if name.is_empty() {
        "default"
    } else {
        name
    }
}

/// The directory name a store's persistent state lives under, inside a
/// registry's persistence root. The default store (empty name) maps to
/// `default`; named stores map to `store-<name>` with every byte outside
/// `[A-Za-z0-9._-]` replaced by `_` so any wire-addressable name yields a
/// portable path component.
pub fn store_dir_name(name: &str) -> String {
    if name.is_empty() {
        return "default".to_string();
    }
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("store-{sanitized}")
}

impl StoreRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry holding a single default store — what
    /// [`crate::Server::bind`] wraps a bare store into.
    pub fn single(store: Arc<dyn SetStore>) -> Self {
        let registry = Self::new();
        registry.register("", store);
        registry
    }

    /// Register (or replace) a store under `name` with default options.
    /// Returns the registered entry. Names longer than
    /// [`crate::frame::MAX_STORE_NAME`] bytes cannot be addressed by any
    /// handshake and are rejected with a panic — a configuration error, not
    /// a runtime condition.
    pub fn register(
        &self,
        name: impl Into<String>,
        store: Arc<dyn SetStore>,
    ) -> Arc<RegisteredStore> {
        self.register_with(name, store, StoreOptions::default())
    }

    /// Register (or replace) a store under `name` with explicit limit
    /// overrides.
    pub fn register_with(
        &self,
        name: impl Into<String>,
        store: Arc<dyn SetStore>,
        options: StoreOptions,
    ) -> Arc<RegisteredStore> {
        let name = name.into();
        assert!(
            name.len() <= crate::frame::MAX_STORE_NAME,
            "store name {name:?} exceeds the {}-byte wire limit",
            crate::frame::MAX_STORE_NAME
        );
        // Counters register idempotently by (name, label): replacing a store
        // under the same name resumes its counters instead of zeroing them.
        let stats = Arc::new(ServerStats::registered(
            &self.metrics,
            "pbs_store_",
            &[("store", store_label(&name))],
        ));
        store.attach_metrics(&self.metrics, store_label(&name));
        let entry = Arc::new(RegisteredStore {
            name: name.clone(),
            store,
            options,
            stats,
        });
        self.stores
            .write()
            .unwrap()
            .insert(name, Arc::clone(&entry));
        entry
    }

    /// The metric registry behind this store registry (shared with any
    /// server built over it).
    pub fn metrics(&self) -> Arc<obs::Registry> {
        Arc::clone(&self.metrics)
    }

    /// Root every [`StoreRegistry::register_durable`] store's persistence
    /// directory under `root` (created on first use).
    pub fn set_persistence_root(&self, root: impl Into<PathBuf>) {
        *self.persistence_root.write().unwrap() = Some(root.into());
    }

    /// The configured persistence root, if any.
    pub fn persistence_root(&self) -> Option<PathBuf> {
        self.persistence_root.read().unwrap().clone()
    }

    /// The persistence directory a store named `name` maps to (`None`
    /// without a persistence root). See [`store_dir_name`].
    pub fn store_dir(&self, name: &str) -> Option<PathBuf> {
        self.persistence_root()
            .map(|r| r.join(store_dir_name(name)))
    }

    /// Open (recovering any persisted state) and register a durable
    /// [`MutableStore`] under `name`, rooted at
    /// [`StoreRegistry::store_dir`]. Returns the concrete store handle (for
    /// feeding mutations) plus the recovery summary. Errors when no
    /// persistence root is configured or the directory cannot be opened.
    pub fn register_durable(
        &self,
        name: impl Into<String>,
        durable: DurableOptions,
        options: StoreOptions,
    ) -> io::Result<(Arc<MutableStore>, RecoveryReport)> {
        let name = name.into();
        let dir = self.store_dir(&name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "registry has no persistence root",
            )
        })?;
        let (store, report) = MutableStore::open_durable_report(&dir, durable)?;
        let store = Arc::new(store);
        self.register_with(name, Arc::clone(&store) as Arc<dyn SetStore>, options);
        Ok((store, report))
    }

    /// Look a store up by name.
    pub fn get(&self, name: &str) -> Option<Arc<RegisteredStore>> {
        self.stores.read().unwrap().get(name).cloned()
    }

    /// All registered names, sorted (the default store sorts first as the
    /// empty string).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.stores.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered stores.
    pub fn len(&self) -> usize {
        self.stores.read().unwrap().len()
    }

    /// `true` when no store is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutable_store_epochs_and_delta_feed() {
        let store = MutableStore::new([1u64, 2, 3]);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.len(), 3);

        // No-op batches do not bump the epoch.
        assert_eq!(store.apply(&[1], &[99]), 0);

        assert_eq!(store.apply(&[4, 5], &[1]), 1);
        assert_eq!(store.apply(&[6], &[]), 2);
        assert!(store.contains(4) && !store.contains(1));

        // A reader at epoch 0 sees both batches, in order.
        let changes = store.changes_since(0).expect("log intact");
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].epoch, 1);
        assert_eq!(changes[0].added, vec![4, 5]);
        assert_eq!(changes[0].removed, vec![1]);
        assert_eq!(changes[1].added, vec![6]);
        // A current reader sees nothing new.
        assert_eq!(store.changes_since(2).unwrap(), vec![]);

        // Replaying the feed over the epoch-0 snapshot reproduces the set.
        let mut replay: HashSet<u64> = [1u64, 2, 3].into_iter().collect();
        for batch in &changes {
            for &e in &batch.removed {
                replay.remove(&e);
            }
            replay.extend(batch.added.iter().copied());
        }
        let mut now = store.snapshot();
        now.sort_unstable();
        let mut replayed: Vec<u64> = replay.into_iter().collect();
        replayed.sort_unstable();
        assert_eq!(now, replayed);
    }

    #[test]
    fn mutable_store_log_truncation_demands_resnapshot() {
        let store = MutableStore::with_log_capacity([1u64], 2);
        for i in 0..5u64 {
            store.apply(&[100 + i], &[]);
        }
        assert_eq!(store.epoch(), 5);
        // Only the last two batches survive; epoch-2 readers are stale.
        assert!(store.changes_since(2).is_none());
        let tail = store.changes_since(3).expect("within capacity");
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].epoch, 4);
        // Capacity 0: any past epoch is immediately stale.
        let no_log = MutableStore::with_log_capacity([], 0);
        no_log.apply(&[7], &[]);
        assert!(no_log.changes_since(0).is_none());
        assert_eq!(no_log.changes_since(1).unwrap(), vec![]);
    }

    #[test]
    fn apply_missing_is_an_epoch_stamped_batch() {
        let store = MutableStore::new([1u64]);
        SetStore::apply_missing(&store, &[2, 3]);
        assert_eq!(store.epoch(), 1);
        let changes = store.changes_since(0).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].added, vec![2, 3]);
        let (snapshot, epoch) = store.snapshot_with_epoch();
        assert_eq!(epoch, 1);
        assert_eq!(snapshot.len(), 3);
    }

    #[test]
    fn epoch_exhaustion_pins_the_counter_and_kills_the_feed() {
        // "Wraparound" must never happen: the counter saturates at
        // u64::MAX and the delta feed turns itself off instead of handing
        // two states the same stamp.
        let store = MutableStore::with_epoch_origin([1u64], u64::MAX - 2, 64);
        assert_eq!(store.epoch(), u64::MAX - 2);
        assert_eq!(store.apply(&[2], &[]), u64::MAX - 1);
        // The feed still works below the ceiling.
        assert_eq!(store.changes_since(u64::MAX - 2).unwrap().len(), 1);
        // This batch lands exactly on u64::MAX: recorded, feed disabled.
        assert_eq!(store.apply(&[3], &[]), u64::MAX);
        assert!(store.changes_since(u64::MAX - 1).is_none());
        assert!(store.changes_since(u64::MAX).is_none());
        assert_eq!(
            store.delta_since(u64::MAX),
            DeltaAnswer::Trimmed { current: u64::MAX }
        );
        // Further effective mutations still apply to the set, with the
        // epoch pinned — monotonicity is never violated.
        assert_eq!(store.apply(&[4], &[1]), u64::MAX);
        assert!(store.contains(4) && !store.contains(1));
        assert_eq!(store.epoch(), u64::MAX);
        // A store constructed already-exhausted behaves the same.
        let dead = MutableStore::with_epoch_origin([9u64], u64::MAX, 8);
        assert_eq!(dead.apply(&[10], &[]), u64::MAX);
        assert!(dead.changes_since(u64::MAX).is_none());
    }

    #[test]
    fn future_epochs_demand_a_resync() {
        // A subscriber whose cached epoch outruns this store (fresh store
        // after a restart) must not be handed an empty delta and believe
        // itself current.
        let store = MutableStore::new([1u64, 2]);
        store.apply(&[3], &[]);
        assert!(store.changes_since(5).is_none());
        assert_eq!(store.delta_since(5), DeltaAnswer::Trimmed { current: 1 });
        assert_eq!(
            store.delta_since(1),
            DeltaAnswer::Changes {
                batches: vec![],
                current: 1
            }
        );
    }

    #[test]
    fn add_then_remove_batches_collapse_under_replay() {
        let store = MutableStore::new([1u64]);
        // Same element added then removed in consecutive batches: a delta
        // reader replaying both must end without it…
        store.apply(&[7], &[]);
        store.apply(&[], &[7]);
        // …and added-then-re-added stays present.
        store.apply(&[8], &[]);
        // Within ONE batch, adds win over removes of the same element.
        let epoch = store.apply(&[9], &[9]);
        assert_eq!(epoch, 4);
        assert!(store.contains(9));
        let changes = store.changes_since(0).unwrap();
        assert_eq!(changes.len(), 4);
        assert_eq!(changes[3].added, vec![9]);
        assert!(changes[3].removed.is_empty());
        let mut replay: HashSet<u64> = [1u64].into_iter().collect();
        for batch in &changes {
            for e in &batch.removed {
                replay.remove(e);
            }
            replay.extend(batch.added.iter().copied());
        }
        let mut replayed: Vec<u64> = replay.into_iter().collect();
        replayed.sort_unstable();
        assert_eq!(replayed, vec![1, 8, 9]);
        assert!(!replayed.contains(&7), "add-then-remove must collapse");
    }

    #[test]
    fn epoch_snapshot_is_atomic_under_concurrent_apply() {
        // Writers always insert/remove elements in pairs (2k, 2k+1) within
        // one batch; every snapshot must observe both-or-neither of each
        // pair, and replaying the changes since the snapshot's epoch must
        // reproduce a later snapshot exactly.
        let store = Arc::new(MutableStore::new(
            (0u64..64).flat_map(|k| [2 * k, 2 * k + 1]),
        ));
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = 1000 + w * 1000 + (i % 97);
                        if i % 3 == 0 {
                            store.apply(&[], &[2 * k, 2 * k + 1]);
                        } else {
                            store.apply(&[2 * k, 2 * k + 1], &[]);
                        }
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let (snapshot, epoch) = store.snapshot_with_epoch();
            let set: HashSet<u64> = snapshot.iter().copied().collect();
            for &e in &snapshot {
                let partner = e ^ 1;
                assert!(
                    set.contains(&partner),
                    "snapshot at epoch {epoch} tore a pair: {e} without {partner}"
                );
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        // Replay consistency once writers are quiet: old snapshot + the
        // changes since its epoch == current snapshot.
        let (old, old_epoch) = store.snapshot_with_epoch();
        store.apply(&[5_000_001], &[0]);
        store.apply(&[5_000_003], &[1]);
        let mut replay: HashSet<u64> = old.into_iter().collect();
        for batch in store.changes_since(old_epoch).expect("log intact") {
            for e in &batch.removed {
                replay.remove(e);
            }
            replay.extend(batch.added.iter().copied());
        }
        let (mut now, _) = store.snapshot_with_epoch();
        now.sort_unstable();
        let mut replayed: Vec<u64> = replay.into_iter().collect();
        replayed.sort_unstable();
        assert_eq!(now, replayed);
    }

    #[test]
    fn notifiers_fire_per_effective_batch_outside_the_lock() {
        let store = MutableStore::new([1u64, 2]);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        assert!(SetStore::register_notifier(
            &store,
            Box::new(move |epoch| {
                sink.lock().unwrap().push(epoch);
                epoch < 3 // unregister after epoch 3
            })
        ));
        // A notifier that reads back into the store must not deadlock: it
        // runs after the element lock is released.
        {
            let store2 = Arc::new(MutableStore::new([9u64]));
            let probe: Arc<Mutex<Vec<DeltaAnswer>>> = Arc::new(Mutex::new(Vec::new()));
            let (s2, p) = (Arc::clone(&store2), Arc::clone(&probe));
            SetStore::register_notifier(
                &*store2,
                Box::new(move |epoch| {
                    p.lock()
                        .unwrap()
                        .push(s2.delta_since(epoch.saturating_sub(1)));
                    true
                }),
            );
            store2.apply(&[10], &[]);
            let got = probe.lock().unwrap();
            assert_eq!(got.len(), 1);
            assert!(matches!(&got[0], DeltaAnswer::Changes { current: 1, .. }));
        }
        store.apply(&[3], &[]); // epoch 1
        store.apply(&[1], &[]); // no-op: no notification
        store.apply(&[4], &[1]); // epoch 2
        store.apply(&[5], &[]); // epoch 3, notifier returns false
        store.apply(&[6], &[]); // epoch 4: notifier gone
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
        // InMemoryStore cannot notify at all.
        let plain = InMemoryStore::new([1u64]);
        assert!(!SetStore::register_notifier(&plain, Box::new(|_| true)));
    }

    #[test]
    fn registry_routes_by_name() {
        let registry = StoreRegistry::new();
        registry.register("", Arc::new(InMemoryStore::new([1u64])));
        registry.register_with(
            "blocks",
            Arc::new(InMemoryStore::new([2u64])),
            StoreOptions {
                round_cap: Some(7),
                ..StoreOptions::default()
            },
        );
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["".to_string(), "blocks".to_string()]);
        assert!(registry.get("missing").is_none());
        let blocks = registry.get("blocks").unwrap();
        assert_eq!(blocks.name(), "blocks");
        assert_eq!(blocks.options().round_cap, Some(7));
        assert_eq!(blocks.store().snapshot(), vec![2]);
        // Each entry carries its own counters.
        assert_eq!(blocks.stats().snapshot().sessions_started, 0);
    }

    #[test]
    #[should_panic(expected = "wire limit")]
    fn registry_rejects_unaddressable_names() {
        StoreRegistry::new().register("x".repeat(65), Arc::new(InMemoryStore::default()));
    }

    #[test]
    fn durable_store_round_trips_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pbs_store_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = DurableOptions {
            log_capacity: 8,
            snapshot_every: 3,
            sync_writes: false,
        };
        let (want_set, want_epoch) = {
            let store = MutableStore::open_durable(&dir, options).unwrap();
            assert!(store.is_durable() && store.epoch() == 0 && store.is_empty());
            store.apply(&[1, 2, 3], &[]);
            store.apply(&[4], &[1]);
            SetStore::apply_missing(&store, &[5, 6]);
            store.apply(&[], &[2]);
            store.snapshot_with_epoch()
        };
        assert_eq!(want_epoch, 4);
        let (store, report) = MutableStore::open_durable_report(&dir, options).unwrap();
        assert_eq!(store.epoch(), want_epoch, "epoch continuity across reopen");
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.snapshot_epoch >= 3, "snapshot_every=3 compacted");
        let (mut got, _) = store.snapshot_with_epoch();
        let mut want = want_set;
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        // The changelog survived too: a subscriber from epoch 1 gets the
        // exact batches 2..=4.
        let changes = store.changes_since(1).expect("covered by recovered log");
        assert_eq!(changes.len(), 3);
        assert_eq!(changes[0].epoch, 2);
        // And the store keeps appending where it left off.
        assert_eq!(store.apply(&[7], &[]), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_register_durable_roots_and_recovers() {
        let dir = std::env::temp_dir().join(format!("pbs_registry_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(store_dir_name(""), "default");
        assert_eq!(store_dir_name("blocks"), "store-blocks");
        assert_eq!(store_dir_name("a/b c"), "store-a_b_c");
        let registry = StoreRegistry::new();
        assert!(
            registry
                .register_durable("x", DurableOptions::default(), StoreOptions::default())
                .is_err(),
            "no persistence root configured"
        );
        registry.set_persistence_root(&dir);
        let (store, _) = registry
            .register_durable("blocks", DurableOptions::default(), StoreOptions::default())
            .unwrap();
        store.apply(&[10, 11], &[]);
        assert!(registry.get("blocks").is_some());
        assert_eq!(
            registry.store_dir("blocks").unwrap(),
            dir.join("store-blocks")
        );
        // A second registry over the same root recovers the store.
        let registry2 = StoreRegistry::new();
        registry2.set_persistence_root(&dir);
        let (store2, report) = registry2
            .register_durable("blocks", DurableOptions::default(), StoreOptions::default())
            .unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(store2.epoch(), 1);
        assert!(store2.contains(10) && store2.contains(11));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
