//! The reconciliation session server: a TCP listener, a bounded worker
//! pool, and one [`BobSession`] state machine per connection.
//!
//! Each accepted connection runs the `docs/WIRE.md` session: handshake
//! (with store routing through the [`StoreRegistry`] on v2 sessions) →
//! optional estimator exchange → sketch/report rounds (possibly pipelined:
//! one `Sketches` frame may carry several consecutive rounds' layers) →
//! final element transfer. A v3 `Hello` carrying the client's last-known
//! store epoch short-circuits all of that when the store's changelog still
//! covers the epoch: the server streams the changes since it (`DeltaBatch*`
//! → `DeltaDone`) and the session ends without any reconciliation — the
//! one place the server sends more than a single frame in reply. Otherwise
//! the server is the *responder* throughout — it never sends a frame
//! except in reply — which keeps the per-connection state machine a simple
//! read-dispatch loop. Hostile input is bounded at
//! every layer: frame sizes by the transport cap, handshake values by
//! [`crate::frame::Hello::config`], the parameterized difference by
//! [`ServerConfig::max_d`], rounds by [`ServerConfig::round_cap`],
//! pipelining by [`ServerConfig::max_pipeline_depth`], wall clock by
//! [`ServerConfig::session_deadline`], and sketch shapes are validated
//! against the negotiated codec before they reach the BCH codec's
//! `Sketch::combine` capacity assertion.

use crate::frame::{
    delta_batch_frames, delta_chunk_capacity, ErrorCode, EstimatorMsg, Frame, PROTOCOL_VERSION,
};
use crate::store::{DeltaAnswer, RegisteredStore, StoreRegistry};
use crate::{FramedStream, NetError, TransportConfig};
use estimator::{Estimator, TowEstimator};
use pbs_core::{BobSession, Pbs, ESTIMATOR_SEED_SALT};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::store::{InMemoryStore, SetStore};

/// Server-side limits and pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Socket/framing knobs applied to every accepted connection.
    pub transport: TransportConfig,
    /// Worker threads — the maximum number of concurrently served
    /// sessions.
    pub workers: usize,
    /// Accepted connections queued while every worker is busy; beyond
    /// this, `accept` itself backpressures.
    pub backlog: usize,
    /// Hard cap on sketch/report rounds per connection.
    pub round_cap: u32,
    /// Wall-clock budget per connection, measured from accept to `Done`.
    pub session_deadline: Duration,
    /// Largest difference cardinality the server will parameterize a
    /// session for (bounds the group count a hostile `known_d` or a wild
    /// estimate can demand). Keep consistent with the frame cap: a first
    /// round ships one sketch per group in a single `Sketches` frame,
    /// roughly 15 bytes per unit of `d` — the default 2¹⁸ stays a few MiB
    /// under the default 16 MiB `max_frame`.
    pub max_d: u64,
    /// Cap on the element count of the client's final `Done` transfer.
    /// The transfer is a single frame, so `(max_frame − 5) / 8` is an
    /// additional hard ceiling.
    pub max_done_elements: u32,
    /// Highest protocol version this server negotiates. Defaults to
    /// [`PROTOCOL_VERSION`]; set to 1 to serve as a legacy v1 responder
    /// (no store routing, no pipelining) — the downgrade tests use this.
    pub protocol_version: u16,
    /// Most pipelined round layers accepted in one `Sketches` frame (v2
    /// sessions; v1 sessions are always single-layer). Each layer costs
    /// one full per-group decode pass, so this bounds per-frame CPU the
    /// same way `round_cap` bounds it per session.
    pub max_pipeline_depth: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            transport: TransportConfig::default(),
            workers: 4,
            backlog: 32,
            round_cap: 64,
            session_deadline: Duration::from_secs(120),
            max_d: 1 << 18,
            max_done_elements: 1 << 20,
            protocol_version: PROTOCOL_VERSION,
            max_pipeline_depth: 4,
        }
    }
}

/// Monotonic counters exported by a running server. All loads/stores are
/// relaxed — they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections handed to a worker.
    pub sessions_started: AtomicU64,
    /// Sessions that ran to a clean `Done`.
    pub sessions_completed: AtomicU64,
    /// Sessions that ended in any error (including peer disconnects).
    pub sessions_failed: AtomicU64,
    /// Protocol rounds served across all sessions (a pipelined frame
    /// counts once per layer it carries).
    pub rounds: AtomicU64,
    /// Sketch/report exchanges served — request-response round trips. At
    /// most `rounds`; lower exactly when clients pipelined.
    pub round_trips: AtomicU64,
    /// Wire bytes received, framing included.
    pub bytes_in: AtomicU64,
    /// Wire bytes sent, framing included.
    pub bytes_out: AtomicU64,
    /// Frames received.
    pub frames_in: AtomicU64,
    /// Frames sent.
    pub frames_out: AtomicU64,
    /// BCH decode failures across all sessions (each one split a group).
    pub decode_failures: AtomicU64,
    /// Estimator exchanges served.
    pub estimator_exchanges: AtomicU64,
    /// Elements ingested from clients' final transfers.
    pub elements_received: AtomicU64,
    /// Sessions served entirely from the changelog — the v3 delta
    /// short-circuit (no reconciliation ran).
    pub delta_sessions: AtomicU64,
    /// Delta requests answered with `FullResyncRequired` (changelog
    /// trimmed, epoch from the future, or an epoch-less store).
    pub delta_fallbacks: AtomicU64,
    /// `DeltaBatch` frames streamed to subscribers.
    pub delta_batches: AtomicU64,
    /// Elements (adds plus removes) streamed in `DeltaBatch` frames.
    pub delta_elements: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections handed to a worker.
    pub sessions_started: u64,
    /// Sessions that ran to a clean `Done`.
    pub sessions_completed: u64,
    /// Sessions that ended in any error.
    pub sessions_failed: u64,
    /// Protocol rounds served (pipelined layers counted individually).
    pub rounds: u64,
    /// Sketch/report round trips served.
    pub round_trips: u64,
    /// Wire bytes received.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// BCH decode failures.
    pub decode_failures: u64,
    /// Estimator exchanges served.
    pub estimator_exchanges: u64,
    /// Elements ingested from clients.
    pub elements_received: u64,
    /// Sessions served entirely from the changelog (v3 delta path).
    pub delta_sessions: u64,
    /// Delta requests that fell back to a full reconciliation.
    pub delta_fallbacks: u64,
    /// `DeltaBatch` frames streamed.
    pub delta_batches: u64,
    /// Elements streamed in `DeltaBatch` frames.
    pub delta_elements: u64,
}

impl ServerStats {
    /// Copy every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            sessions_started: get(&self.sessions_started),
            sessions_completed: get(&self.sessions_completed),
            sessions_failed: get(&self.sessions_failed),
            rounds: get(&self.rounds),
            round_trips: get(&self.round_trips),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            frames_in: get(&self.frames_in),
            frames_out: get(&self.frames_out),
            decode_failures: get(&self.decode_failures),
            estimator_exchanges: get(&self.estimator_exchanges),
            elements_received: get(&self.elements_received),
            delta_sessions: get(&self.delta_sessions),
            delta_fallbacks: get(&self.delta_fallbacks),
            delta_batches: get(&self.delta_batches),
            delta_elements: get(&self.delta_elements),
        }
    }
}

/// A running reconciliation server. Dropping it without calling
/// [`Server::shutdown`] detaches the threads (they keep serving until the
/// process exits).
pub struct Server {
    local_addr: SocketAddr,
    stats: Arc<ServerStats>,
    registry: Arc<StoreRegistry>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and serve a single anonymous store — the PR-3 shape,
    /// kept as the one-store convenience around [`Server::bind_registry`].
    /// `addr` may carry port 0 to let the OS pick; read the effective
    /// address back with [`Server::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<dyn SetStore>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Self::bind_registry(addr, Arc::new(StoreRegistry::single(store)), config)
    }

    /// Bind `addr` and route each session to the [`StoreRegistry`] entry
    /// its `Hello` names (v1 sessions land on the default, empty-named
    /// store). The registry may keep growing while the server runs.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<StoreRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(
            config.protocol_version >= 1 && config.protocol_version <= PROTOCOL_VERSION,
            "protocol_version must be in 1..={PROTOCOL_VERSION}"
        );
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let worker_handles = (0..config.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("pbs-net-worker-{i}"))
                    .spawn(move || loop {
                        // Take the lock only for the handoff; `recv` errors
                        // once the accept thread (the sole sender) is gone.
                        let conn = { rx.lock().unwrap().recv() };
                        match conn {
                            Ok(stream) => serve_connection(stream, &registry, &config, &stats),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("pbs-net-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Blocking send = honest backpressure once the
                        // backlog is full.
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // `tx` drops here; workers drain the queue and exit.
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            local_addr,
            stats,
            registry,
            shutdown,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared handle to the server-wide counters (every session counts
    /// here *and* in its routed store's own [`RegisteredStore::stats`]).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The store registry this server routes sessions into.
    pub fn registry(&self) -> Arc<StoreRegistry> {
        Arc::clone(&self.registry)
    }

    /// Stop accepting, drain queued connections, and join every thread.
    /// In-flight sessions run to completion.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection. A
        // wildcard bind address is not connectable on every platform, so
        // aim at the matching loopback instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}

/// The per-session stats view: every count folds into the server-wide
/// counters and — once the handshake routed the session — into the routed
/// store's own counters as well.
struct SessionCounters<'a> {
    global: &'a ServerStats,
    store: Option<Arc<RegisteredStore>>,
}

impl SessionCounters<'_> {
    fn add(&self, field: impl Fn(&ServerStats) -> &AtomicU64, n: u64) {
        field(self.global).fetch_add(n, Ordering::Relaxed);
        if let Some(entry) = &self.store {
            field(entry.stats()).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Attach the routed store; its `sessions_started` is bumped here so
    /// per-store session counts stay consistent with the global ones.
    fn route(&mut self, entry: Arc<RegisteredStore>) {
        entry
            .stats()
            .sessions_started
            .fetch_add(1, Ordering::Relaxed);
        self.store = Some(entry);
    }
}

/// Run one connection to completion, folding its transport counters and
/// outcome into the server-wide (and, once routed, per-store) stats. Never
/// panics on hostile input; errors end the session (with a best-effort
/// `Error` frame where one is useful).
fn serve_connection(
    stream: TcpStream,
    registry: &StoreRegistry,
    config: &ServerConfig,
    stats: &ServerStats,
) {
    stats.sessions_started.fetch_add(1, Ordering::Relaxed);
    let mut framed = match FramedStream::from_tcp(stream, &config.transport) {
        Ok(framed) => framed,
        Err(_) => {
            stats.sessions_failed.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut counters = SessionCounters {
        global: stats,
        store: None,
    };
    let outcome = run_session(&mut framed, registry, config, &mut counters);
    counters.add(|s| &s.bytes_in, framed.bytes_in());
    counters.add(|s| &s.bytes_out, framed.bytes_out());
    counters.add(|s| &s.frames_in, framed.frames_in());
    counters.add(|s| &s.frames_out, framed.frames_out());
    match outcome {
        Ok(()) => counters.add(|s| &s.sessions_completed, 1),
        Err(_) => counters.add(|s| &s.sessions_failed, 1),
    };
}

/// Send an `Error` frame (best effort) and return the matching local error.
fn refuse(
    framed: &mut FramedStream<TcpStream>,
    code: ErrorCode,
    message: impl Into<String>,
) -> NetError {
    let message = message.into();
    let _ = framed.send(&Frame::Error {
        code,
        message: message.clone(),
    });
    NetError::Protocol(message)
}

fn run_session(
    framed: &mut FramedStream<TcpStream>,
    registry: &StoreRegistry,
    config: &ServerConfig,
    counters: &mut SessionCounters<'_>,
) -> Result<(), NetError> {
    let deadline = Instant::now() + config.session_deadline;
    let over_deadline = |framed: &mut FramedStream<TcpStream>| -> Option<NetError> {
        if Instant::now() > deadline {
            Some(refuse(
                framed,
                ErrorCode::Internal,
                "session deadline exceeded",
            ))
        } else {
            None
        }
    };

    // ---- Handshake ----
    let hello = match framed.recv()? {
        Frame::Hello(h) => h,
        other => {
            return Err(refuse(
                framed,
                ErrorCode::Protocol,
                format!("expected Hello, got frame type {}", other.type_byte()),
            ))
        }
    };
    if hello.version == 0 {
        return Err(refuse(framed, ErrorCode::Version, "version 0 is invalid"));
    }
    let cfg = match hello.config() {
        Ok(cfg) => cfg,
        Err(why) => return Err(refuse(framed, ErrorCode::BadConfig, why)),
    };
    let negotiated_version = hello.version.min(config.protocol_version);

    // ---- Store routing ----
    // Only a v2 session can address a named store; a v1 (or downgraded)
    // session lands on the default, empty-named store. A v2 client that
    // required a named store must abort when it sees the downgrade in the
    // negotiated Hello.
    let store_name = if negotiated_version >= 2 {
        hello.store.as_str()
    } else {
        ""
    };
    let Some(entry) = registry.get(store_name) else {
        return Err(refuse(
            framed,
            ErrorCode::UnknownStore,
            format!("no store named {store_name:?}"),
        ));
    };
    counters.route(Arc::clone(&entry));
    let store = Arc::clone(entry.store());
    let options = entry.options();
    let round_cap = options.round_cap.unwrap_or(config.round_cap);
    let max_d = options.max_d.unwrap_or(config.max_d);
    let max_done_elements = options
        .max_done_elements
        .unwrap_or(config.max_done_elements);

    let mut negotiated = hello.clone();
    negotiated.version = negotiated_version;
    negotiated.store = entry.name().to_string();
    // Grant a pipelined depth up to this server's per-frame cap; the
    // client must not exceed it (the round-loop check below backstops).
    negotiated.pipeline = hello
        .pipeline
        .max(1)
        .min(config.max_pipeline_depth.clamp(1, u8::MAX as u32) as u8);
    framed.send(&Frame::Hello(negotiated))?;

    // ---- Delta subscription (v3) ----
    // A client that carries its last-known epoch short-circuits
    // reconciliation entirely when the store's changelog still covers it:
    // the server streams the changes since that epoch (chunked under the
    // frame cap) and the session is over — O(|changes|) bytes instead of
    // O(d) sketch rounds over the full set. When the changelog cannot
    // serve the epoch, the session falls back to the classic protocol
    // below, whose final ack re-establishes an epoch baseline.
    if negotiated_version >= 3 {
        if let Some(since) = hello.delta_epoch {
            match store.delta_since(since) {
                DeltaAnswer::Changes { batches, current } => {
                    counters.add(|s| &s.delta_sessions, 1);
                    let capacity = delta_chunk_capacity(config.transport.max_frame);
                    for batch in &batches {
                        counters.add(
                            |s| &s.delta_elements,
                            (batch.added.len() + batch.removed.len()) as u64,
                        );
                        for frame in
                            delta_batch_frames(batch.epoch, &batch.added, &batch.removed, capacity)
                        {
                            // Per chunk, not per batch: one huge batch
                            // chunks into many frames, and a stalled
                            // subscriber must not pin the worker past the
                            // session deadline between two sends.
                            if let Some(err) = over_deadline(framed) {
                                return Err(err);
                            }
                            counters.add(|s| &s.delta_batches, 1);
                            framed.send(&frame)?;
                        }
                    }
                    framed.send(&Frame::DeltaDone { epoch: current })?;
                    return Ok(());
                }
                DeltaAnswer::Trimmed { current } => {
                    counters.add(|s| &s.delta_fallbacks, 1);
                    framed.send(&Frame::FullResyncRequired { epoch: current })?;
                }
                DeltaAnswer::Unsupported => {
                    counters.add(|s| &s.delta_fallbacks, 1);
                    framed.send(&Frame::FullResyncRequired { epoch: 0 })?;
                }
            }
        }
    }

    // One snapshot for the whole session: the estimator and the Bob state
    // machine must describe the same set. On an epoch-capable store the
    // epoch of this snapshot is the baseline the final ack hands the
    // client: replaying any later change batch over the union the session
    // converges on is idempotent, so the baseline is always replay-safe.
    let (snapshot, snapshot_epoch) = store.epoch_snapshot();

    // ---- Difference parameterization (a priori or estimated) ----
    let d_param = if hello.known_d > 0 {
        hello.known_d
    } else {
        if let Some(err) = over_deadline(framed) {
            return Err(err);
        }
        let bank_bytes = match framed.recv()? {
            Frame::EstimatorExchange(EstimatorMsg::TowBank(bytes)) => bytes,
            other => {
                return Err(refuse(
                    framed,
                    ErrorCode::Protocol,
                    format!(
                        "expected estimator bank, got frame type {}",
                        other.type_byte()
                    ),
                ))
            }
        };
        let Some(client_bank) = TowEstimator::from_bytes(&bank_bytes) else {
            return Err(refuse(
                framed,
                ErrorCode::Decode,
                "malformed estimator bank",
            ));
        };
        let est_seed = xhash::derive_seed(hello.seed, ESTIMATOR_SEED_SALT);
        if client_bank.seed() != est_seed || client_bank.sketch_count() != cfg.estimator_sketches {
            return Err(refuse(
                framed,
                ErrorCode::BadConfig,
                "estimator bank does not match the handshake parameters",
            ));
        }
        let mut own = TowEstimator::new(cfg.estimator_sketches, est_seed);
        own.insert_slice(&snapshot);
        let d_hat = client_bank.estimate(&own);
        let d_param = estimator::inflate_estimate(d_hat) as u64;
        counters.add(|s| &s.estimator_exchanges, 1);
        framed.send(&Frame::EstimatorExchange(EstimatorMsg::Estimate {
            d_param,
            d_hat,
        }))?;
        d_param
    };
    if d_param > max_d {
        return Err(refuse(
            framed,
            ErrorCode::BadConfig,
            format!("d = {d_param} exceeds the server cap {max_d}"),
        ));
    }

    // ---- Session state machine ----
    let params = Pbs::new(cfg).plan(d_param as usize);
    let mut bob = BobSession::new(cfg, params, &snapshot, hello.seed);
    let mut rounds = 0u32;
    // The loop runs as an inner closure so Bob's decode-failure counter is
    // folded into the stats exactly once, on *every* exit path — clean
    // `Done`, refusals, and transport errors alike.
    let mut round_loop =
        |framed: &mut FramedStream<TcpStream>, bob: &mut BobSession| -> Result<(), NetError> {
            loop {
                if let Some(err) = over_deadline(framed) {
                    return Err(err);
                }
                match framed.recv()? {
                    Frame::Sketches { m, batch } => {
                        // Pipelining: the layer count is the number of
                        // distinct rounds in the frame. Each layer costs a
                        // full per-group decode pass, so layers — not
                        // frames — are what the round cap meters.
                        let mut layer_rounds: Vec<u32> = batch.iter().map(|s| s.round).collect();
                        layer_rounds.sort_unstable();
                        layer_rounds.dedup();
                        let layers = (layer_rounds.len() as u32).max(1);
                        if layers > 1 && negotiated_version < 2 {
                            return Err(refuse(
                                framed,
                                ErrorCode::Protocol,
                                "pipelined rounds require protocol v2",
                            ));
                        }
                        if layers > config.max_pipeline_depth {
                            return Err(refuse(
                                framed,
                                ErrorCode::BadConfig,
                                format!(
                                    "{layers} pipelined layers exceed the server cap {}",
                                    config.max_pipeline_depth
                                ),
                            ));
                        }
                        rounds += layers;
                        if rounds > round_cap {
                            return Err(refuse(
                                framed,
                                ErrorCode::RoundLimit,
                                format!("round cap {round_cap} exceeded"),
                            ));
                        }
                        // Shape-check before the codec's capacity assertion can
                        // fire: every sketch must match the negotiated (m, t).
                        if m != params.m || batch.iter().any(|s| s.sketch.capacity() != params.t) {
                            return Err(refuse(
                                framed,
                                ErrorCode::BadConfig,
                                format!(
                                    "sketch shape mismatch: negotiated m={} t={}",
                                    params.m, params.t
                                ),
                            ));
                        }
                        let reports = bob.handle_sketches(&batch);
                        counters.add(|s| &s.rounds, layers as u64);
                        counters.add(|s| &s.round_trips, 1);
                        framed.send(&Frame::Reports(reports))?;
                    }
                    Frame::Done(elements) => {
                        if elements.len() as u64 > max_done_elements as u64 {
                            return Err(refuse(
                                framed,
                                ErrorCode::BadConfig,
                                format!(
                                    "final transfer of {} elements exceeds the cap {}",
                                    elements.len(),
                                    max_done_elements
                                ),
                            ));
                        }
                        // Zero or out-of-universe elements would poison the
                        // store: every future session would recover them as
                        // rejected fakes and never verify. Refuse the batch.
                        let universe_mask = if cfg.universe_bits == 64 {
                            u64::MAX
                        } else {
                            (1u64 << cfg.universe_bits) - 1
                        };
                        if elements.iter().any(|&e| e == 0 || e > universe_mask) {
                            return Err(refuse(
                                framed,
                                ErrorCode::BadConfig,
                                format!(
                                    "final transfer contains elements outside the {}-bit universe",
                                    cfg.universe_bits
                                ),
                            ));
                        }
                        store.apply_missing(&elements);
                        counters.add(|s| &s.elements_received, elements.len() as u64);
                        // On a v3 session against an epoch-capable store,
                        // the ack carries the *snapshot* epoch this session
                        // reconciled against — the client's new delta
                        // baseline. (Not the post-ingest epoch: changes
                        // that landed after the snapshot were invisible to
                        // this session and must be replayed by the next
                        // delta sync; the client's own transfer replaying
                        // with them is idempotent.)
                        match snapshot_epoch {
                            Some(epoch) if negotiated_version >= 3 => {
                                framed.send(&Frame::DeltaDone { epoch })?
                            }
                            _ => framed.send(&Frame::Done(Vec::new()))?,
                        }
                        return Ok(());
                    }
                    other => {
                        return Err(refuse(
                            framed,
                            ErrorCode::Protocol,
                            format!(
                                "unexpected frame type {} during the round loop",
                                other.type_byte()
                            ),
                        ));
                    }
                }
            }
        };
    let outcome = round_loop(framed, &mut bob);
    counters.add(|s| &s.decode_failures, bob.decode_failures() as u64);
    outcome
}
