//! The reconciliation session server: a TCP acceptor feeding N
//! event-loop workers, and one resumable session state machine per
//! connection (see the `event_loop` module).
//!
//! Each accepted connection runs the `docs/WIRE.md` session: handshake
//! (with store routing through the [`StoreRegistry`] on v2 sessions) →
//! optional estimator exchange → sketch/report rounds (possibly pipelined:
//! one `Sketches` frame may carry several consecutive rounds' layers) →
//! final element transfer. A v3 `Hello` carrying the client's last-known
//! store epoch short-circuits all of that when the store's changelog still
//! covers the epoch: the server streams the changes since it (`DeltaBatch*`
//! → `DeltaDone`). A v3 session that holds an epoch baseline (from either
//! path) may then send `Subscribe` to go *live*: the server pushes every
//! subsequent store mutation to it as `DeltaBatch*` → `DeltaDone` bursts
//! until the subscriber disconnects, stalls past its buffer cap
//! (`FullResyncRequired` + close), or stops answering keepalive pings.
//! Outside the delta/push paths the server is the *responder* throughout —
//! it never sends a frame except in reply. Hostile input is bounded at
//! every layer: frame sizes by the transport cap, handshake values by
//! [`crate::frame::Hello::config`], the parameterized difference by
//! [`ServerConfig::max_d`], rounds by [`ServerConfig::round_cap`],
//! pipelining by [`ServerConfig::max_pipeline_depth`], wall clock by
//! [`ServerConfig::session_deadline`], concurrent subscriptions by
//! [`ServerConfig::max_subscribers`], per-subscriber memory by
//! [`ServerConfig::subscriber_buffer`], and sketch shapes are validated
//! against the negotiated codec before they reach the BCH codec's
//! `Sketch::combine` capacity assertion.

use crate::event_loop::{spawn_acceptor, spawn_worker, Notice, SessionMetrics, Shared, WorkerLink};
use crate::frame::PROTOCOL_VERSION;
use crate::store::StoreRegistry;
use crate::TransportConfig;
use obs::Counter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub use crate::store::{InMemoryStore, SetStore};

/// Server-side limits and event-loop sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Socket/framing knobs applied to every accepted connection.
    pub transport: TransportConfig,
    /// Event-loop worker threads. Each worker multiplexes any number of
    /// sessions over a readiness loop, so this sizes CPU parallelism —
    /// not the concurrent-session cap (there is none beyond the OS).
    pub workers: usize,
    /// Retained for configuration compatibility: the listener's accept
    /// queue hint. Sessions no longer queue behind a worker pool — every
    /// accepted connection is multiplexed immediately.
    pub backlog: usize,
    /// Hard cap on sketch/report rounds per connection.
    pub round_cap: u32,
    /// Wall-clock budget per connection, measured from accept to the
    /// final ack. Live subscriptions are exempt — once a session reaches
    /// its ack it may stay subscribed indefinitely.
    pub session_deadline: Duration,
    /// Largest difference cardinality the server will parameterize a
    /// session for (bounds the group count a hostile `known_d` or a wild
    /// estimate can demand). Keep consistent with the frame cap: a first
    /// round ships one sketch per group in a single `Sketches` frame,
    /// roughly 15 bytes per unit of `d` — the default 2¹⁸ stays a few MiB
    /// under the default 16 MiB `max_frame`.
    pub max_d: u64,
    /// Cap on the element count of the client's final `Done` transfer.
    /// The transfer is a single frame, so `(max_frame − 5) / 8` is an
    /// additional hard ceiling.
    pub max_done_elements: u32,
    /// Highest protocol version this server negotiates. Defaults to
    /// [`PROTOCOL_VERSION`]; set to 1 to serve as a legacy v1 responder
    /// (no store routing, no pipelining) — the downgrade tests use this.
    pub protocol_version: u16,
    /// Most pipelined round layers accepted in one `Sketches` frame (v2
    /// sessions; v1 sessions are always single-layer). Each layer costs
    /// one full per-group decode pass, so this bounds per-frame CPU the
    /// same way `round_cap` bounds it per session.
    pub max_pipeline_depth: u32,
    /// Most concurrently live subscriptions (`Streaming` sessions) across
    /// the whole server; a `Subscribe` past the cap is refused.
    pub max_subscribers: usize,
    /// Idle keepalive interval on live subscriptions: after this much
    /// quiet the server sends `Ping`, and a subscriber silent for three
    /// intervals is presumed gone and closed.
    pub keepalive: Duration,
    /// Cap on bytes queued (user-space) toward one subscriber. A push
    /// burst that would overrun it evicts the subscriber with
    /// `FullResyncRequired` instead of buffering without bound.
    pub subscriber_buffer: usize,
    /// Record latency histograms and emit trace events. Counters are always
    /// maintained (they are too cheap to gate); turning this off removes the
    /// per-phase `Instant` reads and histogram records — the `metrics_overhead`
    /// benchmark measures the difference.
    pub telemetry: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            transport: TransportConfig::default(),
            workers: 4,
            backlog: 32,
            round_cap: 64,
            session_deadline: Duration::from_secs(120),
            max_d: 1 << 18,
            max_done_elements: 1 << 20,
            protocol_version: PROTOCOL_VERSION,
            max_pipeline_depth: 4,
            max_subscribers: 1024,
            keepalive: Duration::from_secs(10),
            subscriber_buffer: 1 << 20,
            telemetry: true,
        }
    }
}

/// Monotonic counters exported by a running server. All loads/stores are
/// relaxed — they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections handed to a worker.
    pub sessions_started: Counter,
    /// Sessions that ran to a clean end (final ack delivered, or a live
    /// subscription that ended after it).
    pub sessions_completed: Counter,
    /// Sessions that ended in any error (including peer disconnects
    /// mid-protocol).
    pub sessions_failed: Counter,
    /// Protocol rounds served across all sessions (a pipelined frame
    /// counts once per layer it carries).
    pub rounds: Counter,
    /// Sketch/report exchanges served — request-response round trips. At
    /// most `rounds`; lower exactly when clients pipelined.
    pub round_trips: Counter,
    /// Wire bytes received, framing included.
    pub bytes_in: Counter,
    /// Wire bytes sent, framing included.
    pub bytes_out: Counter,
    /// Frames received.
    pub frames_in: Counter,
    /// Frames sent.
    pub frames_out: Counter,
    /// BCH decode failures across all sessions (each one split a group).
    pub decode_failures: Counter,
    /// Estimator exchanges served.
    pub estimator_exchanges: Counter,
    /// Elements ingested from clients' final transfers.
    pub elements_received: Counter,
    /// Sessions served entirely from the changelog — the v3 delta
    /// short-circuit (no reconciliation ran).
    pub delta_sessions: Counter,
    /// Delta requests answered with `FullResyncRequired` (changelog
    /// trimmed, epoch from the future, or an epoch-less store).
    pub delta_fallbacks: Counter,
    /// `DeltaBatch` frames streamed in delta catch-ups.
    pub delta_batches: Counter,
    /// Elements (adds plus removes) streamed in delta catch-ups.
    pub delta_elements: Counter,
    /// Live subscriptions accepted (`Subscribe` frames honored).
    pub subscriptions: Counter,
    /// `DeltaBatch` frames pushed to live subscribers.
    pub push_batches: Counter,
    /// Elements (adds plus removes) pushed to live subscribers.
    pub push_elements: Counter,
    /// Subscribers evicted for falling behind (buffer cap or write
    /// stall).
    pub subscribers_evicted: Counter,
    /// Keepalive `Ping` frames sent to idle subscribers.
    pub keepalive_pings: Counter,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections handed to a worker.
    pub sessions_started: u64,
    /// Sessions that ran to a clean end.
    pub sessions_completed: u64,
    /// Sessions that ended in any error.
    pub sessions_failed: u64,
    /// Protocol rounds served (pipelined layers counted individually).
    pub rounds: u64,
    /// Sketch/report round trips served.
    pub round_trips: u64,
    /// Wire bytes received.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// BCH decode failures.
    pub decode_failures: u64,
    /// Estimator exchanges served.
    pub estimator_exchanges: u64,
    /// Elements ingested from clients.
    pub elements_received: u64,
    /// Sessions served entirely from the changelog (v3 delta path).
    pub delta_sessions: u64,
    /// Delta requests that fell back to a full reconciliation.
    pub delta_fallbacks: u64,
    /// `DeltaBatch` frames streamed in delta catch-ups.
    pub delta_batches: u64,
    /// Elements streamed in delta catch-ups.
    pub delta_elements: u64,
    /// Live subscriptions accepted.
    pub subscriptions: u64,
    /// `DeltaBatch` frames pushed to live subscribers.
    pub push_batches: u64,
    /// Elements pushed to live subscribers.
    pub push_elements: u64,
    /// Subscribers evicted for falling behind.
    pub subscribers_evicted: u64,
    /// Keepalive pings sent.
    pub keepalive_pings: u64,
}

impl ServerStats {
    /// Build a stats block whose counters live in `metrics` under
    /// `{prefix}{field}_total` with the given label set, so the Prometheus
    /// rendering and the [`StatsSnapshot`] compatibility view read the same
    /// atomics. Registration is idempotent: re-registering the same
    /// `(prefix, labels)` pair (a store replaced at runtime) resumes the
    /// existing counters instead of resetting them.
    pub fn registered(
        metrics: &obs::Registry,
        prefix: &str,
        labels: &[(&str, &str)],
    ) -> ServerStats {
        let c = |name: &str, help: &str| {
            metrics.counter(&format!("{prefix}{name}_total"), help, labels)
        };
        ServerStats {
            sessions_started: c("sessions_started", "Connections handed to a worker."),
            sessions_completed: c("sessions_completed", "Sessions that ran to a clean end."),
            sessions_failed: c("sessions_failed", "Sessions that ended in any error."),
            rounds: c(
                "rounds",
                "Protocol rounds served (pipelined layers counted individually).",
            ),
            round_trips: c(
                "round_trips",
                "Sketch/report request-response round trips served.",
            ),
            bytes_in: c("bytes_in", "Wire bytes received, framing included."),
            bytes_out: c("bytes_out", "Wire bytes sent, framing included."),
            frames_in: c("frames_in", "Frames received."),
            frames_out: c("frames_out", "Frames sent."),
            decode_failures: c(
                "decode_failures",
                "BCH decode failures (each one split a group).",
            ),
            estimator_exchanges: c("estimator_exchanges", "Estimator exchanges served."),
            elements_received: c(
                "elements_received",
                "Elements ingested from clients' final transfers.",
            ),
            delta_sessions: c(
                "delta_sessions",
                "Sessions served entirely from the changelog (v3 delta path).",
            ),
            delta_fallbacks: c(
                "delta_fallbacks",
                "Delta requests answered with FullResyncRequired.",
            ),
            delta_batches: c(
                "delta_batches",
                "DeltaBatch frames streamed in delta catch-ups.",
            ),
            delta_elements: c("delta_elements", "Elements streamed in delta catch-ups."),
            subscriptions: c("subscriptions", "Live subscriptions accepted."),
            push_batches: c(
                "push_batches",
                "DeltaBatch frames pushed to live subscribers.",
            ),
            push_elements: c("push_elements", "Elements pushed to live subscribers."),
            subscribers_evicted: c(
                "subscribers_evicted",
                "Subscribers evicted for falling behind.",
            ),
            keepalive_pings: c(
                "keepalive_pings",
                "Keepalive Ping frames sent to idle subscribers.",
            ),
        }
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            sessions_started: get(&self.sessions_started),
            sessions_completed: get(&self.sessions_completed),
            sessions_failed: get(&self.sessions_failed),
            rounds: get(&self.rounds),
            round_trips: get(&self.round_trips),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            frames_in: get(&self.frames_in),
            frames_out: get(&self.frames_out),
            decode_failures: get(&self.decode_failures),
            estimator_exchanges: get(&self.estimator_exchanges),
            elements_received: get(&self.elements_received),
            delta_sessions: get(&self.delta_sessions),
            delta_fallbacks: get(&self.delta_fallbacks),
            delta_batches: get(&self.delta_batches),
            delta_elements: get(&self.delta_elements),
            subscriptions: get(&self.subscriptions),
            push_batches: get(&self.push_batches),
            push_elements: get(&self.push_elements),
            subscribers_evicted: get(&self.subscribers_evicted),
            keepalive_pings: get(&self.keepalive_pings),
        }
    }
}

/// A running reconciliation server. Dropping it without calling
/// [`Server::shutdown`] detaches the threads (they keep serving until the
/// process exits).
pub struct Server {
    local_addr: SocketAddr,
    stats: Arc<ServerStats>,
    registry: Arc<StoreRegistry>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_links: Vec<WorkerLink>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and serve a single anonymous store — the PR-3 shape,
    /// kept as the one-store convenience around [`Server::bind_registry`].
    /// `addr` may carry port 0 to let the OS pick; read the effective
    /// address back with [`Server::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<dyn SetStore>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Self::bind_registry(addr, Arc::new(StoreRegistry::single(store)), config)
    }

    /// Bind `addr` and route each session to the [`StoreRegistry`] entry
    /// its `Hello` names (v1 sessions land on the default, empty-named
    /// store). The registry may keep growing while the server runs.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<StoreRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(
            config.protocol_version >= 1 && config.protocol_version <= PROTOCOL_VERSION,
            "protocol_version must be in 1..={PROTOCOL_VERSION}"
        );
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = registry.metrics();
        let stats = Arc::new(ServerStats::registered(&metrics, "pbs_server_", &[]));
        let shutdown = Arc::new(AtomicBool::new(false));

        let shared = Arc::new(Shared {
            registry: Arc::clone(&registry),
            config,
            stats: Arc::clone(&stats),
            live_subscribers: AtomicUsize::new(0),
            session_metrics: config
                .telemetry
                .then(|| SessionMetrics::registered(&metrics)),
            next_session_id: AtomicU64::new(1),
        });

        let mut worker_links = Vec::with_capacity(config.workers);
        let mut worker_handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (link, handle) = spawn_worker(i, Arc::clone(&shared))?;
            worker_links.push(link);
            worker_handles.push(handle);
        }

        let accept_handle = spawn_acceptor(listener, worker_links.clone(), Arc::clone(&shutdown))?;

        Ok(Server {
            local_addr,
            stats,
            registry,
            shutdown,
            accept_handle: Some(accept_handle),
            worker_links,
            worker_handles,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared handle to the server-wide counters (every session counts
    /// here *and* in its routed store's own [`crate::store::RegisteredStore::stats`]).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The store registry this server routes sessions into.
    pub fn registry(&self) -> Arc<StoreRegistry> {
        Arc::clone(&self.registry)
    }

    /// The metric registry behind this server's counters and histograms —
    /// shared with the store registry, so per-store and store-layer metrics
    /// render alongside the server-wide ones. Feed it to
    /// [`crate::admin::AdminServer`] or render it directly.
    pub fn metrics(&self) -> Arc<obs::Registry> {
        self.registry.metrics()
    }

    /// The flag [`Server::shutdown`] raises before draining. The admin
    /// endpoint's `/healthz` watches it to flip from `ok` to `draining`.
    pub fn shutdown_signal(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Stop accepting, wake every worker, and join every thread. Sessions
    /// still mid-protocol are cut (counted failed); sessions past their
    /// final ack — parked or live-streaming subscribers included — are
    /// flushed once and closed cleanly (counted completed), so a server
    /// with open subscriptions shuts down promptly and the
    /// `started == completed + failed` invariant holds in the returned
    /// snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection. A
        // wildcard bind address is not connectable on every platform, so
        // aim at the matching loopback instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // The acceptor is joined, so no further Conn notices can follow
        // the Shutdown notice each worker drains next.
        for link in &self.worker_links {
            let _ = link.tx.send(Notice::Shutdown);
            link.wake.wake();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}
