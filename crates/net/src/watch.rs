//! The `--watch-dir` poller: every `*.set` file in a directory becomes a
//! live [`MutableStore`], kept in sync with the file by diff-based change
//! batches. Extracted from `pbs-syncd` so the failure modes are unit
//! testable.
//!
//! Robustness rules (the reason this is not a ten-line loop):
//!
//! * **Deleted file** → the store receives a *remove-all* change batch and
//!   keeps serving (the empty set) under its epoch sequence; if the file
//!   reappears its contents arrive as a normal diff batch. Delta
//!   subscribers ride through both transitions without a full resync.
//! * **Torn / truncated file** (caught mid-write, producer crashed) → the
//!   longest valid prefix is applied ([`setio::load_set_prefix`]); the
//!   store never serves stale contents and never panics on garbage. The
//!   next poll after the writer finishes re-diffs to the full contents.
//! * **Change detection** keys on the `(mtime, len)` pair; either field
//!   changing triggers a re-read, and the diff-based apply makes spurious
//!   re-reads harmless — while a plain `mtime >` comparison would silently
//!   drop edits landing inside one mtime granule.
//!
//! When the owning [`StoreRegistry`] has a persistence root and the
//! watcher is built with [`DirWatcher::durable`], each watched store is
//! opened through [`StoreRegistry::register_durable`]: its epoch sequence
//! and changelog survive a daemon restart, and the first scan diffs the
//! file against the *recovered* state — so a restart with an unchanged
//! file is a no-op batch and every client epoch cache stays warm.

use crate::setio;
use crate::store::{MutableStore, SetStore, StoreOptions, StoreRegistry};
use crate::wal::DurableOptions;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

/// The `(mtime, length)` fingerprint change detection keys on.
type FileStamp = (SystemTime, u64);

/// A change hook for [`DirWatcher::with_change_hook`]: called with the
/// store name and the epoch an effective scan application produced. The
/// per-store live-subscription wakeups ride the stores' own notifiers
/// ([`crate::store::SetStore::register_notifier`]); this hook is the
/// watcher-level aggregate — one callback per store per scan, whatever the
/// mutation (edit, vanish, reappearance).
pub type WatchHook = Box<dyn Fn(&str, u64) + Send>;

struct WatchedFile {
    path: PathBuf,
    store: Arc<MutableStore>,
    /// `None` after the file vanished — any reappearance re-diffs.
    stamp: Option<FileStamp>,
}

/// What one [`DirWatcher::scan`] did, for logging and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Stores registered for files first seen this scan.
    pub registered: usize,
    /// Stores that received an effective change batch.
    pub updated: usize,
    /// Stores emptied because their file vanished.
    pub emptied: usize,
    /// Files whose contents were cut at a torn/invalid tail this scan.
    pub torn: usize,
}

/// Polls one directory of `*.set` files into live stores. Single-threaded:
/// the daemon owns one watcher and calls [`DirWatcher::scan`] from its
/// poll loop.
pub struct DirWatcher {
    dir: PathBuf,
    registry: Arc<StoreRegistry>,
    changelog_cap: usize,
    durable: Option<DurableOptions>,
    watched: HashMap<String, WatchedFile>,
    change_hook: Option<WatchHook>,
}

impl DirWatcher {
    /// Watch `dir`, registering stores (changelog capacity
    /// `changelog_cap`) into `registry`. In-memory stores; see
    /// [`DirWatcher::durable`].
    pub fn new(
        dir: impl Into<PathBuf>,
        registry: Arc<StoreRegistry>,
        changelog_cap: usize,
    ) -> Self {
        DirWatcher {
            dir: dir.into(),
            registry,
            changelog_cap,
            durable: None,
            watched: HashMap::new(),
            change_hook: None,
        }
    }

    /// Install a [`WatchHook`] called after every effective change a scan
    /// applies (edits, vanish-emptying, reappearance refills).
    pub fn with_change_hook(mut self, hook: WatchHook) -> Self {
        self.change_hook = Some(hook);
        self
    }

    /// Open every watched store durably (WAL + snapshots under the
    /// registry's persistence root). The registry must have a persistence
    /// root by the first scan, or durable opens fail and the file is
    /// skipped (retried next scan).
    pub fn durable(mut self, options: DurableOptions) -> Self {
        self.durable = Some(options);
        self
    }

    /// Names of the stores currently watched (sorted, for tests/logs).
    pub fn watched_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.watched.keys().cloned().collect();
        names.sort();
        names
    }

    /// One pass: register stores for new `*.set` files, apply edits of
    /// known files as change batches, empty stores whose file vanished.
    /// Never panics on concurrent file mutations; transient I/O errors
    /// leave state untouched until the next scan.
    pub fn scan(&mut self) -> ScanReport {
        let mut report = ScanReport::default();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("pbs-watch: cannot read {}: {e}", self.dir.display());
                return report;
            }
        };
        let mut seen: HashSet<String> = HashSet::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("set") {
                continue;
            }
            let Some(name) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
            else {
                continue;
            };
            if name.len() > crate::frame::MAX_STORE_NAME {
                eprintln!("pbs-watch: skipping {}: name too long", path.display());
                continue;
            }
            let stamp: FileStamp = entry
                .metadata()
                .map(|m| (m.modified().unwrap_or(SystemTime::UNIX_EPOCH), m.len()))
                .unwrap_or((SystemTime::UNIX_EPOCH, 0));
            seen.insert(name.clone());
            match self.watched.get_mut(&name) {
                None => {
                    if self.register_file(&name, &path, stamp, &mut report) {
                        report.registered += 1;
                    }
                }
                Some(file) if file.stamp != Some(stamp) => {
                    let store = Arc::clone(&file.store);
                    file.stamp = Some(stamp);
                    Self::sync_file_to_store(
                        &name,
                        &path,
                        &store,
                        &mut report,
                        self.change_hook.as_ref(),
                    );
                }
                Some(_) => {}
            }
        }
        // Files that vanished since the last scan: empty the store cleanly
        // (a remove-all batch) instead of serving the stale contents.
        for (name, file) in self.watched.iter_mut() {
            if seen.contains(name) || file.stamp.is_none() {
                continue;
            }
            file.stamp = None;
            let current = file.store.snapshot();
            if !current.is_empty() {
                let epoch = file.store.apply(&[], &current);
                eprintln!(
                    "pbs-watch: {} vanished; store {name:?} emptied ({} removed) at epoch {epoch}",
                    file.path.display(),
                    current.len()
                );
                if let Some(hook) = self.change_hook.as_ref() {
                    hook(name, epoch);
                }
            } else {
                eprintln!(
                    "pbs-watch: {} vanished; store {name:?} already empty",
                    file.path.display()
                );
            }
            report.emptied += 1;
        }
        report
    }

    /// First sighting of a file: open (durably when configured) and
    /// register its store, then diff the file in. Returns `false` when the
    /// open failed (retried next scan).
    fn register_file(
        &mut self,
        name: &str,
        path: &Path,
        stamp: FileStamp,
        report: &mut ScanReport,
    ) -> bool {
        let store = match self.durable {
            Some(options) => {
                let options = DurableOptions {
                    log_capacity: self.changelog_cap,
                    ..options
                };
                match self
                    .registry
                    .register_durable(name, options, StoreOptions::default())
                {
                    Ok((store, recovery)) => {
                        if recovery.epoch > 0 || recovery.truncated_bytes > 0 {
                            eprintln!(
                                "pbs-watch: store {name:?} recovered at epoch {} \
                                 ({} elements, {} WAL records, {} torn bytes dropped)",
                                recovery.epoch,
                                recovery.elements,
                                recovery.wal_records,
                                recovery.truncated_bytes
                            );
                        }
                        store
                    }
                    Err(e) => {
                        eprintln!("pbs-watch: cannot open durable store {name:?}: {e}");
                        return false;
                    }
                }
            }
            None => {
                let store = Arc::new(MutableStore::with_log_capacity([], self.changelog_cap));
                self.registry
                    .register(name, Arc::clone(&store) as Arc<dyn SetStore>);
                store
            }
        };
        Self::sync_file_to_store(name, path, &store, report, self.change_hook.as_ref());
        println!(
            "pbs-watch: watching {} as store {name:?} ({} elements, epoch {})",
            path.display(),
            store.len(),
            store.epoch()
        );
        self.watched.insert(
            name.to_string(),
            WatchedFile {
                path: path.to_path_buf(),
                store,
                stamp: Some(stamp),
            },
        );
        true
    }

    /// Converge `store` to the file's current (valid-prefix) contents with
    /// one diff batch.
    fn sync_file_to_store(
        name: &str,
        path: &Path,
        store: &Arc<MutableStore>,
        report: &mut ScanReport,
        hook: Option<&WatchHook>,
    ) {
        let (target, torn) = match setio::load_set_prefix(path) {
            Ok(loaded) => loaded,
            Err(e) => {
                // The file vanished between the directory listing and the
                // read; the vanish pass of a later scan will empty it.
                eprintln!("pbs-watch: cannot read {}: {e}", path.display());
                return;
            }
        };
        if torn {
            report.torn += 1;
            eprintln!(
                "pbs-watch: {} has an invalid tail; applying the {}-element valid prefix",
                path.display(),
                target.len()
            );
        }
        let target: HashSet<u64> = target.into_iter().collect();
        let current: HashSet<u64> = store.snapshot().into_iter().collect();
        let added: Vec<u64> = target.difference(&current).copied().collect();
        let removed: Vec<u64> = current.difference(&target).copied().collect();
        if added.is_empty() && removed.is_empty() {
            return;
        }
        let epoch = store.apply(&added, &removed);
        report.updated += 1;
        if let Some(hook) = hook {
            hook(name, epoch);
        }
        println!(
            "pbs-watch: store {name:?} now epoch {epoch} (+{} −{})",
            added.len(),
            removed.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pbs_watch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn deleted_file_empties_the_store_and_reappearance_refills() {
        let dir = tempdir("delete");
        std::fs::write(dir.join("a.set"), "1\n2\n3\n").unwrap();
        let registry = Arc::new(StoreRegistry::new());
        let mut watcher = DirWatcher::new(&dir, Arc::clone(&registry), 64);
        watcher.scan();
        let store = registry.get("a").unwrap().store().clone();
        assert_eq!(store.element_count(), 3);

        std::fs::remove_file(dir.join("a.set")).unwrap();
        let report = watcher.scan();
        assert_eq!(report.emptied, 1);
        assert_eq!(store.element_count(), 0, "remove-all batch, not stale data");
        // A second scan with the file still gone does not re-empty.
        assert_eq!(watcher.scan().emptied, 0);

        // Reappearance refills through the normal diff path, with the
        // epoch sequence intact: 1 (initial) → 2 (empty) → 3 (refill).
        std::fs::write(dir.join("a.set"), "2\n3\n4\n").unwrap();
        watcher.scan();
        assert_eq!(store.element_count(), 3);
        let mutable = registry.get("a").unwrap();
        let (_, epoch) = mutable.store().epoch_snapshot();
        assert_eq!(epoch, Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn change_hook_fires_on_edit_and_vanish() {
        let dir = tempdir("hook");
        std::fs::write(dir.join("a.set"), "1\n2\n").unwrap();
        let registry = Arc::new(StoreRegistry::new());
        let events: Arc<std::sync::Mutex<Vec<(String, u64)>>> = Arc::default();
        let sink = Arc::clone(&events);
        let mut watcher = DirWatcher::new(&dir, Arc::clone(&registry), 64).with_change_hook(
            Box::new(move |name, epoch| {
                sink.lock().unwrap().push((name.to_string(), epoch));
            }),
        );
        watcher.scan(); // initial fill → epoch 1
        watcher.scan(); // unchanged → no event
        std::fs::write(dir.join("a.set"), "1\n2\n3\n").unwrap();
        watcher.scan(); // edit → epoch 2
        std::fs::remove_file(dir.join("a.set")).unwrap();
        watcher.scan(); // vanish-emptying → epoch 3
        let got = events.lock().unwrap().clone();
        assert_eq!(got, vec![("a".into(), 1), ("a".into(), 2), ("a".into(), 3)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_file_serves_the_valid_prefix() {
        let dir = tempdir("torn");
        std::fs::write(dir.join("a.set"), "1\n2\n3\n").unwrap();
        let registry = Arc::new(StoreRegistry::new());
        let mut watcher = DirWatcher::new(&dir, Arc::clone(&registry), 64);
        watcher.scan();
        let store = registry.get("a").unwrap().store().clone();

        // The file is caught torn mid-rewrite: garbage after two elements.
        std::fs::write(dir.join("a.set"), "1\n5\nGARBAGE##\n9\n").unwrap();
        let report = watcher.scan();
        assert_eq!(report.torn, 1);
        let mut now = store.snapshot();
        now.sort_unstable();
        assert_eq!(now, vec![1, 5], "valid prefix applied, stale 2/3 dropped");

        // The writer finishes; the next poll converges to the full file.
        std::fs::write(dir.join("a.set"), "1\n5\n9\n").unwrap();
        watcher.scan();
        let mut now = store.snapshot();
        now.sort_unstable();
        assert_eq!(now, vec![1, 5, 9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_watch_survives_watcher_restart_with_epoch_continuity() {
        let dir = tempdir("durable_watch");
        let data = tempdir("durable_watch_data");
        std::fs::write(dir.join("a.set"), "1\n2\n").unwrap();
        let epoch_before = {
            let registry = Arc::new(StoreRegistry::new());
            registry.set_persistence_root(&data);
            let mut watcher =
                DirWatcher::new(&dir, Arc::clone(&registry), 64).durable(DurableOptions::default());
            watcher.scan();
            std::fs::write(dir.join("a.set"), "1\n2\n3\n").unwrap();
            watcher.scan();
            let store = registry.get("a").unwrap().store().clone();
            store.epoch_snapshot().1.unwrap()
        };
        assert_eq!(epoch_before, 2);
        // A fresh watcher (daemon restart) over the same data dir recovers
        // the epoch sequence; the unchanged file is a no-op batch.
        let registry = Arc::new(StoreRegistry::new());
        registry.set_persistence_root(&data);
        let mut watcher =
            DirWatcher::new(&dir, Arc::clone(&registry), 64).durable(DurableOptions::default());
        watcher.scan();
        let store = registry.get("a").unwrap().store().clone();
        let (mut elements, epoch) = store.epoch_snapshot();
        elements.sort_unstable();
        assert_eq!(epoch, Some(epoch_before), "no spurious batch on restart");
        assert_eq!(elements, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&data).unwrap();
    }
}
