//! `pbs-syncd` — the multi-store PBS reconciliation session server.
//!
//! ```text
//! pbs-syncd [--listen ADDR] [--set-file PATH | --range N]
//!           [--store NAME=SPEC]... [--watch-dir DIR [--watch-every SECS]]
//!           [--changelog-cap N] [--data-dir DIR] [--snapshot-every N]
//!           [--fsync] [--event-workers W] [--max-subscribers N]
//!           [--round-cap R] [--max-pipeline L] [--protocol V]
//!           [--stats-every SECS] [--admin ADDR] [--log json|text]
//!           [--trace-sample R]
//!           [--anti-entropy PEER[,PEER...] [--anti-entropy-every SECS]
//!            [--anti-entropy-seed N]]
//! ```
//!
//! Serves the `docs/WIRE.md` protocol. One process serves any number of
//! named stores; each v2 client selects one with the store name in its
//! `Hello` (v1 clients land on the default store). Sources of stores:
//!
//! * `--set-file PATH` / `--range N` — the **default** store (the one the
//!   empty name routes to).
//! * `--store NAME=SPEC` — a named store; `SPEC` is a set-file path or
//!   `range:N` for a deterministic demo set.
//! * `--watch-dir DIR` — every `*.set` file in `DIR` becomes a live
//!   [`pbs_net::store::MutableStore`] named after the file stem. The directory is polled
//!   every `--watch-every` seconds (default 5); edits to a file are
//!   applied to its store as an epoch-stamped change batch between
//!   sessions, and new files become new stores without a restart.
//!
//! Watched stores serve the v3 **delta-subscription** path: a returning
//! client carrying the epoch of its previous sync receives exactly the
//! changes since it. `--changelog-cap N` sets how many change batches each
//! watched store retains (default 1024) — a client older than the retained
//! window is told to run a full reconciliation instead; 0 disables the
//! delta feed entirely.
//!
//! **Durability** (`--data-dir DIR`): every store — default, named, and
//! watched — becomes a persistent [`pbs_net::store::MutableStore`]: effective change
//! batches are written ahead to a per-store WAL under `DIR` before memory
//! is mutated, compacted into snapshots every `--snapshot-every` batches,
//! and recovered (tolerating torn WAL tails) on restart, so store epochs
//! continue exactly where they left off and surviving client
//! `--epoch-cache` baselines stay warm. Without `--data-dir` everything is
//! in-memory, as before.
//!
//! Watched and durable stores also serve **live subscriptions**: a v3
//! client that sends a `Subscribe` frame after its delta catch-up stays
//! connected and has every further change batch pushed to it as the store
//! mutates (`pbs-sync --follow`). `--event-workers W` (alias: `--workers`)
//! sizes the event-loop worker pool each connection is multiplexed onto;
//! `--max-subscribers N` caps concurrently parked subscribers
//! server-wide.
//!
//! **Anti-entropy mesh** (`--anti-entropy PEER[,PEER…]`): the node also
//! takes the *client role*, periodically reconciling every local store
//! pairwise against each listed peer with the ordinary wire protocol and
//! applying what the peer had that this node lacked. The applies are
//! normal epoch-advancing change batches, so local subscribers see
//! remotely-originated elements pushed live, and the stores of a connected
//! mesh converge to the union without any coordinator.
//! `--anti-entropy-every SECS` paces the rotation (default 5, with ±25%
//! seeded jitter), `--anti-entropy-seed N` pins the rotation/jitter
//! schedule for reproducible soaks.
//!
//! **Observability**: `--admin ADDR` binds an HTTP endpoint serving
//! `GET /metrics` (Prometheus text format), `GET /healthz` (`503` once
//! shutdown begins), and `GET /stats.json`; the metric catalog is in
//! `docs/OBSERVABILITY.md`. `--log json|text` turns on structured
//! per-session trace events on stderr, `--trace-sample R` keeps only the
//! fraction `R` of sessions (deterministic by session id, default 1.0).
//!
//! Per-store and server-wide stats are printed every `--stats-every`
//! seconds (`--stats-every 0` disables the stats line entirely — scrape
//! `--admin` instead) and the process runs until killed.

use obs::trace::{Level, TraceConfig, TraceFormat};
use pbs_net::admin::{AdminServer, AdminState};
use pbs_net::client::ClientConfig;
use pbs_net::mesh::{MeshConfig, MeshDriver};
use pbs_net::server::{Server, ServerConfig};
use pbs_net::setio;
use pbs_net::store::{InMemoryStore, SetStore, StoreOptions, StoreRegistry};
use pbs_net::wal::{DurableOptions, DEFAULT_SNAPSHOT_EVERY};
use pbs_net::watch::DirWatcher;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    listen: String,
    set_file: Option<PathBuf>,
    range: Option<usize>,
    stores: Vec<(String, String)>,
    watch_dir: Option<PathBuf>,
    watch_every: u64,
    changelog_cap: usize,
    data_dir: Option<PathBuf>,
    snapshot_every: usize,
    fsync: bool,
    workers: Option<usize>,
    max_subscribers: Option<usize>,
    round_cap: Option<u32>,
    max_pipeline: Option<u32>,
    protocol: Option<u16>,
    stats_every: u64,
    admin: Option<String>,
    log: Option<String>,
    trace_sample: f64,
    anti_entropy: Vec<String>,
    anti_entropy_every: u64,
    anti_entropy_seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pbs-syncd [--listen ADDR] [--set-file PATH | --range N] \
         [--store NAME=SPEC]... [--watch-dir DIR [--watch-every SECS]] \
         [--changelog-cap N] [--data-dir DIR] [--snapshot-every N] [--fsync] \
         [--event-workers W] [--max-subscribers N] [--round-cap R] \
         [--max-pipeline L] [--protocol V] [--stats-every SECS] \
         [--admin ADDR] [--log json|text] [--trace-sample R] \
         [--anti-entropy PEER[,PEER...]] [--anti-entropy-every SECS] \
         [--anti-entropy-seed N]\n\
         SPEC is a set-file path or range:N; at least one store is required\n\
         --stats-every 0 disables the periodic stats line; --admin serves \
         GET /metrics, /healthz, /stats.json\n\
         --anti-entropy gives the node a client role: every local store is \
         periodically reconciled pairwise against each PEER"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7171".into(),
        set_file: None,
        range: None,
        stores: Vec::new(),
        watch_dir: None,
        watch_every: 5,
        changelog_cap: pbs_net::store::DEFAULT_CHANGELOG_CAPACITY,
        data_dir: None,
        snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        fsync: false,
        workers: None,
        max_subscribers: None,
        round_cap: None,
        max_pipeline: None,
        protocol: None,
        stats_every: 30,
        admin: None,
        log: None,
        trace_sample: 1.0,
        anti_entropy: Vec::new(),
        anti_entropy_every: 5,
        anti_entropy_seed: 0xA17E_E471,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => args.listen = value(),
            "--set-file" => args.set_file = Some(PathBuf::from(value())),
            "--range" => args.range = value().parse().ok(),
            "--store" => {
                let spec = value();
                let Some((name, source)) = spec.split_once('=') else {
                    usage()
                };
                args.stores.push((name.to_string(), source.to_string()));
            }
            "--watch-dir" => args.watch_dir = Some(PathBuf::from(value())),
            "--watch-every" => args.watch_every = value().parse().unwrap_or(5),
            "--changelog-cap" => {
                args.changelog_cap = value()
                    .parse()
                    .unwrap_or(pbs_net::store::DEFAULT_CHANGELOG_CAPACITY)
            }
            "--data-dir" => args.data_dir = Some(PathBuf::from(value())),
            "--snapshot-every" => {
                args.snapshot_every = value().parse().unwrap_or(DEFAULT_SNAPSHOT_EVERY)
            }
            "--fsync" => args.fsync = true,
            // --workers predates the event loop; both spellings size the
            // same event-loop worker pool.
            "--event-workers" | "--workers" => args.workers = value().parse().ok(),
            "--max-subscribers" => args.max_subscribers = value().parse().ok(),
            "--round-cap" => args.round_cap = value().parse().ok(),
            "--max-pipeline" => args.max_pipeline = value().parse().ok(),
            "--protocol" => args.protocol = value().parse().ok(),
            "--stats-every" => args.stats_every = value().parse().unwrap_or(30),
            "--admin" => args.admin = Some(value()),
            "--log" => args.log = Some(value()),
            "--trace-sample" => args.trace_sample = value().parse().unwrap_or_else(|_| usage()),
            "--anti-entropy" => args.anti_entropy.extend(
                value()
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(str::to_string),
            ),
            "--anti-entropy-every" => {
                args.anti_entropy_every = value().parse().unwrap_or_else(|_| usage())
            }
            "--anti-entropy-seed" => {
                args.anti_entropy_seed = value().parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    args
}

/// Load a `--store` SPEC: a set-file path or `range:N`.
fn load_spec(name: &str, spec: &str) -> Vec<u64> {
    if let Some(n) = spec.strip_prefix("range:") {
        let Ok(n) = n.parse::<usize>() else { usage() };
        // Salt the demo set by store name so two range stores differ.
        let salt = name.bytes().fold(0xB0Bu64, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(b as u64)
        });
        return setio::demo_set(n, salt);
    }
    let path = PathBuf::from(spec);
    setio::load_set(&path).unwrap_or_else(|e| {
        eprintln!("pbs-syncd: cannot load {}: {e}", path.display());
        std::process::exit(1);
    })
}

/// Register one fixed (non-watched) store: durable under `--data-dir`
/// (recovered state converged to `elements` with one diff batch, so a
/// restart with unchanged contents is a no-op and epochs continue), plain
/// in-memory otherwise.
fn register_fixed_store(
    registry: &Arc<StoreRegistry>,
    name: &str,
    elements: Vec<u64>,
    durable: Option<DurableOptions>,
) {
    let Some(options) = durable else {
        registry.register(name, Arc::new(InMemoryStore::new(elements)));
        return;
    };
    let (store, recovery) = registry
        .register_durable(name, options, StoreOptions::default())
        .unwrap_or_else(|e| {
            eprintln!("pbs-syncd: cannot open durable store {name:?}: {e}");
            std::process::exit(1);
        });
    if recovery.epoch > 0 || recovery.truncated_bytes > 0 {
        println!(
            "pbs-syncd: store {name:?} recovered at epoch {} ({} elements, \
             {} WAL records replayed, {} torn bytes dropped)",
            recovery.epoch, recovery.elements, recovery.wal_records, recovery.truncated_bytes
        );
    }
    let target: HashSet<u64> = elements.into_iter().collect();
    let current: HashSet<u64> = store.snapshot().into_iter().collect();
    let added: Vec<u64> = target.difference(&current).copied().collect();
    let removed: Vec<u64> = current.difference(&target).copied().collect();
    if !added.is_empty() || !removed.is_empty() {
        store.apply(&added, &removed);
        // Fold the (possibly large) seed batch into a snapshot so the next
        // restart recovers from one file instead of replaying it.
        if let Err(e) = store.compact_now() {
            eprintln!("pbs-syncd: snapshot of store {name:?} failed: {e}");
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(log) = &args.log {
        let format = match log.as_str() {
            "json" => TraceFormat::Json,
            "text" => TraceFormat::Text,
            _ => usage(),
        };
        obs::trace::init(TraceConfig {
            format,
            level: Level::Info,
            sample: args.trace_sample,
        });
    }
    let registry = Arc::new(StoreRegistry::new());
    let durable = args.data_dir.as_ref().map(|dir| {
        registry.set_persistence_root(dir);
        DurableOptions {
            log_capacity: args.changelog_cap,
            snapshot_every: args.snapshot_every,
            sync_writes: args.fsync,
        }
    });

    // Default store from --set-file / --range.
    match (&args.set_file, args.range) {
        (Some(path), None) => {
            let elements = setio::load_set(path).unwrap_or_else(|e| {
                eprintln!("pbs-syncd: cannot load {}: {e}", path.display());
                std::process::exit(1);
            });
            register_fixed_store(&registry, "", elements, durable);
        }
        (None, Some(n)) => {
            register_fixed_store(&registry, "", setio::demo_set(n, 0xB0B), durable);
        }
        (None, None) => {}
        _ => usage(),
    }
    // Named stores.
    for (name, spec) in &args.stores {
        register_fixed_store(&registry, name, load_spec(name, spec), durable);
    }
    // Watched stores: one synchronous scan so they exist before we listen,
    // then a poller thread keeps them live.
    if let Some(dir) = &args.watch_dir {
        let mut watcher = DirWatcher::new(dir, Arc::clone(&registry), args.changelog_cap);
        if let Some(options) = durable {
            watcher = watcher.durable(options);
        }
        watcher.scan();
        let every = Duration::from_secs(args.watch_every.max(1));
        std::thread::Builder::new()
            .name("pbs-syncd-watch".into())
            .spawn(move || loop {
                std::thread::sleep(every);
                watcher.scan();
            })
            .expect("spawn watch thread");
    }
    if registry.is_empty() {
        usage();
    }
    for name in registry.names() {
        let entry = registry.get(&name).expect("just listed");
        println!(
            "pbs-syncd: serving store {} with {} elements",
            if name.is_empty() { "(default)" } else { &name },
            entry.store().element_count()
        );
    }

    let mut config = ServerConfig::default();
    if let Some(w) = args.workers {
        config.workers = w.max(1);
    }
    if let Some(n) = args.max_subscribers {
        config.max_subscribers = n;
    }
    if let Some(r) = args.round_cap {
        config.round_cap = r.max(1);
    }
    if let Some(l) = args.max_pipeline {
        config.max_pipeline_depth = l.max(1);
    }
    if let Some(v) = args.protocol {
        config.protocol_version = v;
    }

    let server =
        Server::bind_registry(&args.listen, Arc::clone(&registry), config).unwrap_or_else(|e| {
            eprintln!("pbs-syncd: cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        });
    println!(
        "pbs-syncd: listening on {} (protocol v{}, {} stores)",
        server.local_addr(),
        config.protocol_version,
        registry.len()
    );

    // Anti-entropy client role: a background driver reconciling every
    // local store against each peer on a seeded, jittered rotation. The
    // handle must stay alive for the life of the process.
    let mesh = (!args.anti_entropy.is_empty()).then(|| {
        println!(
            "pbs-syncd: anti-entropy mesh with {} peer(s) every ~{}s (seed {:#x}): {}",
            args.anti_entropy.len(),
            args.anti_entropy_every.max(1),
            args.anti_entropy_seed,
            args.anti_entropy.join(", ")
        );
        MeshDriver::spawn(
            Arc::clone(&registry),
            MeshConfig {
                peers: args.anti_entropy.clone(),
                interval: Duration::from_secs(args.anti_entropy_every.max(1)),
                seed: args.anti_entropy_seed,
                client: ClientConfig::default(),
            },
        )
    });

    // Keep the admin endpoint alive for the life of the process: dropping
    // the handle would stop its listener thread.
    let _admin = args.admin.as_ref().map(|addr| {
        let admin = AdminServer::bind(addr.as_str(), AdminState::of(&server)).unwrap_or_else(|e| {
            eprintln!("pbs-syncd: cannot bind admin endpoint {addr}: {e}");
            std::process::exit(1);
        });
        println!(
            "pbs-syncd: admin endpoint on http://{}/metrics",
            admin.local_addr()
        );
        admin
    });

    let stats = server.stats();
    // --stats-every 0 disables the periodic stats line entirely; the admin
    // endpoint (if bound) is then the way to observe the process.
    if args.stats_every == 0 {
        loop {
            std::thread::park();
        }
    }
    // Ticks are anchored to an absolute schedule so the time spent walking
    // stores and printing does not drift the cadence (a sleep *after* the
    // walk would stretch every interval by the walk's duration).
    let period = Duration::from_secs(args.stats_every);
    let mut next_tick = Instant::now() + period;
    loop {
        if let Some(wait) = next_tick.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        next_tick += period;
        // A walk slower than the period skips ticks instead of bursting.
        while next_tick <= Instant::now() {
            next_tick += period;
        }
        let s = stats.snapshot();
        println!(
            "pbs-syncd: total: sessions {}/{} ok (failed {}), rounds {} in {} trips, \
             bytes in/out {}/{}, decode failures {}, elements ingested {}, \
             delta {} served / {} resyncs ({} elements)",
            s.sessions_completed,
            s.sessions_started,
            s.sessions_failed,
            s.rounds,
            s.round_trips,
            s.bytes_in,
            s.bytes_out,
            s.decode_failures,
            s.elements_received,
            s.delta_sessions,
            s.delta_fallbacks,
            s.delta_elements,
        );
        println!(
            "pbs-syncd: push: {} subscriptions, {} batches / {} elements pushed, \
             {} evicted, {} keepalive pings",
            s.subscriptions,
            s.push_batches,
            s.push_elements,
            s.subscribers_evicted,
            s.keepalive_pings,
        );
        if let Some(mesh) = &mesh {
            for peer in mesh.stats().snapshot() {
                println!(
                    "pbs-syncd:   peer {}: syncs {}/{} ok (failed {}), \
                     bytes out/in {}/{}, elements pulled {} / pushed {}",
                    peer.peer,
                    peer.syncs_completed,
                    peer.syncs_attempted,
                    peer.syncs_failed,
                    peer.bytes_sent,
                    peer.bytes_received,
                    peer.elements_pulled,
                    peer.elements_pushed,
                );
            }
        }
        for name in registry.names() {
            let Some(entry) = registry.get(&name) else {
                continue;
            };
            let p = entry.stats().snapshot();
            println!(
                "pbs-syncd:   store {}: sessions {}/{} ok, rounds {} in {} trips, \
                 ingested {}, delta {} served / {} resyncs, size {}",
                if name.is_empty() { "(default)" } else { &name },
                p.sessions_completed,
                p.sessions_started,
                p.rounds,
                p.round_trips,
                p.elements_received,
                p.delta_sessions,
                p.delta_fallbacks,
                entry.store().element_count(),
            );
        }
    }
}
