//! `pbs-syncd` — the multi-store PBS reconciliation session server.
//!
//! ```text
//! pbs-syncd [--listen ADDR] [--set-file PATH | --range N]
//!           [--store NAME=SPEC]... [--watch-dir DIR [--watch-every SECS]]
//!           [--changelog-cap N] [--workers W] [--round-cap R]
//!           [--max-pipeline L] [--protocol V] [--stats-every SECS]
//! ```
//!
//! Serves the `docs/WIRE.md` protocol. One process serves any number of
//! named stores; each v2 client selects one with the store name in its
//! `Hello` (v1 clients land on the default store). Sources of stores:
//!
//! * `--set-file PATH` / `--range N` — the **default** store (the one the
//!   empty name routes to).
//! * `--store NAME=SPEC` — a named store; `SPEC` is a set-file path or
//!   `range:N` for a deterministic demo set.
//! * `--watch-dir DIR` — every `*.set` file in `DIR` becomes a live
//!   [`MutableStore`] named after the file stem. The directory is polled
//!   every `--watch-every` seconds (default 5); edits to a file are
//!   applied to its store as an epoch-stamped change batch between
//!   sessions, and new files become new stores without a restart.
//!
//! Watched stores serve the v3 **delta-subscription** path: a returning
//! client carrying the epoch of its previous sync receives exactly the
//! changes since it. `--changelog-cap N` sets how many change batches each
//! watched store retains (default 1024) — a client older than the retained
//! window is told to run a full reconciliation instead; 0 disables the
//! delta feed entirely.
//!
//! Per-store and server-wide stats are printed every `--stats-every`
//! seconds and the process runs until killed.

use pbs_net::server::{Server, ServerConfig};
use pbs_net::setio;
use pbs_net::store::{InMemoryStore, MutableStore, SetStore, StoreRegistry};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

struct Args {
    listen: String,
    set_file: Option<PathBuf>,
    range: Option<usize>,
    stores: Vec<(String, String)>,
    watch_dir: Option<PathBuf>,
    watch_every: u64,
    changelog_cap: usize,
    workers: Option<usize>,
    round_cap: Option<u32>,
    max_pipeline: Option<u32>,
    protocol: Option<u16>,
    stats_every: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pbs-syncd [--listen ADDR] [--set-file PATH | --range N] \
         [--store NAME=SPEC]... [--watch-dir DIR [--watch-every SECS]] \
         [--changelog-cap N] [--workers W] [--round-cap R] [--max-pipeline L] \
         [--protocol V] [--stats-every SECS]\n\
         SPEC is a set-file path or range:N; at least one store is required"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7171".into(),
        set_file: None,
        range: None,
        stores: Vec::new(),
        watch_dir: None,
        watch_every: 5,
        changelog_cap: pbs_net::store::DEFAULT_CHANGELOG_CAPACITY,
        workers: None,
        round_cap: None,
        max_pipeline: None,
        protocol: None,
        stats_every: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => args.listen = value(),
            "--set-file" => args.set_file = Some(PathBuf::from(value())),
            "--range" => args.range = value().parse().ok(),
            "--store" => {
                let spec = value();
                let Some((name, source)) = spec.split_once('=') else {
                    usage()
                };
                args.stores.push((name.to_string(), source.to_string()));
            }
            "--watch-dir" => args.watch_dir = Some(PathBuf::from(value())),
            "--watch-every" => args.watch_every = value().parse().unwrap_or(5),
            "--changelog-cap" => {
                args.changelog_cap = value()
                    .parse()
                    .unwrap_or(pbs_net::store::DEFAULT_CHANGELOG_CAPACITY)
            }
            "--workers" => args.workers = value().parse().ok(),
            "--round-cap" => args.round_cap = value().parse().ok(),
            "--max-pipeline" => args.max_pipeline = value().parse().ok(),
            "--protocol" => args.protocol = value().parse().ok(),
            "--stats-every" => args.stats_every = value().parse().unwrap_or(30),
            _ => usage(),
        }
    }
    args
}

/// Load a `--store` SPEC: a set-file path or `range:N`.
fn load_spec(name: &str, spec: &str) -> Vec<u64> {
    if let Some(n) = spec.strip_prefix("range:") {
        let Ok(n) = n.parse::<usize>() else { usage() };
        // Salt the demo set by store name so two range stores differ.
        let salt = name.bytes().fold(0xB0Bu64, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(b as u64)
        });
        return setio::demo_set(n, salt);
    }
    let path = PathBuf::from(spec);
    setio::load_set(&path).unwrap_or_else(|e| {
        eprintln!("pbs-syncd: cannot load {}: {e}", path.display());
        std::process::exit(1);
    })
}

/// The (mtime, length) fingerprint change detection keys on. Either field
/// changing triggers a re-read; the diff-based apply is idempotent, so a
/// spurious re-read is harmless, while a plain `mtime >` comparison would
/// silently drop edits landing inside one mtime granule (second-granular
/// on many filesystems).
type FileStamp = (SystemTime, u64);

/// One pass over the watch directory: register stores for new `*.set`
/// files, apply edits of known files as change batches.
fn scan_watch_dir(
    dir: &std::path::Path,
    registry: &StoreRegistry,
    watched: &mut HashMap<String, (PathBuf, Arc<MutableStore>, FileStamp)>,
    changelog_cap: usize,
) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("pbs-syncd: cannot read {}: {e}", dir.display());
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("set") {
            continue;
        }
        let Some(name) = path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
        else {
            continue;
        };
        if name.len() > pbs_net::frame::MAX_STORE_NAME {
            eprintln!("pbs-syncd: skipping {}: name too long", path.display());
            continue;
        }
        let stamp: FileStamp = entry
            .metadata()
            .map(|m| (m.modified().unwrap_or(SystemTime::UNIX_EPOCH), m.len()))
            .unwrap_or((SystemTime::UNIX_EPOCH, 0));
        match watched.get_mut(&name) {
            None => {
                let elements = match setio::load_set(&path) {
                    Ok(elements) => elements,
                    Err(e) => {
                        eprintln!("pbs-syncd: cannot load {}: {e}", path.display());
                        continue;
                    }
                };
                let store = Arc::new(MutableStore::with_log_capacity(elements, changelog_cap));
                registry.register(name.clone(), Arc::clone(&store) as Arc<dyn SetStore>);
                println!(
                    "pbs-syncd: watching {} as store {name:?} ({} elements)",
                    path.display(),
                    store.len()
                );
                watched.insert(name, (path, store, stamp));
            }
            Some((_, store, last_stamp)) if stamp != *last_stamp => {
                let Ok(target) = setio::load_set(&path) else {
                    eprintln!(
                        "pbs-syncd: ignoring unparseable update of {}",
                        path.display()
                    );
                    continue;
                };
                let target: std::collections::HashSet<u64> = target.into_iter().collect();
                let current: std::collections::HashSet<u64> =
                    store.snapshot().into_iter().collect();
                let added: Vec<u64> = target.difference(&current).copied().collect();
                let removed: Vec<u64> = current.difference(&target).copied().collect();
                let epoch = store.apply(&added, &removed);
                *last_stamp = stamp;
                if !added.is_empty() || !removed.is_empty() {
                    println!(
                        "pbs-syncd: store {name:?} now epoch {epoch} (+{} −{})",
                        added.len(),
                        removed.len()
                    );
                }
            }
            Some(_) => {}
        }
    }
}

fn main() {
    let args = parse_args();
    let registry = Arc::new(StoreRegistry::new());

    // Default store from --set-file / --range.
    match (&args.set_file, args.range) {
        (Some(path), None) => {
            let elements = setio::load_set(path).unwrap_or_else(|e| {
                eprintln!("pbs-syncd: cannot load {}: {e}", path.display());
                std::process::exit(1);
            });
            registry.register("", Arc::new(InMemoryStore::new(elements)));
        }
        (None, Some(n)) => {
            registry.register("", Arc::new(InMemoryStore::new(setio::demo_set(n, 0xB0B))));
        }
        (None, None) => {}
        _ => usage(),
    }
    // Named stores.
    for (name, spec) in &args.stores {
        registry.register(
            name.clone(),
            Arc::new(InMemoryStore::new(load_spec(name, spec))),
        );
    }
    // Watched stores: one synchronous scan so they exist before we listen,
    // then a poller thread keeps them live.
    let mut watched = HashMap::new();
    if let Some(dir) = &args.watch_dir {
        scan_watch_dir(dir, &registry, &mut watched, args.changelog_cap);
        let dir = dir.clone();
        let registry = Arc::clone(&registry);
        let every = Duration::from_secs(args.watch_every.max(1));
        let changelog_cap = args.changelog_cap;
        std::thread::Builder::new()
            .name("pbs-syncd-watch".into())
            .spawn(move || loop {
                std::thread::sleep(every);
                scan_watch_dir(&dir, &registry, &mut watched, changelog_cap);
            })
            .expect("spawn watch thread");
    }
    if registry.is_empty() {
        usage();
    }
    for name in registry.names() {
        let entry = registry.get(&name).expect("just listed");
        println!(
            "pbs-syncd: serving store {} with {} elements",
            if name.is_empty() { "(default)" } else { &name },
            entry.store().element_count()
        );
    }

    let mut config = ServerConfig::default();
    if let Some(w) = args.workers {
        config.workers = w.max(1);
    }
    if let Some(r) = args.round_cap {
        config.round_cap = r.max(1);
    }
    if let Some(l) = args.max_pipeline {
        config.max_pipeline_depth = l.max(1);
    }
    if let Some(v) = args.protocol {
        config.protocol_version = v;
    }

    let server =
        Server::bind_registry(&args.listen, Arc::clone(&registry), config).unwrap_or_else(|e| {
            eprintln!("pbs-syncd: cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        });
    println!(
        "pbs-syncd: listening on {} (protocol v{}, {} stores)",
        server.local_addr(),
        config.protocol_version,
        registry.len()
    );

    let stats = server.stats();
    loop {
        std::thread::sleep(Duration::from_secs(args.stats_every.max(1)));
        let s = stats.snapshot();
        println!(
            "pbs-syncd: total: sessions {}/{} ok (failed {}), rounds {} in {} trips, \
             bytes in/out {}/{}, decode failures {}, elements ingested {}, \
             delta {} served / {} resyncs ({} elements)",
            s.sessions_completed,
            s.sessions_started,
            s.sessions_failed,
            s.rounds,
            s.round_trips,
            s.bytes_in,
            s.bytes_out,
            s.decode_failures,
            s.elements_received,
            s.delta_sessions,
            s.delta_fallbacks,
            s.delta_elements,
        );
        for name in registry.names() {
            let Some(entry) = registry.get(&name) else {
                continue;
            };
            let p = entry.stats().snapshot();
            println!(
                "pbs-syncd:   store {}: sessions {}/{} ok, rounds {} in {} trips, \
                 ingested {}, delta {} served / {} resyncs, size {}",
                if name.is_empty() { "(default)" } else { &name },
                p.sessions_completed,
                p.sessions_started,
                p.rounds,
                p.round_trips,
                p.elements_received,
                p.delta_sessions,
                p.delta_fallbacks,
                entry.store().element_count(),
            );
        }
    }
}
