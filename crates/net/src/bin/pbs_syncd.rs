//! `pbs-syncd` — the PBS reconciliation session server.
//!
//! ```text
//! pbs-syncd [--listen ADDR] (--set-file PATH | --range N) [--workers W]
//!           [--round-cap R] [--stats-every SECS]
//! ```
//!
//! Serves the `docs/WIRE.md` protocol: each connection reconciles one
//! client set against the served set and ingests the client's final
//! element transfer. Stats are printed periodically and the process runs
//! until killed.

use pbs_net::server::{InMemoryStore, Server, ServerConfig};
use pbs_net::setio;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    set_file: Option<PathBuf>,
    range: Option<usize>,
    workers: Option<usize>,
    round_cap: Option<u32>,
    stats_every: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: pbs-syncd [--listen ADDR] (--set-file PATH | --range N) \
         [--workers W] [--round-cap R] [--stats-every SECS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7171".into(),
        set_file: None,
        range: None,
        workers: None,
        round_cap: None,
        stats_every: 30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => args.listen = value(),
            "--set-file" => args.set_file = Some(PathBuf::from(value())),
            "--range" => args.range = value().parse().ok(),
            "--workers" => args.workers = value().parse().ok(),
            "--round-cap" => args.round_cap = value().parse().ok(),
            "--stats-every" => args.stats_every = value().parse().unwrap_or(30),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let elements = match (&args.set_file, args.range) {
        (Some(path), None) => setio::load_set(path).unwrap_or_else(|e| {
            eprintln!("pbs-syncd: cannot load {}: {e}", path.display());
            std::process::exit(1);
        }),
        (None, Some(n)) => setio::demo_set(n, 0xB0B),
        _ => usage(),
    };
    let store = Arc::new(InMemoryStore::new(elements));
    println!("pbs-syncd: serving a set of {} elements", store.len());

    let mut config = ServerConfig::default();
    if let Some(w) = args.workers {
        config.workers = w.max(1);
    }
    if let Some(r) = args.round_cap {
        config.round_cap = r.max(1);
    }

    let server = Server::bind(&args.listen, store.clone() as Arc<_>, config).unwrap_or_else(|e| {
        eprintln!("pbs-syncd: cannot bind {}: {e}", args.listen);
        std::process::exit(1);
    });
    println!("pbs-syncd: listening on {}", server.local_addr());

    let stats = server.stats();
    loop {
        std::thread::sleep(Duration::from_secs(args.stats_every.max(1)));
        let s = stats.snapshot();
        println!(
            "pbs-syncd: sessions {}/{} ok (failed {}), rounds {}, \
             bytes in/out {}/{}, decode failures {}, elements ingested {}, set size {}",
            s.sessions_completed,
            s.sessions_started,
            s.sessions_failed,
            s.rounds,
            s.bytes_in,
            s.bytes_out,
            s.decode_failures,
            s.elements_received,
            store.len(),
        );
    }
}
