//! `pbs-sync` — the PBS reconciliation client.
//!
//! ```text
//! pbs-sync --connect ADDR (--set-file PATH | --range N [--drop K])
//!          [--store NAME] [--pipeline L] [--protocol V]
//!          [--d D] [--seed S] [--quiet]
//! ```
//!
//! Reconciles the local set against a `pbs-syncd` server: learns `A△B`,
//! pushes `A \ B` to the server, and prints what the wire carried. With
//! `--range N --drop K` the local set is the server's `--range N` demo set
//! minus its first `K` elements — an instant end-to-end smoke test.
//! `--store NAME` addresses one of a multi-store server's named sets;
//! `--pipeline L` packs `L` protocol rounds into each round trip (both
//! need a v2 server).

use pbs_net::client::{sync, ClientConfig};
use pbs_net::setio;
use std::path::PathBuf;

struct Args {
    connect: String,
    set_file: Option<PathBuf>,
    range: Option<usize>,
    drop: usize,
    store: String,
    pipeline: u32,
    protocol: Option<u16>,
    d: Option<u64>,
    seed: u64,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pbs-sync --connect ADDR (--set-file PATH | --range N [--drop K]) \
         [--store NAME] [--pipeline L] [--protocol V] [--d D] [--seed S] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: String::new(),
        set_file: None,
        range: None,
        drop: 0,
        store: String::new(),
        pipeline: 1,
        protocol: None,
        d: None,
        seed: 0xA11CE,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--connect" => args.connect = value(),
            "--set-file" => args.set_file = Some(PathBuf::from(value())),
            "--range" => args.range = value().parse().ok(),
            "--drop" => args.drop = value().parse().unwrap_or(0),
            "--store" => args.store = value(),
            "--pipeline" => args.pipeline = value().parse().unwrap_or(1),
            "--protocol" => args.protocol = value().parse().ok(),
            "--d" => args.d = value().parse().ok(),
            "--seed" => args.seed = value().parse().unwrap_or(0xA11CE),
            "--quiet" => args.quiet = true,
            _ => usage(),
        }
    }
    if args.connect.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let set = match (&args.set_file, args.range) {
        (Some(path), None) => setio::load_set(path).unwrap_or_else(|e| {
            eprintln!("pbs-sync: cannot load {}: {e}", path.display());
            std::process::exit(1);
        }),
        (None, Some(n)) => {
            let full = setio::demo_set(n, 0xB0B);
            full[args.drop.min(full.len())..].to_vec()
        }
        _ => usage(),
    };

    let mut config = ClientConfig {
        known_d: args.d,
        seed: args.seed,
        store: args.store.clone(),
        pipeline: args.pipeline.max(1),
        ..ClientConfig::default()
    };
    if let Some(v) = args.protocol {
        config.protocol_version = v;
    }
    let report = sync(&args.connect, &set, &config).unwrap_or_else(|e| {
        eprintln!("pbs-sync: {e}");
        std::process::exit(1);
    });

    println!(
        "pbs-sync: {}{} of set {} → |A△B| = {} ({} pushed to the server), \
         {} rounds in {} trips, d_param {}{}, verified: {}",
        args.connect,
        if args.store.is_empty() {
            String::new()
        } else {
            format!(" store {:?}", args.store)
        },
        set.len(),
        report.recovered.len(),
        report.pushed.len(),
        report.rounds,
        report.round_trips,
        report.d_param,
        report
            .estimated_d
            .map(|d| format!(" (d̂ = {d:.1})"))
            .unwrap_or_default(),
        report.verified,
    );
    println!(
        "pbs-sync: wire: {} B sent / {} B received over {}+{} frames (v{})",
        report.bytes_sent,
        report.bytes_received,
        report.frames_sent,
        report.frames_received,
        report.negotiated_version,
    );
    if !args.quiet {
        let mut diff = report.recovered.clone();
        diff.sort_unstable();
        for e in diff.iter().take(50) {
            println!("  {e}");
        }
        if diff.len() > 50 {
            println!("  … {} more", diff.len() - 50);
        }
    }
    if !report.verified {
        std::process::exit(3);
    }
}
