//! `pbs-sync` — the PBS reconciliation client.
//!
//! ```text
//! pbs-sync --connect ADDR (--set-file PATH | --range N [--drop K])
//!          [--store NAME] [--pipeline L|auto] [--protocol V]
//!          [--since EPOCH | --epoch-cache FILE]
//!          [--retry N [--retry-base-ms MS]]
//!          [--d D] [--seed S] [--quiet]
//! ```
//!
//! Reconciles the local set against a `pbs-syncd` server: learns `A△B`,
//! pushes `A \ B` to the server, and prints what the wire carried. With
//! `--range N --drop K` the local set is the server's `--range N` demo set
//! minus its first `K` elements — an instant end-to-end smoke test.
//! `--store NAME` addresses one of a multi-store server's named sets;
//! `--pipeline L` packs `L` protocol rounds into each round trip, and
//! `--pipeline auto` lets the session resize the depth per trip from the
//! previous trip's verification rate (store routing needs v2, auto runs
//! fine anywhere).
//!
//! `--since EPOCH` asks a v3 server for a **delta subscription**: if the
//! store's changelog still covers that epoch the server streams exactly
//! the changes since it instead of reconciling. `--epoch-cache FILE`
//! automates the epoch bookkeeping: the file (one per store) holds the
//! epoch of the previous sync; it is read as `--since` and rewritten with
//! the new baseline after every successful sync — so the first run is a
//! full reconciliation and every later run a delta. The cache write is
//! atomic (temp file + rename): a crash mid-write can never leave a
//! corrupt baseline that wedges the next `--since`.
//!
//! `--retry N` rides out transient connect/IO failures (a restarting
//! server, a reset connection) with up to `N` attempts under exponential
//! backoff + jitter, starting from `--retry-base-ms` (default 100).
//! Protocol errors never retry.
//!
//! `--follow` keeps the connection open as a **live subscription**: after
//! establishing an epoch baseline (from `--since`/`--epoch-cache`, or by
//! running one full sync first), every further store mutation the server
//! commits is pushed down and printed as it happens, one line per delta
//! stream; the epoch cache (when configured) is rewritten for the
//! baseline and then *before* each delta is printed, so a follow
//! interrupted at any instant — even right as the server closes after a
//! final delta — resumes exactly where it stopped.
//! The process exits 0 when the server closes the stream (shutdown) and
//! non-zero when the subscription fails or is evicted.

use pbs_net::client::{sync_with_retry, ClientConfig, Pipeline, RetryPolicy, SyncClient};
use pbs_net::setio;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    connect: String,
    set_file: Option<PathBuf>,
    range: Option<usize>,
    drop: usize,
    store: String,
    pipeline: u32,
    pipeline_auto: bool,
    protocol: Option<u16>,
    since: Option<u64>,
    epoch_cache: Option<PathBuf>,
    retry: u32,
    retry_base_ms: u64,
    d: Option<u64>,
    seed: u64,
    quiet: bool,
    follow: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pbs-sync --connect ADDR (--set-file PATH | --range N [--drop K]) \
         [--store NAME] [--pipeline L|auto] [--protocol V] \
         [--since EPOCH | --epoch-cache FILE] [--follow] \
         [--retry N [--retry-base-ms MS]] \
         [--d D] [--seed S] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: String::new(),
        set_file: None,
        range: None,
        drop: 0,
        store: String::new(),
        pipeline: 1,
        pipeline_auto: false,
        protocol: None,
        since: None,
        epoch_cache: None,
        retry: 1,
        retry_base_ms: 100,
        d: None,
        seed: 0xA11CE,
        quiet: false,
        follow: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--connect" => args.connect = value(),
            "--set-file" => args.set_file = Some(PathBuf::from(value())),
            "--range" => args.range = value().parse().ok(),
            "--drop" => args.drop = value().parse().unwrap_or(0),
            "--store" => args.store = value(),
            "--pipeline" => {
                let v = value();
                if v == "auto" {
                    args.pipeline_auto = true;
                } else {
                    args.pipeline = v.parse().unwrap_or(1);
                }
            }
            "--protocol" => args.protocol = value().parse().ok(),
            "--since" => args.since = value().parse().ok(),
            "--epoch-cache" => args.epoch_cache = Some(PathBuf::from(value())),
            "--retry" => args.retry = value().parse().unwrap_or(1),
            "--retry-base-ms" => args.retry_base_ms = value().parse().unwrap_or(100),
            "--d" => args.d = value().parse().ok(),
            "--seed" => args.seed = value().parse().unwrap_or(0xA11CE),
            "--quiet" => args.quiet = true,
            "--follow" => args.follow = true,
            _ => usage(),
        }
    }
    if args.connect.is_empty() {
        usage();
    }
    args
}

/// Read a cached epoch: a file holding one decimal epoch number. A missing
/// or unparseable file means "no baseline yet" — the sync runs in full.
fn read_epoch_cache(path: &std::path::Path) -> Option<u64> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Persist the epoch baseline (if a cache is configured) — atomically, so
/// a crash mid-write can never leave a torn baseline.
fn write_epoch_cache(args: &Args, epoch: u64) {
    if let Some(path) = &args.epoch_cache {
        if let Err(e) = setio::write_file_atomic(path, format!("{epoch}\n").as_bytes()) {
            eprintln!("pbs-sync: cannot write {}: {e}", path.display());
        }
    }
}

/// `--follow`: establish an epoch baseline, then stream pushed deltas to
/// stdout until the server closes the subscription. Never returns.
fn follow(args: &Args, set: &[u64], config: &ClientConfig, policy: &RetryPolicy) -> ! {
    let baseline = match config.delta_epoch {
        Some(epoch) => epoch,
        None => {
            // No cached epoch yet: one full sync establishes the baseline
            // the subscription resumes from.
            let (report, _) =
                sync_with_retry(&args.connect, set, config, policy).unwrap_or_else(|e| {
                    eprintln!("pbs-sync: {e}");
                    std::process::exit(1);
                });
            let Some(epoch) = report.epoch else {
                eprintln!("pbs-sync: server keeps no epochs for this store; cannot --follow");
                std::process::exit(1);
            };
            // The baseline is durable state: persist it before announcing
            // it, so a crash right here resumes as a delta, not a full
            // resync.
            write_epoch_cache(args, epoch);
            println!(
                "pbs-sync: baseline sync: |A△B| = {}, epoch {epoch}",
                report.recovered.len()
            );
            epoch
        }
    };

    let client = SyncClient::connect(&args.connect)
        .unwrap_or_else(|e| {
            eprintln!("pbs-sync: {e}");
            std::process::exit(1);
        })
        .config(config.clone());
    let subscription = client.subscribe(baseline).unwrap_or_else(|e| {
        eprintln!("pbs-sync: {e}");
        std::process::exit(1);
    });
    println!("pbs-sync: following from epoch {baseline}");
    for delta in subscription {
        let delta = delta.unwrap_or_else(|e| {
            eprintln!("pbs-sync: subscription lost: {e}");
            std::process::exit(1);
        });
        // Flush the cache before acknowledging the delta on stdout: if the
        // server (or this process) dies between the stream ending and the
        // rewrite, the cache must already hold the epoch we consumed —
        // otherwise the next run re-fetches (or worse, full-resyncs) work
        // it already applied.
        write_epoch_cache(args, delta.to_epoch);
        println!(
            "pbs-sync: epoch {} → {} in {} batches (+{} −{} net)",
            delta.from_epoch,
            delta.to_epoch,
            delta.batches,
            delta.added.len(),
            delta.removed.len(),
        );
        if !args.quiet {
            for e in delta.added.iter().take(25) {
                println!("  +{e}");
            }
            for e in delta.removed.iter().take(25) {
                println!("  -{e}");
            }
        }
    }
    println!("pbs-sync: stream closed by server");
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    let set = match (&args.set_file, args.range) {
        (Some(path), None) => setio::load_set(path).unwrap_or_else(|e| {
            eprintln!("pbs-sync: cannot load {}: {e}", path.display());
            std::process::exit(1);
        }),
        (None, Some(n)) => {
            let full = setio::demo_set(n, 0xB0B);
            full[args.drop.min(full.len())..].to_vec()
        }
        _ => usage(),
    };

    let delta_epoch = args
        .since
        .or_else(|| args.epoch_cache.as_deref().and_then(read_epoch_cache));
    let mut builder = ClientConfig::builder()
        .seed(args.seed)
        .store(args.store.clone())
        .pipeline(if args.pipeline_auto {
            Pipeline::Auto
        } else {
            Pipeline::Depth(args.pipeline)
        });
    if let Some(d) = args.d {
        builder = builder.known_d(d);
    }
    if let Some(epoch) = delta_epoch {
        builder = builder.delta_epoch(epoch);
    }
    if let Some(v) = args.protocol {
        builder = builder.protocol_version(v);
    }
    let config = builder.build();
    let policy = RetryPolicy {
        attempts: args.retry.max(1),
        base_delay: Duration::from_millis(args.retry_base_ms.max(1)),
        ..RetryPolicy::default()
    };

    if args.follow {
        follow(&args, &set, &config, &policy);
    }

    let (report, attempts) =
        sync_with_retry(&args.connect, &set, &config, &policy).unwrap_or_else(|e| {
            eprintln!("pbs-sync: {e}");
            std::process::exit(1);
        });
    if attempts > 1 {
        println!(
            "pbs-sync: succeeded on attempt {attempts}/{}",
            policy.attempts
        );
    }

    // Persist the new epoch baseline for the next run's delta subscription
    // — atomically, so a crash mid-write can never leave a torn baseline.
    if let (Some(path), Some(epoch)) = (&args.epoch_cache, report.epoch) {
        if let Err(e) = setio::write_file_atomic(path, format!("{epoch}\n").as_bytes()) {
            eprintln!("pbs-sync: cannot write {}: {e}", path.display());
        }
    }

    if let Some(delta) = &report.delta {
        println!(
            "pbs-sync: {}{} delta subscription: epoch {} → {} in {} batches \
             (+{} −{} net)",
            args.connect,
            if args.store.is_empty() {
                String::new()
            } else {
                format!(" store {:?}", args.store)
            },
            delta.from_epoch,
            delta.to_epoch,
            delta.batches,
            delta.added.len(),
            delta.removed.len(),
        );
        println!(
            "pbs-sync: wire: {} B sent / {} B received over {}+{} frames (v{})",
            report.bytes_sent,
            report.bytes_received,
            report.frames_sent,
            report.frames_received,
            report.negotiated_version,
        );
        if !args.quiet {
            for e in delta.added.iter().take(25) {
                println!("  +{e}");
            }
            for e in delta.removed.iter().take(25) {
                println!("  -{e}");
            }
            let more = (delta.added.len() + delta.removed.len()).saturating_sub(50);
            if more > 0 {
                println!("  … {more} more");
            }
        }
        return;
    }
    if report.delta_fallback {
        println!("pbs-sync: delta epoch not servable; fell back to full reconciliation");
    }
    println!(
        "pbs-sync: {}{} of set {} → |A△B| = {} ({} pushed to the server), \
         {} rounds in {} trips, d_param {}{}, verified: {}",
        args.connect,
        if args.store.is_empty() {
            String::new()
        } else {
            format!(" store {:?}", args.store)
        },
        set.len(),
        report.recovered.len(),
        report.pushed.len(),
        report.rounds,
        report.round_trips,
        report.d_param,
        report
            .estimated_d
            .map(|d| format!(" (d̂ = {d:.1})"))
            .unwrap_or_default(),
        report.verified,
    );
    if let Some(epoch) = report.epoch {
        println!("pbs-sync: epoch baseline {epoch} established");
    }
    println!(
        "pbs-sync: wire: {} B sent / {} B received over {}+{} frames (v{})",
        report.bytes_sent,
        report.bytes_received,
        report.frames_sent,
        report.frames_received,
        report.negotiated_version,
    );
    if !args.quiet {
        let mut diff = report.recovered.clone();
        diff.sort_unstable();
        for e in diff.iter().take(50) {
            println!("  {e}");
        }
        if diff.len() > 50 {
            println!("  … {} more", diff.len() - 50);
        }
    }
    if !report.verified {
        std::process::exit(3);
    }
}
