//! The framed wire protocol: length-prefixed, CRC-checked, versioned frames
//! layered over the payload encoders of [`pbs_core::wire`].
//!
//! On the wire every frame is
//!
//! ```text
//! | len: u32 LE | crc: u32 LE | type: u8 | payload: (len - 1) bytes |
//! ```
//!
//! where `len` counts the type byte plus the payload, `crc` is the CRC-32
//! of exactly those `len` bytes, and `len` is bounded by the receiver's
//! configured maximum frame size — checked *before* any allocation, so a
//! hostile length prefix cannot reserve memory. The full format, handshake
//! and error semantics are specified in `docs/WIRE.md`.

use crate::crc::crc32;
use crate::{FrameError, NetError};
use pbs_core::messages::{GroupReport, GroupSketch};
use pbs_core::wire::{self, WireError};
use pbs_core::PbsConfig;
use std::io::{Read, Write};

/// Protocol version this build speaks. The handshake negotiates down to
/// `min(client, server)`; version 0 is invalid.
///
/// * **v1** — the PR-3 protocol: one anonymous store, one round per
///   `Sketches` frame.
/// * **v2** — adds a store name to `Hello` (multi-set routing) and
///   pipelined rounds (one `Sketches` frame may carry several consecutive
///   rounds' layers). The `Hello` payload is self-describing: its
///   `version` field governs whether the store-name field follows, so
///   both encodings coexist on one port.
/// * **v3** — adds the delta-subscription path: a `Hello` may carry the
///   client's last-known store epoch ([`Hello::delta_epoch`]); when the
///   server's changelog still covers it, the session short-circuits
///   reconciliation entirely and streams [`Frame::DeltaBatch`] frames
///   ending in [`Frame::DeltaDone`], or answers
///   [`Frame::FullResyncRequired`] and falls back to the classic session.
///   On epoch-capable stores the final `Done` ack is replaced by a
///   `DeltaDone` carrying the new epoch baseline. v3 also carries the
///   *live* subscription frames: after a `DeltaDone` the client may send
///   [`Frame::Subscribe`] to hold the connection open and have the server
///   push delta bursts on every store mutation, with [`Frame::Ping`] /
///   [`Frame::Pong`] keepalives while the stream is idle.
pub const PROTOCOL_VERSION: u16 = 3;

/// Largest store name (in bytes) a `Hello` may carry or a server accepts.
pub const MAX_STORE_NAME: usize = 64;

/// Magic number opening every `Hello` payload (`"PBS1"` little-endian).
pub const HELLO_MAGIC: u32 = 0x3153_4250;

/// Default cap on `len` (type byte + payload): 16 MiB. Generous — the
/// largest routine frame is one round's sketch batch, tens of kilobytes at
/// `d = 1000` — while still bounding what a hostile peer can make the
/// receiver buffer.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 24;

/// Bytes of framing added around every frame body: length prefix + CRC.
pub const FRAME_OVERHEAD: u64 = 8;

/// Fixed bytes of a [`Frame::DeltaBatch`] body before the element words:
/// type byte + epoch + element width + the two element counts.
pub const DELTA_BATCH_HEADER: u32 = 1 + 8 + 1 + 4 + 4;

/// Byte width the elements of a delta chunk are packed at: the smallest
/// width that fits the largest element present (1..=8). Elements in a
/// 32-bit universe cost 4 bytes on the wire, not 8 — the delta stream's
/// dominant term, so it is packed where the fixed-width reconciliation
/// frames are not.
pub fn delta_element_width(added: &[u64], removed: &[u64]) -> u8 {
    let max = added.iter().chain(removed).copied().max().unwrap_or(0);
    ((64 - max.leading_zeros() as usize).div_ceil(8)).max(1) as u8
}

/// Most elements (added plus removed) packed into one [`Frame::DeltaBatch`]
/// before a changelog batch is split across frames: what fits under
/// `max_frame`, additionally clamped to 2¹⁶ elements so a huge batch is
/// streamed in bounded chunks rather than materialized as one frame.
pub fn delta_chunk_capacity(max_frame: u32) -> usize {
    const CHUNK_CAP: usize = 1 << 16;
    ((max_frame.saturating_sub(DELTA_BATCH_HEADER) / 8) as usize).clamp(1, CHUNK_CAP)
}

/// Split one changelog batch into [`Frame::DeltaBatch`] frames of at most
/// `capacity` elements each (the chunking rule of `docs/WIRE.md`): the add
/// list ships first, then the remove list, a frame may carry the tail of
/// one and the head of the other, and every chunk repeats the batch's
/// epoch. Chunks never span two changelog batches — each batch's epoch
/// stamp is preserved. An empty (never effective) batch still produces one
/// empty frame.
pub fn delta_batch_frames(
    epoch: u64,
    added: &[u64],
    removed: &[u64],
    capacity: usize,
) -> Vec<Frame> {
    let capacity = capacity.max(1);
    let mut frames = Vec::new();
    let (mut added, mut removed) = (added, removed);
    loop {
        let take_a = added.len().min(capacity);
        let (chunk_a, rest_a) = added.split_at(take_a);
        let take_r = removed.len().min(capacity - take_a);
        let (chunk_r, rest_r) = removed.split_at(take_r);
        (added, removed) = (rest_a, rest_r);
        frames.push(Frame::DeltaBatch {
            epoch,
            added: chunk_a.to_vec(),
            removed: chunk_r.to_vec(),
        });
        if added.is_empty() && removed.is_empty() {
            break;
        }
    }
    frames
}

/// Machine-readable cause carried by an [`Frame::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The `Hello` magic was wrong — not this protocol.
    BadMagic,
    /// No mutually supported protocol version.
    Version,
    /// A handshake or estimator parameter was rejected.
    BadConfig,
    /// A frame arrived that the peer's state machine cannot accept here.
    Protocol,
    /// The server's per-connection round cap was exceeded.
    RoundLimit,
    /// A payload failed to decode.
    Decode,
    /// The sender hit an internal failure (deadline, resource limits, …).
    Internal,
    /// The `Hello` named a store this server does not serve (v2).
    UnknownStore,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadMagic => 1,
            ErrorCode::Version => 2,
            ErrorCode::BadConfig => 3,
            ErrorCode::Protocol => 4,
            ErrorCode::RoundLimit => 5,
            ErrorCode::Decode => 6,
            ErrorCode::Internal => 7,
            ErrorCode::UnknownStore => 8,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::Version,
            3 => ErrorCode::BadConfig,
            4 => ErrorCode::Protocol,
            5 => ErrorCode::RoundLimit,
            6 => ErrorCode::Decode,
            7 => ErrorCode::Internal,
            8 => ErrorCode::UnknownStore,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::Version => "version-unsupported",
            ErrorCode::BadConfig => "bad-config",
            ErrorCode::Protocol => "protocol-violation",
            ErrorCode::RoundLimit => "round-limit",
            ErrorCode::Decode => "decode-failure",
            ErrorCode::Internal => "internal",
            ErrorCode::UnknownStore => "unknown-store",
        };
        f.write_str(name)
    }
}

/// The handshake frame both parties open with. The client proposes its
/// protocol version and the full reconciliation configuration; the server
/// echoes the configuration with the negotiated version (or answers with
/// [`Frame::Error`]). Carrying the whole [`PbsConfig`] plus the seed means
/// the two state machines derive every hash function identically without
/// any further agreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Proposed (client) or negotiated (server) protocol version. Also
    /// governs the payload shape: the store-name field exists only when
    /// `version >= 2`.
    pub version: u16,
    /// `log|U|`, the element signature width.
    pub universe_bits: u8,
    /// δ, average distinct elements per group.
    pub delta: u32,
    /// Target round count for the parameter optimizer.
    pub target_rounds: u32,
    /// Hard cap on executed rounds the client intends to respect.
    pub max_rounds: u32,
    /// Target overall success probability `p0`.
    pub target_success: f64,
    /// Number of ToW sketches used when `d` must be estimated.
    pub estimator_sketches: u32,
    /// Base seed every hash function on both sides derives from.
    pub seed: u64,
    /// Difference cardinality known a priori; `0` means unknown, and an
    /// estimator exchange follows the handshake.
    pub known_d: u64,
    /// Name of the server-side store to reconcile against (v2; the empty
    /// string is the default store, and the only thing a v1 `Hello` can
    /// address). At most [`MAX_STORE_NAME`] bytes of UTF-8.
    pub store: String,
    /// Pipelined layers per sketch frame: the depth the client *requests*,
    /// the depth the server's reply *grants* (`min(requested,
    /// max_pipeline_depth)`) — negotiated exactly like `version`, so a
    /// client never discovers the server's cap by having a mid-session
    /// frame refused. v2 only; 0 is normalized to 1.
    pub pipeline: u8,
    /// The store epoch this client last synced at (v3). `Some(e)` asks the
    /// server for a delta subscription: if the named store's changelog
    /// still reaches back to `e`, the server streams the changes since `e`
    /// instead of running a reconciliation; otherwise it answers
    /// [`Frame::FullResyncRequired`] and the session proceeds classically.
    /// `None` (the only thing a pre-v3 `Hello` can say) requests a normal
    /// reconciliation session.
    pub delta_epoch: Option<u64>,
}

impl Hello {
    /// Build the client's opening `Hello` from a [`PbsConfig`], addressing
    /// the default store with unpipelined rounds.
    pub fn from_config(cfg: &PbsConfig, seed: u64, known_d: u64) -> Self {
        Hello {
            version: PROTOCOL_VERSION,
            universe_bits: cfg.universe_bits as u8,
            delta: cfg.delta as u32,
            target_rounds: cfg.target_rounds,
            max_rounds: cfg.max_rounds,
            target_success: cfg.target_success,
            estimator_sketches: cfg.estimator_sketches as u32,
            seed,
            known_d,
            store: String::new(),
            pipeline: 1,
            delta_epoch: None,
        }
    }

    /// Address a named store (requires a v2 session).
    pub fn with_store(mut self, store: impl Into<String>) -> Self {
        self.store = store.into();
        self
    }

    /// Request a pipelined-layer depth (requires a v2 session; the server
    /// grants at most its own cap).
    pub fn with_pipeline(mut self, layers: u32) -> Self {
        self.pipeline = layers.clamp(1, u8::MAX as u32) as u8;
        self
    }

    /// Request a delta subscription from the given last-known store epoch
    /// (requires a v3 session).
    pub fn with_delta_epoch(mut self, epoch: u64) -> Self {
        self.delta_epoch = Some(epoch);
        self
    }

    /// Reconstruct the [`PbsConfig`] both parties must instantiate.
    /// Rejects values outside the ranges [`PbsConfig`]'s setters enforce,
    /// so a hostile handshake cannot reach the panicking constructors.
    pub fn config(&self) -> Result<PbsConfig, String> {
        if !(8..=64).contains(&(self.universe_bits as u32)) {
            return Err(format!(
                "universe_bits {} outside 8..=64",
                self.universe_bits
            ));
        }
        if self.delta == 0 {
            return Err("delta must be at least 1".into());
        }
        // The estimator exchange costs O(|B| · sketches) hashing on the
        // server, inside one request — an unbounded count would let a
        // single cheap connection pin a worker for minutes. The paper uses
        // 128 sketches; 4096 is far beyond any useful accuracy.
        if !(1..=4096).contains(&self.estimator_sketches) {
            return Err(format!(
                "estimator_sketches {} outside 1..=4096",
                self.estimator_sketches
            ));
        }
        if !(self.target_success.is_finite() && (0.0..1.0).contains(&self.target_success)) {
            return Err(format!(
                "target_success {} not in [0, 1)",
                self.target_success
            ));
        }
        if self.target_rounds == 0 || self.max_rounds == 0 {
            return Err("round counts must be at least 1".into());
        }
        Ok(PbsConfig {
            universe_bits: self.universe_bits as u32,
            delta: self.delta as usize,
            target_rounds: self.target_rounds,
            target_success: self.target_success,
            max_rounds: self.max_rounds,
            estimator_sketches: self.estimator_sketches as usize,
        })
    }
}

/// The two halves of the estimator exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorMsg {
    /// Client → server: the serialized ToW bank
    /// ([`estimator::TowEstimator::to_bytes`]) of the client's set.
    TowBank(Vec<u8>),
    /// Server → client: the difference cardinality the server derived (the
    /// γ-inflated parameterization `d_param` plus the raw estimate `d_hat`).
    Estimate {
        /// `⌈γ · d̂⌉`, what both sides parameterize PBS with.
        d_param: u64,
        /// The raw ToW estimate, for reporting.
        d_hat: f64,
    },
}

/// One protocol frame. See the module docs for the byte layout and
/// `docs/WIRE.md` for the full state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake (both directions).
    Hello(Hello),
    /// Cardinality-estimator exchange (either half).
    EstimatorExchange(EstimatorMsg),
    /// Alice → Bob: one round's sketch batch. `m` is the field degree the
    /// syndrome words are packed with.
    Sketches {
        /// Field degree `log₂(n+1)` used to pack the syndromes.
        m: u32,
        /// The per-group sketches of this round.
        batch: Vec<GroupSketch>,
    },
    /// Bob → Alice: the round's reports.
    Reports(Vec<GroupReport>),
    /// Final transfer / acknowledgement. From the client: the elements the
    /// server's set is missing (`A \ B`). From the server: an empty ack.
    Done(Vec<u64>),
    /// Fatal error; the sender closes the connection after this frame.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail (may be empty; capped at 64 KiB on decode).
        message: String,
    },
    /// Server → client (v3): one chunk of the delta stream — the effective
    /// add/remove lists of one changelog batch. A batch larger than the
    /// frame cap is split across several `DeltaBatch` frames carrying the
    /// same `epoch`; the epoch is *reached* only once the last chunk of the
    /// batch (and authoritatively, the closing [`Frame::DeltaDone`]) has
    /// been applied.
    DeltaBatch {
        /// The epoch the originating changelog batch produced.
        epoch: u64,
        /// Elements the batch inserted.
        added: Vec<u64>,
        /// Elements the batch removed.
        removed: Vec<u64>,
    },
    /// Server → client (v3): end of a delta stream, or — on an
    /// epoch-capable store — the final transfer ack, in either case
    /// carrying the epoch baseline the client now stands at.
    DeltaDone {
        /// The client's new epoch baseline.
        epoch: u64,
    },
    /// Server → client (v3): the requested [`Hello::delta_epoch`] cannot be
    /// served incrementally (changelog trimmed past it, epoch from this
    /// store's future, or a store without a changelog). Not an error: the
    /// session continues with the classic reconciliation, which
    /// re-establishes an epoch baseline. Sent to a live subscriber it means
    /// the changelog can no longer cover the subscriber's epoch (slow
    /// consumer evicted, or the log was trimmed under it); the server
    /// closes the connection after this frame.
    FullResyncRequired {
        /// The store's current epoch (0 when the store keeps no epochs).
        epoch: u64,
    },
    /// Client → server (v3): after a `DeltaDone`, hold the connection open
    /// as a live subscription — the server pushes a
    /// `DeltaBatch*`/`DeltaDone` burst on every mutation of the store past
    /// `epoch`.
    Subscribe {
        /// The epoch baseline the client stands at (normally the epoch of
        /// the `DeltaDone` it just received).
        epoch: u64,
    },
    /// Server → client (v3): keepalive probe on an idle subscription. The
    /// client answers with a [`Frame::Pong`] echoing the nonce.
    Ping {
        /// Opaque value the matching `Pong` must echo.
        nonce: u64,
    },
    /// Client → server (v3): keepalive answer to a [`Frame::Ping`].
    Pong {
        /// The nonce of the `Ping` being answered.
        nonce: u64,
    },
}

const TYPE_HELLO: u8 = 1;
const TYPE_ESTIMATOR: u8 = 2;
const TYPE_SKETCHES: u8 = 3;
const TYPE_REPORTS: u8 = 4;
const TYPE_DONE: u8 = 5;
const TYPE_ERROR: u8 = 6;
const TYPE_DELTA_BATCH: u8 = 7;
const TYPE_DELTA_DONE: u8 = 8;
const TYPE_FULL_RESYNC: u8 = 9;
const TYPE_SUBSCRIBE: u8 = 10;
const TYPE_PING: u8 = 11;
const TYPE_PONG: u8 = 12;

const EST_KIND_BANK: u8 = 1;
const EST_KIND_ESTIMATE: u8 = 2;

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], FrameError> {
    if buf.len() < n {
        return Err(FrameError::Payload(WireError::Truncated));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, FrameError> {
    Ok(take(buf, 1)?[0])
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, FrameError> {
    Ok(u16::from_le_bytes(take(buf, 2)?.try_into().unwrap()))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, FrameError> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, FrameError> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

impl Frame {
    /// The frame's type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello(_) => TYPE_HELLO,
            Frame::EstimatorExchange(_) => TYPE_ESTIMATOR,
            Frame::Sketches { .. } => TYPE_SKETCHES,
            Frame::Reports(_) => TYPE_REPORTS,
            Frame::Done(_) => TYPE_DONE,
            Frame::Error { .. } => TYPE_ERROR,
            Frame::DeltaBatch { .. } => TYPE_DELTA_BATCH,
            Frame::DeltaDone { .. } => TYPE_DELTA_DONE,
            Frame::FullResyncRequired { .. } => TYPE_FULL_RESYNC,
            Frame::Subscribe { .. } => TYPE_SUBSCRIBE,
            Frame::Ping { .. } => TYPE_PING,
            Frame::Pong { .. } => TYPE_PONG,
        }
    }

    /// Serialize the frame *body* — type byte followed by the payload — the
    /// exact bytes the frame CRC covers.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = vec![self.type_byte()];
        match self {
            Frame::Hello(h) => {
                out.extend_from_slice(&HELLO_MAGIC.to_le_bytes());
                out.extend_from_slice(&h.version.to_le_bytes());
                out.push(h.universe_bits);
                out.extend_from_slice(&h.delta.to_le_bytes());
                out.extend_from_slice(&h.target_rounds.to_le_bytes());
                out.extend_from_slice(&h.max_rounds.to_le_bytes());
                out.extend_from_slice(&h.target_success.to_bits().to_le_bytes());
                out.extend_from_slice(&h.estimator_sketches.to_le_bytes());
                out.extend_from_slice(&h.seed.to_le_bytes());
                out.extend_from_slice(&h.known_d.to_le_bytes());
                // v1 peers expect the payload to end here; the store-name
                // and pipeline fields exist only in the v2 shape, and the
                // delta-epoch field only in the v3 shape.
                if h.version >= 2 {
                    let name = &h.store.as_bytes()[..h.store.len().min(MAX_STORE_NAME)];
                    out.push(name.len() as u8);
                    out.extend_from_slice(name);
                    out.push(h.pipeline);
                }
                if h.version >= 3 {
                    match h.delta_epoch {
                        Some(epoch) => {
                            out.push(1);
                            out.extend_from_slice(&epoch.to_le_bytes());
                        }
                        None => out.push(0),
                    }
                }
            }
            Frame::EstimatorExchange(EstimatorMsg::TowBank(bank)) => {
                out.push(EST_KIND_BANK);
                out.extend_from_slice(bank);
            }
            Frame::EstimatorExchange(EstimatorMsg::Estimate { d_param, d_hat }) => {
                out.push(EST_KIND_ESTIMATE);
                out.extend_from_slice(&d_param.to_le_bytes());
                out.extend_from_slice(&d_hat.to_bits().to_le_bytes());
            }
            Frame::Sketches { m, batch } => {
                out.extend_from_slice(&wire::encode_sketches(batch, *m));
            }
            Frame::Reports(reports) => {
                out.extend_from_slice(&wire::encode_reports(reports));
            }
            Frame::Done(elements) => {
                out.extend_from_slice(&(elements.len() as u32).to_le_bytes());
                for &e in elements {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
            Frame::Error { code, message } => {
                out.push(code.to_u8());
                let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
                out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
                out.extend_from_slice(msg);
            }
            Frame::DeltaBatch {
                epoch,
                added,
                removed,
            } => {
                // Elements are packed at the width of the largest one, a
                // self-describing per-chunk choice (the decoder widens back
                // to u64 from the width byte).
                let width = delta_element_width(added, removed) as usize;
                out.extend_from_slice(&epoch.to_le_bytes());
                out.push(width as u8);
                out.extend_from_slice(&(added.len() as u32).to_le_bytes());
                out.extend_from_slice(&(removed.len() as u32).to_le_bytes());
                for &e in added.iter().chain(removed) {
                    out.extend_from_slice(&e.to_le_bytes()[..width]);
                }
            }
            Frame::DeltaDone { epoch }
            | Frame::FullResyncRequired { epoch }
            | Frame::Subscribe { epoch } => {
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Frame::Ping { nonce } | Frame::Pong { nonce } => {
                out.extend_from_slice(&nonce.to_le_bytes());
            }
        }
        out
    }

    /// Decode a frame body (type byte + payload). Never panics on hostile
    /// input: every malformed shape maps to a [`FrameError`].
    pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let mut buf = body;
        let ty = take_u8(&mut buf)?;
        match ty {
            TYPE_HELLO => {
                let magic = take_u32(&mut buf)?;
                if magic != HELLO_MAGIC {
                    return Err(FrameError::BadMagic(magic));
                }
                let mut hello = Hello {
                    version: take_u16(&mut buf)?,
                    universe_bits: take_u8(&mut buf)?,
                    delta: take_u32(&mut buf)?,
                    target_rounds: take_u32(&mut buf)?,
                    max_rounds: take_u32(&mut buf)?,
                    target_success: f64::from_bits(take_u64(&mut buf)?),
                    estimator_sketches: take_u32(&mut buf)?,
                    seed: take_u64(&mut buf)?,
                    known_d: take_u64(&mut buf)?,
                    store: String::new(),
                    pipeline: 1,
                    delta_epoch: None,
                };
                if hello.version >= 2 {
                    let len = take_u8(&mut buf)? as usize;
                    if len > MAX_STORE_NAME {
                        return Err(FrameError::Payload(WireError::Truncated));
                    }
                    let raw = take(&mut buf, len)?;
                    hello.store = String::from_utf8_lossy(raw).into_owned();
                    hello.pipeline = take_u8(&mut buf)?.max(1);
                }
                if hello.version >= 3 {
                    match take_u8(&mut buf)? {
                        0 => {}
                        1 => hello.delta_epoch = Some(take_u64(&mut buf)?),
                        other => return Err(FrameError::Payload(WireError::BadTag(other))),
                    }
                }
                if !buf.is_empty() {
                    return Err(FrameError::Payload(WireError::Truncated));
                }
                Ok(Frame::Hello(hello))
            }
            TYPE_ESTIMATOR => match take_u8(&mut buf)? {
                EST_KIND_BANK => Ok(Frame::EstimatorExchange(EstimatorMsg::TowBank(
                    buf.to_vec(),
                ))),
                EST_KIND_ESTIMATE => {
                    let d_param = take_u64(&mut buf)?;
                    let d_hat = f64::from_bits(take_u64(&mut buf)?);
                    if !buf.is_empty() {
                        return Err(FrameError::Payload(WireError::Truncated));
                    }
                    Ok(Frame::EstimatorExchange(EstimatorMsg::Estimate {
                        d_param,
                        d_hat,
                    }))
                }
                other => Err(FrameError::Payload(WireError::BadTag(other))),
            },
            TYPE_SKETCHES => {
                let (m, batch) = wire::decode_sketches_with_m(buf).map_err(FrameError::Payload)?;
                Ok(Frame::Sketches { m, batch })
            }
            TYPE_REPORTS => Ok(Frame::Reports(
                wire::decode_reports(buf).map_err(FrameError::Payload)?,
            )),
            TYPE_DONE => {
                let count = take_u32(&mut buf)? as usize;
                if buf.len() != count * 8 {
                    return Err(FrameError::Payload(WireError::Truncated));
                }
                let elements = buf
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                Ok(Frame::Done(elements))
            }
            TYPE_ERROR => {
                let code = ErrorCode::from_u8(take_u8(&mut buf)?)
                    .ok_or(FrameError::Payload(WireError::BadTag(0)))?;
                let len = take_u16(&mut buf)? as usize;
                let msg = take(&mut buf, len)?;
                if !buf.is_empty() {
                    return Err(FrameError::Payload(WireError::Truncated));
                }
                Ok(Frame::Error {
                    code,
                    message: String::from_utf8_lossy(msg).into_owned(),
                })
            }
            TYPE_DELTA_BATCH => {
                let epoch = take_u64(&mut buf)?;
                let width = take_u8(&mut buf)? as usize;
                if !(1..=8).contains(&width) {
                    return Err(FrameError::Payload(WireError::BadTag(width as u8)));
                }
                let added_count = take_u32(&mut buf)? as usize;
                let removed_count = take_u32(&mut buf)? as usize;
                // Exact-length check before any allocation: the counts must
                // describe precisely the bytes present.
                if buf.len() != (added_count + removed_count) * width {
                    return Err(FrameError::Payload(WireError::Truncated));
                }
                let mut words = buf.chunks_exact(width).map(|c| {
                    let mut bytes = [0u8; 8];
                    bytes[..width].copy_from_slice(c);
                    u64::from_le_bytes(bytes)
                });
                let added: Vec<u64> = words.by_ref().take(added_count).collect();
                let removed: Vec<u64> = words.collect();
                Ok(Frame::DeltaBatch {
                    epoch,
                    added,
                    removed,
                })
            }
            TYPE_DELTA_DONE | TYPE_FULL_RESYNC | TYPE_SUBSCRIBE | TYPE_PING | TYPE_PONG => {
                let word = take_u64(&mut buf)?;
                if !buf.is_empty() {
                    return Err(FrameError::Payload(WireError::Truncated));
                }
                Ok(match ty {
                    TYPE_DELTA_DONE => Frame::DeltaDone { epoch: word },
                    TYPE_FULL_RESYNC => Frame::FullResyncRequired { epoch: word },
                    TYPE_SUBSCRIBE => Frame::Subscribe { epoch: word },
                    TYPE_PING => Frame::Ping { nonce: word },
                    _ => Frame::Pong { nonce: word },
                })
            }
            other => Err(FrameError::BadType(other)),
        }
    }

    /// Total size this frame occupies on the wire, including the
    /// length/CRC framing.
    pub fn wire_len(&self) -> u64 {
        FRAME_OVERHEAD + self.encode_body().len() as u64
    }
}

/// Write one frame. Returns the number of bytes put on the wire. Fails with
/// [`FrameError::TooLarge`] (before writing anything) if the body exceeds
/// `max_frame`.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame, max_frame: u32) -> Result<u64, NetError> {
    let body = frame.encode_body();
    if body.len() as u64 > max_frame as u64 {
        return Err(NetError::Frame(FrameError::TooLarge {
            len: body.len().min(u32::MAX as usize) as u32,
            max: max_frame,
        }));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(&body).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(FRAME_OVERHEAD + body.len() as u64)
}

/// Read one frame. Returns the frame and the number of wire bytes it
/// consumed. The length prefix is validated against `max_frame` *before*
/// the body buffer is allocated, and the CRC is verified before the payload
/// decoder runs.
pub fn read_frame<R: Read>(r: &mut R, max_frame: u32) -> Result<(Frame, u64), NetError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len == 0 {
        return Err(NetError::Frame(FrameError::BadType(0)));
    }
    if len > max_frame {
        return Err(NetError::Frame(FrameError::TooLarge {
            len,
            max: max_frame,
        }));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    if crc32(&body) != crc {
        return Err(NetError::Frame(FrameError::BadCrc));
    }
    let frame = Frame::decode_body(&body).map_err(NetError::Frame)?;
    Ok((frame, FRAME_OVERHEAD + len as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame, max: u32) -> Frame {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, frame, max).expect("write");
        assert_eq!(written, buf.len() as u64);
        assert_eq!(written, frame.wire_len());
        let (back, consumed) = read_frame(&mut buf.as_slice(), max).expect("read");
        assert_eq!(consumed, written);
        back
    }

    #[test]
    fn hello_round_trip() {
        let hello = Hello::from_config(&PbsConfig::default(), 0xDEAD_BEEF, 42)
            .with_store("blocks")
            .with_pipeline(3)
            .with_delta_epoch(77);
        let back = round_trip(&Frame::Hello(hello.clone()), DEFAULT_MAX_FRAME);
        assert_eq!(back, Frame::Hello(hello));
        let Frame::Hello(h) = back else {
            unreachable!()
        };
        assert_eq!(h.config().unwrap(), PbsConfig::default());
        assert_eq!(h.store, "blocks");
        assert_eq!(h.pipeline, 3);
        assert_eq!(h.delta_epoch, Some(77));
    }

    #[test]
    fn v1_hello_has_no_store_field_and_round_trips() {
        let mut hello = Hello::from_config(&PbsConfig::default(), 7, 0);
        hello.version = 1;
        let v1_len = Frame::Hello(hello.clone()).encode_body().len();
        let v3_len = Frame::Hello(Hello::from_config(&PbsConfig::default(), 7, 0))
            .encode_body()
            .len();
        // The v3 shape adds exactly the one-byte length prefix of an empty
        // store name, the pipeline byte and the absent-epoch flag byte.
        assert_eq!(v3_len, v1_len + 3);
        let back = round_trip(&Frame::Hello(hello.clone()), DEFAULT_MAX_FRAME);
        assert_eq!(back, Frame::Hello(hello.clone()));
        // A v1 Hello carrying a (stripped) store name decodes with the
        // store field empty: v1 peers cannot address named stores.
        let named = hello.with_store("ignored");
        let Frame::Hello(h) = round_trip(&Frame::Hello(named), DEFAULT_MAX_FRAME) else {
            unreachable!()
        };
        assert_eq!(h.store, "");
    }

    #[test]
    fn oversized_store_names_are_rejected() {
        let hello = Hello::from_config(&PbsConfig::default(), 7, 0).with_store("s".repeat(80));
        // The encoder truncates to MAX_STORE_NAME…
        let body = Frame::Hello(hello).encode_body();
        let Frame::Hello(h) = Frame::decode_body(&body).unwrap() else {
            unreachable!()
        };
        assert_eq!(h.store.len(), MAX_STORE_NAME);
        // …and the decoder refuses a hand-crafted longer length byte.
        // (The length byte sits before the name, the pipeline byte and the
        // v3 delta-epoch flag byte.)
        let mut forged = body.clone();
        let len_at = body.len() - 3 - MAX_STORE_NAME;
        forged[len_at] = MAX_STORE_NAME as u8 + 1;
        forged.push(b'x');
        assert!(Frame::decode_body(&forged).is_err());
    }

    #[test]
    fn error_and_done_round_trip() {
        let e = Frame::Error {
            code: ErrorCode::RoundLimit,
            message: "too many rounds".into(),
        };
        assert_eq!(round_trip(&e, 1024), e);
        let d = Frame::Done(vec![1, u64::MAX, 7]);
        assert_eq!(round_trip(&d, 1024), d);
    }

    #[test]
    fn oversized_frames_rejected_on_both_sides() {
        let big = Frame::Done((0..100u64).collect());
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &big, 64),
            Err(NetError::Frame(FrameError::TooLarge { .. }))
        ));
        // A hostile length prefix is rejected before any allocation.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Done(vec![]), 1024).unwrap();
        wire[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(NetError::Frame(FrameError::TooLarge { .. }))
        ));
    }

    #[test]
    fn crc_detects_corruption() {
        let frame = Frame::Done(vec![3, 5, 9]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame, 1024).unwrap();
        for i in 8..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            assert!(
                read_frame(&mut bad.as_slice(), 1024).is_err(),
                "corruption at byte {i} undetected"
            );
        }
    }

    #[test]
    fn hello_config_validation_rejects_hostile_values() {
        let mut h = Hello::from_config(&PbsConfig::default(), 1, 0);
        h.delta = 0;
        assert!(h.config().is_err());
        let mut h2 = Hello::from_config(&PbsConfig::default(), 1, 0);
        h2.universe_bits = 70;
        assert!(h2.config().is_err());
        let mut h3 = Hello::from_config(&PbsConfig::default(), 1, 0);
        h3.target_success = f64::NAN;
        assert!(h3.config().is_err());
    }

    #[test]
    fn v2_hello_drops_the_delta_epoch() {
        // A v2-shaped Hello cannot carry an epoch: the field round-trips to
        // None, exactly as the store name does on a v1 shape.
        let mut hello = Hello::from_config(&PbsConfig::default(), 7, 0).with_delta_epoch(42);
        hello.version = 2;
        let Frame::Hello(h) = round_trip(&Frame::Hello(hello), DEFAULT_MAX_FRAME) else {
            unreachable!()
        };
        assert_eq!(h.delta_epoch, None);
    }

    #[test]
    fn delta_frames_round_trip() {
        for frame in [
            Frame::DeltaBatch {
                epoch: u64::MAX,
                added: vec![1, 2, 3],
                removed: vec![9],
            },
            Frame::DeltaBatch {
                epoch: 0,
                added: vec![],
                removed: vec![],
            },
            Frame::DeltaDone { epoch: 17 },
            Frame::FullResyncRequired { epoch: 0 },
        ] {
            assert_eq!(round_trip(&frame, 1024), frame);
        }
        // Forged counts that disagree with the bytes present are refused.
        let body = Frame::DeltaBatch {
            epoch: 3,
            added: vec![5, 6],
            removed: vec![7],
        }
        .encode_body();
        let mut forged = body.clone();
        forged[10] = 200; // added_count (offset 9 is the width byte)
        assert!(Frame::decode_body(&forged).is_err());
        let mut bad_width = body.clone();
        bad_width[9] = 9;
        assert!(Frame::decode_body(&bad_width).is_err());
        let mut truncated = body;
        truncated.pop();
        assert!(Frame::decode_body(&truncated).is_err());
    }

    #[test]
    fn delta_chunking_respects_capacity_and_epoch_stamps() {
        let added: Vec<u64> = (1..=10).collect();
        let removed: Vec<u64> = (100..=104).collect();
        let frames = delta_batch_frames(9, &added, &removed, 4);
        assert_eq!(frames.len(), 4); // 15 elements at 4 per frame
        let mut got_added = Vec::new();
        let mut got_removed = Vec::new();
        for frame in &frames {
            let Frame::DeltaBatch {
                epoch,
                added,
                removed,
            } = frame
            else {
                panic!("unexpected frame {frame:?}");
            };
            assert_eq!(*epoch, 9, "every chunk repeats the batch epoch");
            assert!(added.len() + removed.len() <= 4);
            got_added.extend_from_slice(added);
            got_removed.extend_from_slice(removed);
        }
        // Order preserved: adds first, then removes, never interleaved out
        // of order.
        assert_eq!(got_added, added);
        assert_eq!(got_removed, removed);
        // The third frame straddles the add/remove boundary.
        let Frame::DeltaBatch {
            added: a,
            removed: r,
            ..
        } = &frames[2]
        else {
            unreachable!()
        };
        assert_eq!((a.len(), r.len()), (2, 2));
        // An empty batch still yields one (empty) frame.
        assert_eq!(delta_batch_frames(1, &[], &[], 4).len(), 1);
        // Capacity math: the chunk capacity fills a frame exactly.
        let cap = delta_chunk_capacity(1024);
        assert_eq!(cap, (1024 - DELTA_BATCH_HEADER as usize) / 8);
        let full: Vec<u64> = (0..cap as u64).collect();
        let frames = delta_batch_frames(1, &full, &[], cap);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].encode_body().len() <= 1024);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frames[0], 1024).expect("fits under the cap");
    }

    #[test]
    fn subscription_frames_round_trip_and_refuse_trailing_bytes() {
        for frame in [
            Frame::Subscribe { epoch: 0 },
            Frame::Subscribe { epoch: u64::MAX },
            Frame::Ping { nonce: 0x5EED },
            Frame::Pong { nonce: 0x5EED },
        ] {
            assert_eq!(round_trip(&frame, 64), frame);
            assert_eq!(frame.wire_len(), 17, "framing + type byte + u64");
            // A trailing byte after the u64 word is refused.
            let mut body = frame.encode_body();
            body.push(0);
            assert!(Frame::decode_body(&body).is_err());
            // A truncated word is refused.
            let mut short = frame.encode_body();
            short.pop();
            assert!(Frame::decode_body(&short).is_err());
        }
        // The three one-word frames have distinct type bytes.
        assert_eq!(Frame::Subscribe { epoch: 1 }.type_byte(), 10);
        assert_eq!(Frame::Ping { nonce: 1 }.type_byte(), 11);
        assert_eq!(Frame::Pong { nonce: 1 }.type_byte(), 12);
    }

    #[test]
    fn error_code_u8_round_trip_covers_unknown_store() {
        for code in [
            ErrorCode::BadMagic,
            ErrorCode::Version,
            ErrorCode::BadConfig,
            ErrorCode::Protocol,
            ErrorCode::RoundLimit,
            ErrorCode::Decode,
            ErrorCode::Internal,
            ErrorCode::UnknownStore,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(9), None);
    }
}
