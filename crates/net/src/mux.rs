//! The non-blocking framed stream shared by every session multiplexer.
//!
//! PR 7's event-loop server grew this type privately; the load harness
//! (`crates/loadgen`) needs the exact same discipline on the *client*
//! side — one worker thread holding thousands of mostly-idle sessions,
//! none of which may ever block the loop — so the buffered non-blocking
//! framing lives here as a small public surface. [`MuxStream`] is a
//! [`crate::frame::Frame`] codec over a non-blocking `TcpStream` with
//! explicit read/write buffers and the same byte/frame accounting as the
//! blocking [`crate::FramedStream`]:
//!
//! * [`MuxStream::queue`] encodes a frame (length prefix + CRC + body)
//!   into the write buffer; [`MuxStream::flush`] drains the buffer as far
//!   as the socket accepts and never blocks.
//! * [`MuxStream::fill`] reads whatever the socket has;
//!   [`MuxStream::next_frame`] extracts the next complete frame, if one
//!   is fully buffered. The length prefix is validated against the frame
//!   cap *before* the body is awaited, so a hostile prefix cannot reserve
//!   memory.
//! * EOF sets [`MuxStream::peer_closed`] instead of erroring — a peer
//!   shutting its write half is an ordinary protocol event for a
//!   multiplexer, not an exception.
//!
//! Owners drive the stream from a [`crate::poll::Poller`] readiness loop:
//! read interest always, write interest while [`MuxStream::pending_out`]
//! is non-zero.

use crate::crc::crc32;
use crate::frame::{Frame, FRAME_OVERHEAD};
use crate::{FrameError, NetError};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;
/// Compact the write buffer once this many drained bytes accumulate.
const WRITE_COMPACT: usize = 64 * 1024;

/// A non-blocking framed stream: explicit read/write buffers over a
/// non-blocking `TcpStream`, with the same byte/frame accounting as the
/// blocking [`crate::FramedStream`]. Frames are extracted from the read
/// buffer only once complete, and queued frames drain front-first
/// whenever the socket is writable. See the [module docs](self) for the
/// readiness-loop contract.
#[derive(Debug)]
pub struct MuxStream {
    stream: TcpStream,
    max_frame: u32,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_head: usize,
    bytes_in: u64,
    bytes_out: u64,
    frames_in: u64,
    frames_out: u64,
    peer_closed: bool,
}

impl MuxStream {
    /// Wrap an already-connected stream. The caller is responsible for
    /// having put the socket into non-blocking mode (see
    /// [`MuxStream::from_tcp`] for the one-call form).
    pub fn new(stream: TcpStream, max_frame: u32) -> Self {
        MuxStream {
            stream,
            max_frame,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_head: 0,
            bytes_in: 0,
            bytes_out: 0,
            frames_in: 0,
            frames_out: 0,
            peer_closed: false,
        }
    }

    /// Put `stream` into non-blocking mode (applying `nodelay`) and wrap
    /// it. This is the client-side entry point: pair it with a
    /// `TcpStream::connect` that has already completed, or a non-blocking
    /// connect whose socket is handed over mid-establishment.
    pub fn from_tcp(stream: TcpStream, max_frame: u32, nodelay: bool) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(nodelay);
        Ok(MuxStream::new(stream, max_frame))
    }

    /// Bytes queued for write but not yet accepted by the socket.
    pub fn pending_out(&self) -> usize {
        self.write_buf.len() - self.write_head
    }

    /// `true` once the peer has closed its write half (EOF observed).
    pub fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    /// The wrapped stream (e.g. for its raw fd or a shutdown).
    pub fn get_ref(&self) -> &TcpStream {
        &self.stream
    }

    /// Encode `frame` into the write buffer (framing + CRC included).
    pub fn queue(&mut self, frame: &Frame) -> Result<(), NetError> {
        let body = frame.encode_body();
        if body.len() as u64 > self.max_frame as u64 {
            return Err(NetError::Frame(FrameError::TooLarge {
                len: body.len().min(u32::MAX as usize) as u32,
                max: self.max_frame,
            }));
        }
        self.write_buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.write_buf
            .extend_from_slice(&crc32(&body).to_le_bytes());
        self.write_buf.extend_from_slice(&body);
        self.frames_out += 1;
        Ok(())
    }

    /// Drain the write buffer as far as the socket accepts. `Ok(true)`
    /// when any bytes moved.
    pub fn flush(&mut self) -> io::Result<bool> {
        let mut progress = false;
        while self.pending_out() > 0 {
            match self.stream.write(&self.write_buf[self.write_head..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_head += n;
                    self.bytes_out += n as u64;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.pending_out() == 0 {
            self.write_buf.clear();
            self.write_head = 0;
        } else if self.write_head > WRITE_COMPACT {
            self.write_buf.drain(..self.write_head);
            self.write_head = 0;
        }
        Ok(progress)
    }

    /// Read whatever the socket has. `Ok(true)` when any bytes arrived;
    /// EOF sets [`MuxStream::peer_closed`] instead of erroring.
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut any = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(any)
    }

    /// Extract the next complete frame from the read buffer, if one is
    /// fully buffered. `Ok(None)` means "not yet" — call again after the
    /// next [`MuxStream::fill`].
    pub fn next_frame(&mut self) -> Result<Option<Frame>, NetError> {
        if self.read_buf.len() < FRAME_OVERHEAD as usize {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.read_buf[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(self.read_buf[4..8].try_into().unwrap());
        if len == 0 {
            return Err(NetError::Frame(FrameError::BadType(0)));
        }
        if len > self.max_frame {
            return Err(NetError::Frame(FrameError::TooLarge {
                len,
                max: self.max_frame,
            }));
        }
        let total = FRAME_OVERHEAD as usize + len as usize;
        if self.read_buf.len() < total {
            return Ok(None);
        }
        let body = &self.read_buf[FRAME_OVERHEAD as usize..total];
        if crc32(body) != crc {
            return Err(NetError::Frame(FrameError::BadCrc));
        }
        let frame = Frame::decode_body(body).map_err(NetError::Frame)?;
        self.read_buf.drain(..total);
        self.bytes_in += total as u64;
        self.frames_in += 1;
        Ok(Some(frame))
    }

    /// Total wire bytes received so far (framing included).
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total wire bytes sent so far (framing included).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Frames received so far.
    pub fn frames_in(&self) -> u64 {
        self.frames_in
    }

    /// Frames sent so far.
    pub fn frames_out(&self) -> u64 {
        self.frames_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frames_round_trip_through_partial_reads() {
        let (a, b) = pair();
        let mut tx = MuxStream::from_tcp(a, 1 << 20, true).unwrap();
        let mut rx = MuxStream::from_tcp(b, 1 << 20, true).unwrap();
        tx.queue(&Frame::Ping { nonce: 7 }).unwrap();
        tx.queue(&Frame::DeltaDone { epoch: 42 }).unwrap();
        while tx.pending_out() > 0 {
            tx.flush().unwrap();
        }
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < 2 {
            assert!(std::time::Instant::now() < deadline, "frames never arrived");
            let _ = rx.fill().unwrap();
            while let Some(frame) = rx.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert!(matches!(got[0], Frame::Ping { nonce: 7 }));
        assert!(matches!(got[1], Frame::DeltaDone { epoch: 42 }));
        assert_eq!(rx.frames_in(), 2);
        assert_eq!(tx.frames_out(), 2);
        assert_eq!(rx.bytes_in(), tx.bytes_out());
    }

    #[test]
    fn peer_close_is_an_event_not_an_error() {
        let (a, b) = pair();
        let mut rx = MuxStream::from_tcp(a, 1 << 20, true).unwrap();
        drop(b);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !rx.peer_closed() {
            assert!(std::time::Instant::now() < deadline, "EOF never observed");
            let _ = rx.fill().unwrap();
        }
        assert!(rx.next_frame().unwrap().is_none());
    }
}
