//! A minimal HTTP/1.0 admin endpoint for scraping telemetry.
//!
//! The build environment has no crates.io access, so there is no HTTP
//! framework to lean on; this module hand-rolls exactly the sliver of
//! HTTP/1.0 a Prometheus scraper (or `curl`) needs: parse a `GET` request
//! line, answer with `Content-Length` + `Connection: close`, close the
//! socket. It rides the same [`Poller`] the event
//! loop uses, on its own thread, so a stalled scraper can never block a
//! reconciliation session.
//!
//! Routes:
//!
//! * `GET /metrics` — the full [`obs::Registry`] in Prometheus text
//!   exposition format (global `pbs_server_*` families plus per-store
//!   `pbs_store_*{store="..."}` families).
//! * `GET /healthz` — `200 ok` while serving, `503 draining` once the
//!   server's shutdown signal is raised. The admin listener itself stays
//!   up through the drain so orchestrators can watch it flip.
//! * `GET /stats.json` — the [`StatsSnapshot`] compatibility view as a
//!   JSON object: `{"server": {...}, "stores": {"<name>": {...}}}`.
//!
//! The metric catalog is documented in `docs/OBSERVABILITY.md`.

use crate::poll::{Interest, Poller};
use crate::server::{Server, ServerStats, StatsSnapshot};
use crate::store::StoreRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest request head (request line + headers) accepted before the
/// connection is answered with `400` and closed. Scrape requests are a
/// few dozen bytes; anything bigger is not a scraper.
const MAX_REQUEST: usize = 4096;

/// Per-connection deadline: a scraper that has neither finished its
/// request nor drained its response within this window is dropped.
const CONN_DEADLINE: Duration = Duration::from_secs(5);

/// How often the accept loop wakes to check the stop flag even when no
/// descriptor is ready.
const TICK: Duration = Duration::from_millis(250);

/// The telemetry sources an [`AdminServer`] serves from.
///
/// Split out from [`Server`] so tests (and embedders that run the event
/// loop themselves) can stand up an endpoint without a full server.
#[derive(Clone)]
pub struct AdminState {
    /// Metric registry rendered by `GET /metrics`.
    pub metrics: Arc<obs::Registry>,
    /// Server-wide counters for `GET /stats.json`.
    pub stats: Arc<ServerStats>,
    /// Store registry walked for the per-store half of `/stats.json`.
    pub registry: Arc<StoreRegistry>,
    /// When `true`, `GET /healthz` answers `503 draining`.
    pub draining: Arc<AtomicBool>,
}

impl std::fmt::Debug for AdminState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminState")
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AdminState {
    /// The state an admin endpoint for `server` serves: its metric
    /// registry, its stats block, its store registry, and its shutdown
    /// signal as the draining flag.
    pub fn of(server: &Server) -> AdminState {
        AdminState {
            metrics: server.metrics(),
            stats: server.stats(),
            registry: server.registry(),
            draining: server.shutdown_signal(),
        }
    }
}

/// A running admin endpoint. Dropping it stops the listener thread.
#[derive(Debug)]
pub struct AdminServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` and serve `state` from a dedicated thread.
    pub fn bind(addr: impl ToSocketAddrs, state: AdminState) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pbs-admin".into())
            .spawn(move || serve(listener, state, thread_stop))?;
        Ok(AdminServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One in-flight scrape connection.
struct Conn {
    stream: TcpStream,
    /// Request bytes accumulated so far (until the blank line).
    request: Vec<u8>,
    /// Response bytes once the request has been answered; empty while
    /// still reading.
    response: Vec<u8>,
    written: usize,
    accepted: Instant,
}

impl Conn {
    fn responding(&self) -> bool {
        !self.response.is_empty()
    }
}

fn serve(listener: TcpListener, state: AdminState, stop: Arc<AtomicBool>) {
    let mut poller = Poller::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut interests = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        interests.clear();
        interests.push((listener.as_raw_fd(), Interest::READABLE));
        for conn in &conns {
            let interest = if conn.responding() {
                Interest {
                    readable: false,
                    writable: true,
                }
            } else {
                Interest::READABLE
            };
            interests.push((conn.stream.as_raw_fd(), interest));
        }
        let events = match poller.wait(&interests, Some(TICK)) {
            Ok(events) => events,
            Err(_) => break,
        };
        for event in events {
            if event.fd == listener.as_raw_fd() {
                accept_all(&listener, &mut conns);
                continue;
            }
            let Some(i) = conns.iter().position(|c| c.stream.as_raw_fd() == event.fd) else {
                continue;
            };
            let alive = if event.error && !conns[i].responding() {
                false
            } else if conns[i].responding() {
                flush(&mut conns[i])
            } else {
                read_request(&mut conns[i], &state)
            };
            if !alive {
                conns.swap_remove(i);
            }
        }
        conns.retain(|c| c.accepted.elapsed() < CONN_DEADLINE);
    }
}

fn accept_all(listener: &TcpListener, conns: &mut Vec<Conn>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                conns.push(Conn {
                    stream,
                    request: Vec::new(),
                    response: Vec::new(),
                    written: 0,
                    accepted: Instant::now(),
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Pull request bytes; once the head is complete, stage the response.
/// Returns `false` when the connection should be dropped.
fn read_request(conn: &mut Conn, state: &AdminState) -> bool {
    let mut buf = [0u8; 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => return false,
            Ok(n) => {
                conn.request.extend_from_slice(&buf[..n]);
                if conn.request.len() > MAX_REQUEST {
                    conn.response = response(400, "text/plain; charset=utf-8", "bad request\n");
                    return flush(conn);
                }
                if head_complete(&conn.request) {
                    conn.response = respond(&conn.request, state);
                    return flush(conn);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Write staged response bytes. Returns `false` once fully flushed (the
/// connection is done) or on error.
fn flush(conn: &mut Conn) -> bool {
    while conn.written < conn.response.len() {
        match conn.stream.write(&conn.response[conn.written..]) {
            Ok(0) => return false,
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    false
}

fn head_complete(request: &[u8]) -> bool {
    request.windows(4).any(|w| w == b"\r\n\r\n") || request.windows(2).any(|w| w == b"\n\n")
}

/// Route a complete request head to a response.
fn respond(request: &[u8], state: &AdminState) -> Vec<u8> {
    let head = String::from_utf8_lossy(request);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let path = target.split('?').next().unwrap_or("");
    if method != "GET" {
        return response(405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    match path {
        "/metrics" => response(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &state.metrics.render_prometheus(),
        ),
        "/healthz" => {
            if state.draining.load(Ordering::SeqCst) {
                response(503, "text/plain; charset=utf-8", "draining\n")
            } else {
                response(200, "text/plain; charset=utf-8", "ok\n")
            }
        }
        "/stats.json" => response(200, "application/json", &stats_json(state)),
        _ => response(404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// The 21 [`StatsSnapshot`] fields as `(name, value)` pairs, in
/// declaration order. Single source of truth for the JSON rendering.
pub fn snapshot_fields(s: &StatsSnapshot) -> [(&'static str, u64); 21] {
    [
        ("sessions_started", s.sessions_started),
        ("sessions_completed", s.sessions_completed),
        ("sessions_failed", s.sessions_failed),
        ("rounds", s.rounds),
        ("round_trips", s.round_trips),
        ("bytes_in", s.bytes_in),
        ("bytes_out", s.bytes_out),
        ("frames_in", s.frames_in),
        ("frames_out", s.frames_out),
        ("decode_failures", s.decode_failures),
        ("estimator_exchanges", s.estimator_exchanges),
        ("elements_received", s.elements_received),
        ("delta_sessions", s.delta_sessions),
        ("delta_fallbacks", s.delta_fallbacks),
        ("delta_batches", s.delta_batches),
        ("delta_elements", s.delta_elements),
        ("subscriptions", s.subscriptions),
        ("push_batches", s.push_batches),
        ("push_elements", s.push_elements),
        ("subscribers_evicted", s.subscribers_evicted),
        ("keepalive_pings", s.keepalive_pings),
    ]
}

fn snapshot_object(s: &StatsSnapshot) -> String {
    let fields: Vec<String> = snapshot_fields(s)
        .iter()
        .map(|(name, value)| format!("\"{name}\":{value}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stats_json(state: &AdminState) -> String {
    let mut out = String::new();
    out.push_str("{\"server\":");
    out.push_str(&snapshot_object(&state.stats.snapshot()));
    out.push_str(",\"stores\":{");
    let mut first = true;
    for name in state.registry.names() {
        let Some(entry) = state.registry.get(&name) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(&name));
        out.push_str("\":");
        out.push_str(&snapshot_object(&entry.stats().snapshot()));
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_and_status_lines() {
        let state = AdminState {
            metrics: Arc::new(obs::Registry::default()),
            stats: Arc::new(ServerStats::default()),
            registry: Arc::new(StoreRegistry::new()),
            draining: Arc::new(AtomicBool::new(false)),
        };
        let ok = respond(b"GET /healthz HTTP/1.0\r\n\r\n", &state);
        assert!(ok.starts_with(b"HTTP/1.0 200 OK\r\n"));
        state.draining.store(true, Ordering::SeqCst);
        let drain = respond(b"GET /healthz HTTP/1.0\r\n\r\n", &state);
        assert!(drain.starts_with(b"HTTP/1.0 503 "));
        let missing = respond(b"GET /nope HTTP/1.0\r\n\r\n", &state);
        assert!(missing.starts_with(b"HTTP/1.0 404 "));
        let post = respond(b"POST /metrics HTTP/1.0\r\n\r\n", &state);
        assert!(post.starts_with(b"HTTP/1.0 405 "));
    }

    #[test]
    fn stats_json_is_wellformed_enough() {
        let state = AdminState {
            metrics: Arc::new(obs::Registry::default()),
            stats: Arc::new(ServerStats::default()),
            registry: Arc::new(StoreRegistry::new()),
            draining: Arc::new(AtomicBool::new(false)),
        };
        state.stats.bytes_in.inc(42);
        let json = stats_json(&state);
        assert!(json.contains("\"bytes_in\":42"));
        assert!(json.starts_with("{\"server\":{"));
        assert!(json.trim_end().ends_with("}}"));
    }
}
