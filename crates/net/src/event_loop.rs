//! The non-blocking server core: one acceptor thread hands connections to
//! N event-loop workers, each running a [`crate::poll::Poller`] readiness
//! loop over its sessions. No worker thread ever blocks on a session
//! socket — a session is a resumable state machine
//! (`Handshake → Estimate → Rounds → AwaitSubscribe → Streaming → Closing`)
//! driven by readable/writable events over a buffered non-blocking framed
//! stream, with per-session deadlines enforced by the loop's timer pass.
//!
//! This is what turns v3 subscriptions *live*: a session that finished its
//! delta catch-up (or its classic reconciliation, on an epoch-capable
//! store) parks in `AwaitSubscribe`; a [`Frame::Subscribe`] moves it to
//! `Streaming`, where a [`crate::store::SetStore::register_notifier`] hook
//! wakes the worker on every store mutation and the worker pushes the
//! changes (`DeltaBatch*` → `DeltaDone` bursts) to every subscriber of
//! that store. Slow consumers are evicted with `FullResyncRequired`
//! instead of buffering without bound, and idle subscriptions are kept
//! alive (and garbage-collected) with `Ping`/`Pong`.
//!
//! Wakeups use a loopback socket pair per worker (the portable std-only
//! stand-in for a pipe): notifier closures and the acceptor enqueue a
//! [`Notice`] on the worker's channel and write one byte to the wake
//! socket, which the poll loop drains.

use crate::frame::{delta_batch_frames, delta_chunk_capacity, ErrorCode, EstimatorMsg, Frame};
use crate::mux::MuxStream;
use crate::poll::{Interest, Poller};
use crate::server::{ServerConfig, ServerStats};
use crate::store::{DeltaAnswer, RegisteredStore, SetStore, StoreRegistry};
use analysis::OptimalParams;
use estimator::{Estimator, TowEstimator};
use obs::trace::{self, Level, Value};
use obs::Histogram;
use pbs_core::{BobSession, Pbs, PbsConfig, ESTIMATOR_SEED_SALT};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on how long a `Closing` session may take to drain its final
/// frames before the socket is dropped anyway.
const CLOSING_GRACE_CAP: Duration = Duration::from_secs(5);

/// State shared by the acceptor and every worker.
pub(crate) struct Shared {
    pub registry: Arc<StoreRegistry>,
    pub config: ServerConfig,
    pub stats: Arc<ServerStats>,
    /// Live `Streaming` sessions across all workers, against
    /// `ServerConfig::max_subscribers`.
    pub live_subscribers: AtomicUsize,
    /// Per-phase latency histograms; `None` when
    /// `ServerConfig::telemetry` is off (counters stay on either way).
    pub session_metrics: Option<SessionMetrics>,
    /// Session-id allocator — ids label trace events and drive the
    /// deterministic trace sampling.
    pub next_session_id: AtomicU64,
}

/// The server-side latency histograms, one registration per server.
pub(crate) struct SessionMetrics {
    /// Accept → negotiated `Hello` flushed.
    pub handshake: Arc<Histogram>,
    /// Estimator bank awaited + served.
    pub estimate: Arc<Histogram>,
    /// Sketch/report rounds through the final ack queued.
    pub rounds: Arc<Histogram>,
    /// v3 changelog catch-up (handshake `delta_epoch` → `DeltaDone`
    /// queued).
    pub delta_catchup: Arc<Histogram>,
    /// Store-mutation commit → push burst's `DeltaDone` drained to the OS.
    pub push_dispatch: Arc<Histogram>,
    /// Whole session, accept → reap.
    pub session: Arc<Histogram>,
}

impl SessionMetrics {
    pub(crate) fn registered(metrics: &obs::Registry) -> SessionMetrics {
        let phase = |name: &str, help: &str| {
            metrics.histogram("pbs_server_phase_seconds", help, &[("phase", name)], 1e-9)
        };
        SessionMetrics {
            handshake: phase("handshake", "Per-phase session latency."),
            estimate: phase("estimate", "Per-phase session latency."),
            rounds: phase("rounds", "Per-phase session latency."),
            delta_catchup: phase("delta_catchup", "Per-phase session latency."),
            push_dispatch: metrics.histogram(
                "pbs_server_push_dispatch_seconds",
                "Store-mutation commit to the push burst's DeltaDone drained to the socket.",
                &[],
                1e-9,
            ),
            session: metrics.histogram(
                "pbs_server_session_seconds",
                "Whole-session wall clock, accept to close.",
                &[],
                1e-9,
            ),
        }
    }
}

/// What a worker can be woken for.
pub(crate) enum Notice {
    /// A freshly accepted connection.
    Conn(TcpStream),
    /// A store mutated; push to its subscribers. `at` is the commit
    /// instant (captured in the notifier, right after the store's element
    /// lock released) — the push-dispatch latency clock starts here.
    StoreChanged { store: String, at: Instant },
    /// Close every session and exit.
    Shutdown,
}

/// The write end of a worker's wake pipe (a loopback socket pair).
/// Cheap to clone; safe to fire from any thread and from inside store
/// notifier callbacks. A full pipe means a wake is already pending, so
/// `WouldBlock` is success.
#[derive(Clone)]
pub(crate) struct WakeSender {
    writer: Arc<TcpStream>,
}

impl WakeSender {
    pub(crate) fn wake(&self) {
        let _ = (&*self.writer).write(&[1u8]);
    }
}

/// The handle the acceptor/server keeps per worker.
pub(crate) struct WorkerLink {
    pub tx: mpsc::Sender<Notice>,
    pub wake: WakeSender,
}

impl Clone for WorkerLink {
    fn clone(&self) -> Self {
        WorkerLink {
            tx: self.tx.clone(),
            wake: self.wake.clone(),
        }
    }
}

/// A connected non-blocking loopback socket pair: the std-only portable
/// stand-in for `pipe(2)`.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _) = listener.accept()?;
    reader.set_nonblocking(true)?;
    writer.set_nonblocking(true)?;
    let _ = writer.set_nodelay(true);
    Ok((reader, writer))
}

/// Spawn one event-loop worker. Returns its link plus the join handle.
pub(crate) fn spawn_worker(
    index: usize,
    shared: Arc<Shared>,
) -> io::Result<(WorkerLink, std::thread::JoinHandle<()>)> {
    let (wake_reader, wake_writer) = wake_pair()?;
    let (tx, rx) = mpsc::channel::<Notice>();
    let link = WorkerLink {
        tx: tx.clone(),
        wake: WakeSender {
            writer: Arc::new(wake_writer),
        },
    };
    let worker_link = link.clone();
    let join = std::thread::Builder::new()
        .name(format!("pbs-net-worker-{index}"))
        .spawn(move || {
            Worker {
                shared,
                rx,
                link: worker_link,
                wake_reader,
                poller: Poller::new(),
                sessions: Vec::new(),
                dirty_stores: HashMap::new(),
                notified_stores: HashSet::new(),
                ping_nonce: 0x5EED_0000,
                shutting_down: false,
            }
            .run()
        })?;
    Ok((link, join))
}

// ---------------------------------------------------------------------------
// Session state machine
// ---------------------------------------------------------------------------

/// Where a session stands. The protocol phases mirror `docs/WIRE.md`; the
/// two tail states are this PR's additions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Awaiting the client's `Hello`.
    Handshake,
    /// Awaiting the client's ToW estimator bank.
    Estimate,
    /// Sketch/report rounds until the final `Done` transfer.
    Rounds,
    /// The session is logically complete (the client holds a `DeltaDone`
    /// epoch baseline); a `Subscribe` turns it live, anything else ends it.
    AwaitSubscribe,
    /// A live subscription: the server pushes delta bursts on mutation.
    Streaming,
    /// Draining the final queued frames, then closing with the recorded
    /// outcome (`true` = completed).
    Closing(bool),
}

/// Protocol context accumulated by the handshake, carried through the
/// classic reconciliation phases.
struct ProtoCtx {
    version: u16,
    cfg: PbsConfig,
    seed: u64,
    round_cap: u32,
    max_d: u64,
    max_done_elements: u32,
    /// The one per-session snapshot (estimator and Bob must see the same
    /// set). Dropped once the `BobSession` is built from it.
    snapshot: Vec<u64>,
    snapshot_epoch: Option<u64>,
    /// Whether this session may park in `AwaitSubscribe` after its ack:
    /// v3 negotiated *and* the routed store keeps epochs.
    subscribable: bool,
    params: Option<OptimalParams>,
    bob: Option<Box<BobSession>>,
    rounds: u32,
}

struct Session {
    nb: MuxStream,
    fd: RawFd,
    phase: Phase,
    /// Server-unique session id: labels trace events, drives trace
    /// sampling.
    id: u64,
    /// Whether trace events fire for this session (tracer installed, level
    /// admits Info, and the id passed the sample rate) — decided once at
    /// accept so a session traces all-or-nothing.
    traced: bool,
    /// Accept instant: base of the handshake-phase and whole-session
    /// timings.
    accepted: Instant,
    /// When the current protocol phase began (reset at each recorded
    /// phase boundary).
    phase_start: Instant,
    /// The commit instant of the oldest store mutation whose push burst is
    /// still queued toward this subscriber — cleared (and recorded as
    /// push-dispatch latency) when the write buffer fully drains.
    push_started: Option<Instant>,
    /// `Some(completed)` once the session is over; reaped by the worker.
    done: Option<bool>,
    /// Wall-clock budget, accept → final ack (pre-subscription phases).
    deadline: Instant,
    last_recv: Instant,
    /// When this session last became *ready for* the peer's next frame —
    /// reset after each processing pass, so the inactivity window matches
    /// the blocking server's per-`recv` read timeout (the server's own
    /// processing time never counts against the peer).
    wait_since: Instant,
    last_send_progress: Instant,
    last_ping: Instant,
    closing_grace: Option<Instant>,
    /// The epoch baseline a `Streaming` session's pushes start from.
    sub_epoch: u64,
    /// Routed store entry (per-store stats) and the store itself.
    entry: Option<Arc<RegisteredStore>>,
    store: Option<Arc<dyn SetStore>>,
    store_name: String,
    counted_subscriber: bool,
    ctx: Option<ProtoCtx>,
}

impl Session {
    fn new(stream: TcpStream, config: &ServerConfig, now: Instant, id: u64) -> io::Result<Session> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(config.transport.nodelay)?;
        let fd = stream.as_raw_fd();
        Ok(Session {
            nb: MuxStream::new(stream, config.transport.max_frame),
            fd,
            phase: Phase::Handshake,
            id,
            traced: trace::enabled(Level::Info) && trace::sampled(id),
            accepted: now,
            phase_start: now,
            push_started: None,
            done: None,
            deadline: now + config.session_deadline,
            last_recv: now,
            wait_since: now,
            last_send_progress: now,
            last_ping: now,
            closing_grace: None,
            sub_epoch: 0,
            entry: None,
            store: None,
            store_name: String::new(),
            counted_subscriber: false,
            ctx: None,
        })
    }

    fn finish(&mut self, completed: bool) {
        if self.done.is_none() {
            self.done = Some(completed);
        }
    }

    /// The outcome an externally forced close (EOF, I/O error, shutdown)
    /// maps to in this phase: a session past its final ack closed
    /// cleanly; one cut mid-protocol failed.
    fn close_outcome(&self) -> bool {
        match self.phase {
            Phase::Handshake | Phase::Estimate | Phase::Rounds => false,
            Phase::AwaitSubscribe | Phase::Streaming => true,
            Phase::Closing(completed) => completed,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

struct Worker {
    shared: Arc<Shared>,
    rx: mpsc::Receiver<Notice>,
    /// This worker's own link — cloned into store notifier closures.
    link: WorkerLink,
    wake_reader: TcpStream,
    poller: Poller,
    sessions: Vec<Session>,
    /// Stores with pending pushes, mapped to the *earliest* unserved
    /// mutation-commit instant (the push-dispatch latency baseline).
    dirty_stores: HashMap<String, Instant>,
    /// Stores this worker has already installed a mutation notifier on.
    notified_stores: HashSet<String>,
    ping_nonce: u64,
    shutting_down: bool,
}

impl Worker {
    fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    fn bump(
        &self,
        entry: &Option<Arc<RegisteredStore>>,
        f: fn(&ServerStats) -> &AtomicU64,
        n: u64,
    ) {
        f(&self.shared.stats).fetch_add(n, Ordering::Relaxed);
        if let Some(e) = entry {
            f(e.stats()).fetch_add(n, Ordering::Relaxed);
        }
    }

    fn run(mut self) {
        loop {
            self.drain_notices();
            if self.shutting_down {
                self.close_all();
                return;
            }
            if !self.dirty_stores.is_empty() {
                let dirty = std::mem::take(&mut self.dirty_stores);
                for i in 0..self.sessions.len() {
                    if self.sessions[i].done.is_none() && self.sessions[i].phase == Phase::Streaming
                    {
                        if let Some(&at) = dirty.get(&self.sessions[i].store_name) {
                            self.push_deltas(i, Some(at));
                        }
                    }
                }
            }
            self.reap();

            // Build the interest set: the wake pipe plus every session,
            // write interest only while that session has queued bytes.
            let mut interests: Vec<(RawFd, Interest)> =
                vec![(self.wake_reader.as_raw_fd(), Interest::READABLE)];
            for sess in &self.sessions {
                interests.push((
                    sess.fd,
                    Interest {
                        readable: true,
                        writable: sess.nb.pending_out() > 0,
                    },
                ));
            }
            let now = Instant::now();
            let timeout = self
                .next_deadline()
                .map(|due| due.saturating_duration_since(now) + Duration::from_millis(1));
            let events = match self.poller.wait(&interests, timeout) {
                Ok(events) => events,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    Vec::new()
                }
            };
            for event in events {
                if event.fd == self.wake_reader.as_raw_fd() {
                    let mut buf = [0u8; 256];
                    while matches!((&self.wake_reader).read(&mut buf), Ok(n) if n > 0) {}
                    continue;
                }
                let Some(i) = self.sessions.iter().position(|s| s.fd == event.fd) else {
                    continue;
                };
                if self.sessions[i].done.is_some() {
                    continue;
                }
                if event.writable {
                    self.on_writable(i);
                }
                if (event.readable || event.error) && self.sessions[i].done.is_none() {
                    self.on_readable(i);
                }
            }
            self.timer_pass();
            self.reap();
        }
    }

    fn drain_notices(&mut self) {
        loop {
            match self.rx.try_recv() {
                Ok(Notice::Conn(stream)) => self.add_session(stream),
                Ok(Notice::StoreChanged { store, at }) => {
                    // Keep the *earliest* commit instant while notices
                    // coalesce, so the dispatch latency never under-reports.
                    self.dirty_stores
                        .entry(store)
                        .and_modify(|t| *t = (*t).min(at))
                        .or_insert(at);
                }
                Ok(Notice::Shutdown) | Err(mpsc::TryRecvError::Disconnected) => {
                    // Connections are never enqueued after Shutdown (the
                    // acceptor is joined first), so anything still queued
                    // was already drained above.
                    self.shutting_down = true;
                    return;
                }
                Err(mpsc::TryRecvError::Empty) => return,
            }
        }
    }

    fn add_session(&mut self, stream: TcpStream) {
        self.shared
            .stats
            .sessions_started
            .fetch_add(1, Ordering::Relaxed);
        let id = self.shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        let peer = stream.peer_addr().ok();
        match Session::new(stream, self.config(), Instant::now(), id) {
            Ok(sess) => {
                if sess.traced {
                    let peer = peer.map(|p| p.to_string()).unwrap_or_default();
                    trace::event(
                        Level::Info,
                        "session",
                        Some(id),
                        "accept",
                        &[("peer", Value::Str(&peer))],
                    );
                }
                self.sessions.push(sess);
            }
            Err(_) => {
                self.shared
                    .stats
                    .sessions_failed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record the elapsed time of the phase ending now for session `i`
    /// into the histogram `pick` selects, and restart the phase clock.
    /// No-op (and no `Instant` read) when telemetry is off.
    fn record_phase(&mut self, i: usize, pick: fn(&SessionMetrics) -> &Arc<Histogram>) {
        if let Some(m) = &self.shared.session_metrics {
            let now = Instant::now();
            pick(m).record_duration(now - self.sessions[i].phase_start);
            self.sessions[i].phase_start = now;
        }
    }

    /// Emit an Info-level trace event for session `i`, if it is traced.
    fn trace_session(&self, i: usize, event: &str, fields: &[(&str, Value<'_>)]) {
        if self.sessions[i].traced {
            trace::event(
                Level::Info,
                "session",
                Some(self.sessions[i].id),
                event,
                fields,
            );
        }
    }

    /// Earliest instant any session needs the loop to act without I/O.
    fn next_deadline(&self) -> Option<Instant> {
        let cfg = self.config();
        let mut due: Option<Instant> = None;
        let mut track = |t: Instant| {
            due = Some(match due {
                Some(d) => d.min(t),
                None => t,
            });
        };
        for sess in &self.sessions {
            if sess.done.is_some() {
                continue;
            }
            match sess.phase {
                Phase::Handshake | Phase::Estimate | Phase::Rounds => {
                    track(sess.deadline);
                    if let Some(t) = cfg.transport.read_timeout {
                        track(sess.wait_since + t);
                    }
                }
                Phase::AwaitSubscribe => {
                    if let Some(t) = cfg.transport.read_timeout {
                        track(sess.wait_since + t);
                    }
                }
                Phase::Streaming => {
                    let idle_base = sess
                        .last_recv
                        .max(sess.last_send_progress)
                        .max(sess.last_ping);
                    track(idle_base + cfg.keepalive);
                    track(sess.last_recv + cfg.keepalive * 3);
                }
                Phase::Closing(_) => {
                    if let Some(grace) = sess.closing_grace {
                        track(grace);
                    }
                }
            }
            if sess.nb.pending_out() > 0 {
                if let Some(t) = cfg.transport.write_timeout {
                    track(sess.last_send_progress + t);
                }
            }
        }
        due
    }

    fn timer_pass(&mut self) {
        let cfg = *self.config();
        let now = Instant::now();
        for i in 0..self.sessions.len() {
            if self.sessions[i].done.is_some() {
                continue;
            }
            // Write stall: queued bytes making no progress for the write
            // timeout. A stalled subscriber is a slow consumer.
            if self.sessions[i].nb.pending_out() > 0 {
                if let Some(t) = cfg.transport.write_timeout {
                    if now >= self.sessions[i].last_send_progress + t {
                        if self.sessions[i].phase == Phase::Streaming {
                            let entry = self.sessions[i].entry.clone();
                            self.bump(&entry, |s| &s.subscribers_evicted, 1);
                            if self.sessions[i].traced {
                                trace::event(
                                    Level::Warn,
                                    "session",
                                    Some(self.sessions[i].id),
                                    "evicted",
                                    &[("reason", Value::Str("write_stall"))],
                                );
                            }
                        }
                        let outcome = self.sessions[i].close_outcome();
                        self.sessions[i].finish(outcome);
                        continue;
                    }
                }
            }
            match self.sessions[i].phase {
                Phase::Handshake | Phase::Estimate | Phase::Rounds => {
                    if now >= self.sessions[i].deadline {
                        self.refuse(i, ErrorCode::Internal, "session deadline exceeded");
                        continue;
                    }
                    if let Some(t) = cfg.transport.read_timeout {
                        if now >= self.sessions[i].wait_since + t {
                            self.sessions[i].finish(false);
                        }
                    }
                }
                Phase::AwaitSubscribe => {
                    // The session is logically complete: an inactivity
                    // window with no Subscribe is a clean end.
                    if let Some(t) = cfg.transport.read_timeout {
                        if now >= self.sessions[i].wait_since + t {
                            self.sessions[i].finish(true);
                        }
                    }
                }
                Phase::Streaming => {
                    if now >= self.sessions[i].last_recv + cfg.keepalive * 3 {
                        // The subscriber stopped answering keepalives.
                        self.sessions[i].finish(true);
                        continue;
                    }
                    let idle_base = self.sessions[i]
                        .last_recv
                        .max(self.sessions[i].last_send_progress)
                        .max(self.sessions[i].last_ping);
                    if now >= idle_base + cfg.keepalive && self.sessions[i].nb.pending_out() == 0 {
                        self.ping_nonce = self.ping_nonce.wrapping_add(1);
                        let nonce = self.ping_nonce;
                        if self.sessions[i].nb.queue(&Frame::Ping { nonce }).is_ok() {
                            self.sessions[i].last_ping = now;
                            let entry = self.sessions[i].entry.clone();
                            self.bump(&entry, |s| &s.keepalive_pings, 1);
                            self.on_writable(i);
                        }
                    }
                }
                Phase::Closing(completed) => {
                    let expired = self.sessions[i].closing_grace.is_some_and(|g| now >= g);
                    if expired || self.sessions[i].nb.pending_out() == 0 {
                        self.sessions[i].finish(completed);
                    }
                }
            }
        }
    }

    fn on_writable(&mut self, i: usize) {
        match self.sessions[i].nb.flush() {
            Ok(progress) => {
                if progress {
                    self.sessions[i].last_send_progress = Instant::now();
                }
                if self.sessions[i].nb.pending_out() == 0 {
                    // Push burst fully handed to the OS: the dispatch
                    // latency clock (mutation commit → drained) stops.
                    if let Some(started) = self.sessions[i].push_started.take() {
                        if let Some(m) = &self.shared.session_metrics {
                            m.push_dispatch.record_duration(started.elapsed());
                        }
                    }
                    if let Phase::Closing(completed) = self.sessions[i].phase {
                        self.sessions[i].finish(completed);
                    }
                }
            }
            Err(_) => {
                let outcome = self.sessions[i].close_outcome();
                self.sessions[i].finish(outcome);
            }
        }
    }

    fn on_readable(&mut self, i: usize) {
        if self.sessions[i].nb.fill().is_err() {
            let outcome = self.sessions[i].close_outcome();
            self.sessions[i].finish(outcome);
            return;
        }
        loop {
            if self.sessions[i].done.is_some() {
                return;
            }
            match self.sessions[i].nb.next_frame() {
                Ok(Some(frame)) => {
                    self.sessions[i].last_recv = Instant::now();
                    if !matches!(self.sessions[i].phase, Phase::Closing(_)) {
                        self.handle_frame(i, frame);
                    }
                    // The frame's handling (which can be expensive —
                    // building a Bob session hashes the whole snapshot)
                    // must not count against the peer's next-frame window.
                    if self.sessions[i].done.is_none() {
                        self.sessions[i].wait_since = Instant::now();
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Undecodable bytes end the session exactly like the
                    // blocking server's failed `read_frame` did: drop the
                    // connection, no Error frame for garbage framing.
                    self.sessions[i].finish(false);
                    return;
                }
            }
        }
        if self.sessions[i].nb.peer_closed() {
            let outcome = self.sessions[i].close_outcome();
            if self.sessions[i].nb.pending_out() > 0 {
                // The peer may have only shut its write half; drain our
                // queued replies before closing.
                self.sessions[i].phase = Phase::Closing(outcome);
                self.arm_closing_grace(i);
            } else {
                self.sessions[i].finish(outcome);
            }
        } else if self.sessions[i].done.is_none() && self.sessions[i].nb.pending_out() > 0 {
            // Opportunistic flush: most replies fit the socket buffer and
            // complete without waiting for a writability event.
            self.on_writable(i);
        }
    }

    fn arm_closing_grace(&mut self, i: usize) {
        let grace = self
            .config()
            .transport
            .write_timeout
            .unwrap_or(CLOSING_GRACE_CAP)
            .min(CLOSING_GRACE_CAP);
        self.sessions[i].closing_grace = Some(Instant::now() + grace);
    }

    /// Queue an `Error` frame and move to `Closing` as failed — the
    /// non-blocking counterpart of the blocking server's `refuse`.
    fn refuse(&mut self, i: usize, code: ErrorCode, message: impl Into<String>) {
        let message = message.into();
        if self.sessions[i].traced {
            trace::event(
                Level::Warn,
                "session",
                Some(self.sessions[i].id),
                "refused",
                &[
                    ("code", Value::U64(code as u64)),
                    ("message", Value::Str(&message)),
                ],
            );
        }
        let _ = self.sessions[i].nb.queue(&Frame::Error { code, message });
        self.sessions[i].phase = Phase::Closing(false);
        self.arm_closing_grace(i);
        self.on_writable(i);
    }

    /// Ack sent; either park the session for a `Subscribe` (v3 on an
    /// epoch-capable store) or drain and close as completed.
    fn after_ack(&mut self, i: usize) {
        let subscribable = self.sessions[i]
            .ctx
            .as_ref()
            .is_some_and(|c| c.subscribable);
        if subscribable {
            self.sessions[i].phase = Phase::AwaitSubscribe;
        } else {
            self.sessions[i].phase = Phase::Closing(true);
            self.arm_closing_grace(i);
        }
        self.on_writable(i);
    }

    fn handle_frame(&mut self, i: usize, frame: Frame) {
        // A peer Error frame ends the session in any phase, reply-less —
        // the blocking server surfaced it as `NetError::Remote`.
        if matches!(frame, Frame::Error { .. }) {
            self.sessions[i].finish(false);
            return;
        }
        match self.sessions[i].phase {
            Phase::Handshake => self.handle_hello(i, frame),
            Phase::Estimate => self.handle_estimator(i, frame),
            Phase::Rounds => self.handle_round(i, frame),
            Phase::AwaitSubscribe => self.handle_subscribe(i, frame),
            Phase::Streaming => self.handle_streaming(i, frame),
            Phase::Closing(_) => {}
        }
    }

    fn handle_hello(&mut self, i: usize, frame: Frame) {
        let hello = match frame {
            Frame::Hello(h) => h,
            other => {
                return self.refuse(
                    i,
                    ErrorCode::Protocol,
                    format!("expected Hello, got frame type {}", other.type_byte()),
                )
            }
        };
        if hello.version == 0 {
            return self.refuse(i, ErrorCode::Version, "version 0 is invalid");
        }
        let cfg = match hello.config() {
            Ok(cfg) => cfg,
            Err(why) => return self.refuse(i, ErrorCode::BadConfig, why),
        };
        let config = *self.config();
        let negotiated_version = hello.version.min(config.protocol_version);

        // Store routing: only a v2+ session can address a named store.
        let store_name = if negotiated_version >= 2 {
            hello.store.as_str()
        } else {
            ""
        };
        let Some(entry) = self.shared.registry.get(store_name) else {
            return self.refuse(
                i,
                ErrorCode::UnknownStore,
                format!("no store named {store_name:?}"),
            );
        };
        entry
            .stats()
            .sessions_started
            .fetch_add(1, Ordering::Relaxed);
        let store = Arc::clone(entry.store());
        let options = entry.options();
        let round_cap = options.round_cap.unwrap_or(config.round_cap);
        let max_d = options.max_d.unwrap_or(config.max_d);
        let max_done_elements = options
            .max_done_elements
            .unwrap_or(config.max_done_elements);

        let mut negotiated = hello.clone();
        negotiated.version = negotiated_version;
        negotiated.store = entry.name().to_string();
        negotiated.pipeline = hello
            .pipeline
            .max(1)
            .min(config.max_pipeline_depth.clamp(1, u8::MAX as u32) as u8);
        self.sessions[i].store_name = entry.name().to_string();
        self.sessions[i].entry = Some(Arc::clone(&entry));
        self.sessions[i].store = Some(Arc::clone(&store));
        if self.sessions[i]
            .nb
            .queue(&Frame::Hello(negotiated))
            .is_err()
        {
            self.sessions[i].finish(false);
            return;
        }
        // Flush the negotiated Hello *before* the potentially expensive
        // session setup below (snapshot + Bob build): the client starts
        // its own sketch computation on receipt, so the two overlap — the
        // blocking server had the same send-then-build order.
        self.on_writable(i);
        if self.sessions[i].done.is_some() {
            return;
        }
        // The handshake phase ends with the negotiated Hello on the wire;
        // what follows (delta catch-up / snapshot + Bob build) belongs to
        // the next phase's clock.
        self.record_phase(i, |m| &m.handshake);
        self.trace_session(
            i,
            "hello",
            &[
                ("version", Value::U64(negotiated_version as u64)),
                ("store", Value::Str(entry.name())),
                ("known_d", Value::U64(hello.known_d)),
                ("delta_epoch", Value::Bool(hello.delta_epoch.is_some())),
            ],
        );
        let entry_opt = Some(entry);

        let mut ctx = ProtoCtx {
            version: negotiated_version,
            cfg,
            seed: hello.seed,
            round_cap,
            max_d,
            max_done_elements,
            snapshot: Vec::new(),
            snapshot_epoch: None,
            subscribable: false,
            params: None,
            bob: None,
            rounds: 0,
        };

        // ---- Delta subscription path (v3) ----
        if negotiated_version >= 3 {
            if let Some(since) = hello.delta_epoch {
                match store.delta_since(since) {
                    DeltaAnswer::Changes { batches, current } => {
                        self.bump(&entry_opt, |s| &s.delta_sessions, 1);
                        let capacity = delta_chunk_capacity(config.transport.max_frame);
                        for batch in &batches {
                            self.bump(
                                &entry_opt,
                                |s| &s.delta_elements,
                                (batch.added.len() + batch.removed.len()) as u64,
                            );
                            for frame in delta_batch_frames(
                                batch.epoch,
                                &batch.added,
                                &batch.removed,
                                capacity,
                            ) {
                                self.bump(&entry_opt, |s| &s.delta_batches, 1);
                                if self.sessions[i].nb.queue(&frame).is_err() {
                                    self.sessions[i].finish(false);
                                    return;
                                }
                            }
                        }
                        if self.sessions[i]
                            .nb
                            .queue(&Frame::DeltaDone { epoch: current })
                            .is_err()
                        {
                            self.sessions[i].finish(false);
                            return;
                        }
                        // Served entirely from the changelog: the session
                        // is complete and may turn into a live
                        // subscription.
                        ctx.subscribable = true;
                        self.sessions[i].ctx = Some(ctx);
                        self.sessions[i].phase = Phase::AwaitSubscribe;
                        self.record_phase(i, |m| &m.delta_catchup);
                        self.trace_session(
                            i,
                            "delta_catchup",
                            &[
                                ("batches", Value::U64(batches.len() as u64)),
                                ("epoch", Value::U64(current)),
                            ],
                        );
                        self.on_writable(i);
                        return;
                    }
                    DeltaAnswer::Trimmed { current } => {
                        self.bump(&entry_opt, |s| &s.delta_fallbacks, 1);
                        if self.sessions[i]
                            .nb
                            .queue(&Frame::FullResyncRequired { epoch: current })
                            .is_err()
                        {
                            self.sessions[i].finish(false);
                            return;
                        }
                    }
                    DeltaAnswer::Unsupported => {
                        self.bump(&entry_opt, |s| &s.delta_fallbacks, 1);
                        if self.sessions[i]
                            .nb
                            .queue(&Frame::FullResyncRequired { epoch: 0 })
                            .is_err()
                        {
                            self.sessions[i].finish(false);
                            return;
                        }
                    }
                }
            }
        }

        // ---- Classic reconciliation ----
        // One snapshot for the whole session: estimator and Bob must
        // describe the same set; its epoch is the ack's baseline.
        let (snapshot, snapshot_epoch) = store.epoch_snapshot();
        ctx.snapshot = snapshot;
        ctx.snapshot_epoch = snapshot_epoch;
        ctx.subscribable = negotiated_version >= 3 && snapshot_epoch.is_some();

        if hello.known_d > 0 {
            if hello.known_d > max_d {
                self.sessions[i].ctx = Some(ctx);
                return self.refuse(
                    i,
                    ErrorCode::BadConfig,
                    format!("d = {} exceeds the server cap {max_d}", hello.known_d),
                );
            }
            let params = Pbs::new(cfg).plan(hello.known_d as usize);
            ctx.bob = Some(Box::new(BobSession::new(
                cfg,
                params,
                &ctx.snapshot,
                hello.seed,
            )));
            ctx.params = Some(params);
            ctx.snapshot = Vec::new();
            self.sessions[i].ctx = Some(ctx);
            self.sessions[i].phase = Phase::Rounds;
        } else {
            self.sessions[i].ctx = Some(ctx);
            self.sessions[i].phase = Phase::Estimate;
        }
        self.on_writable(i);
    }

    fn handle_estimator(&mut self, i: usize, frame: Frame) {
        let bank_bytes = match frame {
            Frame::EstimatorExchange(EstimatorMsg::TowBank(bytes)) => bytes,
            other => {
                return self.refuse(
                    i,
                    ErrorCode::Protocol,
                    format!(
                        "expected estimator bank, got frame type {}",
                        other.type_byte()
                    ),
                )
            }
        };
        let Some(client_bank) = TowEstimator::from_bytes(&bank_bytes) else {
            return self.refuse(i, ErrorCode::Decode, "malformed estimator bank");
        };
        let (cfg, seed) = {
            let ctx = self.sessions[i].ctx.as_ref().expect("estimate has ctx");
            (ctx.cfg, ctx.seed)
        };
        let est_seed = xhash::derive_seed(seed, ESTIMATOR_SEED_SALT);
        if client_bank.seed() != est_seed || client_bank.sketch_count() != cfg.estimator_sketches {
            return self.refuse(
                i,
                ErrorCode::BadConfig,
                "estimator bank does not match the handshake parameters",
            );
        }
        let entry = self.sessions[i].entry.clone();
        let (d_param, d_hat) = {
            let ctx = self.sessions[i].ctx.as_ref().expect("estimate has ctx");
            let mut own = TowEstimator::new(cfg.estimator_sketches, est_seed);
            own.insert_slice(&ctx.snapshot);
            let d_hat = client_bank.estimate(&own);
            (estimator::inflate_estimate(d_hat) as u64, d_hat)
        };
        self.bump(&entry, |s| &s.estimator_exchanges, 1);
        if self.sessions[i]
            .nb
            .queue(&Frame::EstimatorExchange(EstimatorMsg::Estimate {
                d_param,
                d_hat,
            }))
            .is_err()
        {
            self.sessions[i].finish(false);
            return;
        }
        // Flush the estimate before the Bob build below so the client's
        // sketch computation overlaps it (see `handle_hello`).
        self.on_writable(i);
        if self.sessions[i].done.is_some() {
            return;
        }
        let max_d = self.sessions[i].ctx.as_ref().expect("ctx").max_d;
        if d_param > max_d {
            return self.refuse(
                i,
                ErrorCode::BadConfig,
                format!("d = {d_param} exceeds the server cap {max_d}"),
            );
        }
        {
            let ctx = self.sessions[i].ctx.as_mut().expect("ctx");
            let params = Pbs::new(cfg).plan(d_param as usize);
            ctx.bob = Some(Box::new(BobSession::new(
                cfg,
                params,
                &ctx.snapshot,
                ctx.seed,
            )));
            ctx.params = Some(params);
            ctx.snapshot = Vec::new();
        }
        self.sessions[i].phase = Phase::Rounds;
        self.record_phase(i, |m| &m.estimate);
        self.trace_session(i, "estimated", &[("d_param", Value::U64(d_param))]);
        self.on_writable(i);
    }

    fn handle_round(&mut self, i: usize, frame: Frame) {
        let config = *self.config();
        let entry = self.sessions[i].entry.clone();
        match frame {
            Frame::Sketches { m, batch } => {
                // Pipelining: layers — not frames — are what the round cap
                // meters; each costs a full per-group decode pass.
                let mut layer_rounds: Vec<u32> = batch.iter().map(|s| s.round).collect();
                layer_rounds.sort_unstable();
                layer_rounds.dedup();
                let layers = (layer_rounds.len() as u32).max(1);
                let (version, round_cap, params) = {
                    let ctx = self.sessions[i].ctx.as_ref().expect("rounds have ctx");
                    (ctx.version, ctx.round_cap, ctx.params.expect("params set"))
                };
                if layers > 1 && version < 2 {
                    return self.refuse(
                        i,
                        ErrorCode::Protocol,
                        "pipelined rounds require protocol v2",
                    );
                }
                if layers > config.max_pipeline_depth {
                    return self.refuse(
                        i,
                        ErrorCode::BadConfig,
                        format!(
                            "{layers} pipelined layers exceed the server cap {}",
                            config.max_pipeline_depth
                        ),
                    );
                }
                let rounds = {
                    let ctx = self.sessions[i].ctx.as_mut().expect("ctx");
                    ctx.rounds += layers;
                    ctx.rounds
                };
                if rounds > round_cap {
                    return self.refuse(
                        i,
                        ErrorCode::RoundLimit,
                        format!("round cap {round_cap} exceeded"),
                    );
                }
                // Shape-check before the codec's capacity assertion could
                // fire: the batch must be nonempty (a zero-sketch round is a
                // degenerate shape no worker should ever be handed) and every
                // sketch must match the negotiated (m, t).
                if batch.is_empty() {
                    return self.refuse(i, ErrorCode::BadConfig, "empty sketch batch");
                }
                if m != params.m || batch.iter().any(|s| s.sketch.capacity() != params.t) {
                    return self.refuse(
                        i,
                        ErrorCode::BadConfig,
                        format!(
                            "sketch shape mismatch: negotiated m={} t={}",
                            params.m, params.t
                        ),
                    );
                }
                let reports = {
                    let ctx = self.sessions[i].ctx.as_mut().expect("ctx");
                    ctx.bob.as_mut().expect("bob built").handle_sketches(&batch)
                };
                self.bump(&entry, |s| &s.rounds, layers as u64);
                self.bump(&entry, |s| &s.round_trips, 1);
                if self.sessions[i].nb.queue(&Frame::Reports(reports)).is_err() {
                    self.sessions[i].finish(false);
                    return;
                }
                self.on_writable(i);
            }
            Frame::Done(elements) => {
                let (cfg, version, max_done_elements, snapshot_epoch) = {
                    let ctx = self.sessions[i].ctx.as_ref().expect("ctx");
                    (
                        ctx.cfg,
                        ctx.version,
                        ctx.max_done_elements,
                        ctx.snapshot_epoch,
                    )
                };
                if elements.len() as u64 > max_done_elements as u64 {
                    return self.refuse(
                        i,
                        ErrorCode::BadConfig,
                        format!(
                            "final transfer of {} elements exceeds the cap {}",
                            elements.len(),
                            max_done_elements
                        ),
                    );
                }
                // Zero or out-of-universe elements would poison the store.
                let universe_mask = if cfg.universe_bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << cfg.universe_bits) - 1
                };
                if elements.iter().any(|&e| e == 0 || e > universe_mask) {
                    return self.refuse(
                        i,
                        ErrorCode::BadConfig,
                        format!(
                            "final transfer contains elements outside the {}-bit universe",
                            cfg.universe_bits
                        ),
                    );
                }
                let store = self.sessions[i].store.clone().expect("routed store");
                store.apply_missing(&elements);
                self.bump(&entry, |s| &s.elements_received, elements.len() as u64);
                // On a v3 session against an epoch-capable store the ack
                // carries the *snapshot* epoch — the client's new delta
                // baseline (changes landing after the snapshot were
                // invisible to this session; the next delta sync replays
                // them idempotently).
                let ack = match snapshot_epoch {
                    Some(epoch) if version >= 3 => Frame::DeltaDone { epoch },
                    _ => Frame::Done(Vec::new()),
                };
                if self.sessions[i].nb.queue(&ack).is_err() {
                    self.sessions[i].finish(false);
                    return;
                }
                self.record_phase(i, |m| &m.rounds);
                let rounds = self.sessions[i].ctx.as_ref().map_or(0, |c| c.rounds);
                self.trace_session(
                    i,
                    "reconciled",
                    &[
                        ("rounds", Value::U64(rounds as u64)),
                        ("received", Value::U64(elements.len() as u64)),
                    ],
                );
                self.after_ack(i);
            }
            other => self.refuse(
                i,
                ErrorCode::Protocol,
                format!(
                    "unexpected frame type {} during the round loop",
                    other.type_byte()
                ),
            ),
        }
    }

    fn handle_subscribe(&mut self, i: usize, frame: Frame) {
        let epoch = match frame {
            Frame::Subscribe { epoch } => epoch,
            other => {
                return self.refuse(
                    i,
                    ErrorCode::Protocol,
                    format!(
                        "unexpected frame type {} while awaiting Subscribe",
                        other.type_byte()
                    ),
                )
            }
        };
        let max = self.config().max_subscribers;
        if self.shared.live_subscribers.load(Ordering::Relaxed) >= max {
            return self.refuse(
                i,
                ErrorCode::Internal,
                format!("subscriber limit {max} reached"),
            );
        }
        self.shared.live_subscribers.fetch_add(1, Ordering::Relaxed);
        self.sessions[i].counted_subscriber = true;
        let entry = self.sessions[i].entry.clone();
        self.bump(&entry, |s| &s.subscriptions, 1);
        // Install this worker's mutation notifier on the store *before*
        // the initial catch-up below: a mutation landing in between then
        // raises a (harmless, idempotent) extra wakeup instead of being
        // missed.
        let store = self.sessions[i].store.clone().expect("routed store");
        let name = self.sessions[i].store_name.clone();
        self.ensure_notifier(&name, &store);
        let now = Instant::now();
        self.sessions[i].sub_epoch = epoch;
        self.sessions[i].phase = Phase::Streaming;
        self.sessions[i].last_ping = now;
        self.sessions[i].last_send_progress = now;
        self.trace_session(i, "subscribed", &[("epoch", Value::U64(epoch))]);
        // Catch up on anything that mutated between the client's baseline
        // and this Subscribe. Not a push dispatch: the latency clock only
        // runs for bursts triggered by a store mutation.
        self.push_deltas(i, None);
    }

    fn handle_streaming(&mut self, i: usize, frame: Frame) {
        match frame {
            Frame::Pong { .. } => {} // liveness credit via last_recv
            Frame::Ping { nonce } => {
                if self.sessions[i].nb.queue(&Frame::Pong { nonce }).is_ok() {
                    self.on_writable(i);
                } else {
                    self.sessions[i].finish(false);
                }
            }
            other => self.refuse(
                i,
                ErrorCode::Protocol,
                format!(
                    "unexpected frame type {} on a live subscription",
                    other.type_byte()
                ),
            ),
        }
    }

    /// Push everything the store changed past this subscriber's epoch as
    /// one `DeltaBatch*`/`DeltaDone` burst, evicting the subscriber if
    /// the burst would overrun its buffer cap. `origin` is the commit
    /// instant of the mutation that triggered the push (`None` for the
    /// initial Subscribe catch-up) — it seeds the dispatch-latency clock
    /// stopped in `on_writable` when the burst drains.
    fn push_deltas(&mut self, i: usize, origin: Option<Instant>) {
        let store = self.sessions[i].store.clone().expect("streaming has store");
        let entry = self.sessions[i].entry.clone();
        let config = *self.config();
        match store.delta_since(self.sessions[i].sub_epoch) {
            DeltaAnswer::Changes { batches, current } => {
                if batches.is_empty() {
                    self.sessions[i].sub_epoch = current;
                    return;
                }
                let capacity = delta_chunk_capacity(config.transport.max_frame);
                let mut frames = Vec::new();
                let mut elements = 0u64;
                for batch in &batches {
                    elements += (batch.added.len() + batch.removed.len()) as u64;
                    frames.extend(delta_batch_frames(
                        batch.epoch,
                        &batch.added,
                        &batch.removed,
                        capacity,
                    ));
                }
                let done = Frame::DeltaDone { epoch: current };
                let burst_bytes: u64 =
                    frames.iter().map(Frame::wire_len).sum::<u64>() + done.wire_len();
                if self.sessions[i].nb.pending_out() as u64 + burst_bytes
                    > config.subscriber_buffer as u64
                {
                    // Slow consumer: cut it loose rather than buffer
                    // without bound. FullResyncRequired tells it to come
                    // back with a fresh reconciliation.
                    self.bump(&entry, |s| &s.subscribers_evicted, 1);
                    if self.sessions[i].traced {
                        trace::event(
                            Level::Warn,
                            "session",
                            Some(self.sessions[i].id),
                            "evicted",
                            &[
                                ("reason", Value::Str("buffer_overrun")),
                                ("burst_bytes", Value::U64(burst_bytes)),
                            ],
                        );
                    }
                    let _ = self.sessions[i]
                        .nb
                        .queue(&Frame::FullResyncRequired { epoch: current });
                    self.sessions[i].phase = Phase::Closing(true);
                    self.arm_closing_grace(i);
                    self.on_writable(i);
                    return;
                }
                for frame in &frames {
                    self.bump(&entry, |s| &s.push_batches, 1);
                    if self.sessions[i].nb.queue(frame).is_err() {
                        self.sessions[i].finish(false);
                        return;
                    }
                }
                self.bump(&entry, |s| &s.push_elements, elements);
                if self.sessions[i].nb.queue(&done).is_err() {
                    self.sessions[i].finish(false);
                    return;
                }
                self.sessions[i].sub_epoch = current;
                if let Some(origin) = origin {
                    if self.shared.session_metrics.is_some() {
                        let started = self.sessions[i].push_started;
                        self.sessions[i].push_started =
                            Some(started.map_or(origin, |s| s.min(origin)));
                    }
                }
                self.on_writable(i);
            }
            DeltaAnswer::Trimmed { current } => {
                // The changelog no longer covers this subscriber (trimmed
                // under it while it idled, or the epoch space exhausted).
                let _ = self.sessions[i]
                    .nb
                    .queue(&Frame::FullResyncRequired { epoch: current });
                self.sessions[i].phase = Phase::Closing(true);
                self.arm_closing_grace(i);
                self.on_writable(i);
            }
            DeltaAnswer::Unsupported => self.sessions[i].finish(false),
        }
    }

    /// Install this worker's wakeup notifier on `store` (once per store
    /// name): mutation → `StoreChanged` notice + wake byte. The notifier
    /// unregisters itself once the worker is gone.
    fn ensure_notifier(&mut self, name: &str, store: &Arc<dyn SetStore>) {
        if !self.notified_stores.insert(name.to_string()) {
            return;
        }
        let tx = Mutex::new(self.link.tx.clone());
        let wake = self.link.wake.clone();
        let store_name = name.to_string();
        store.register_notifier(Box::new(move |_epoch| {
            let sent = tx
                .lock()
                .map(|tx| {
                    tx.send(Notice::StoreChanged {
                        store: store_name.clone(),
                        at: Instant::now(),
                    })
                    .is_ok()
                })
                .unwrap_or(false);
            if sent {
                wake.wake();
            }
            sent
        }));
    }

    /// Fold a finished session's counters and drop it.
    fn reap(&mut self) {
        let mut i = 0;
        while i < self.sessions.len() {
            let Some(completed) = self.sessions[i].done else {
                i += 1;
                continue;
            };
            let sess = self.sessions.remove(i);
            let entry = sess.entry.clone();
            self.bump(&entry, |s| &s.bytes_in, sess.nb.bytes_in());
            self.bump(&entry, |s| &s.bytes_out, sess.nb.bytes_out());
            self.bump(&entry, |s| &s.frames_in, sess.nb.frames_in());
            self.bump(&entry, |s| &s.frames_out, sess.nb.frames_out());
            if let Some(bob) = sess.ctx.as_ref().and_then(|c| c.bob.as_ref()) {
                self.bump(&entry, |s| &s.decode_failures, bob.decode_failures() as u64);
            }
            if sess.counted_subscriber {
                self.shared.live_subscribers.fetch_sub(1, Ordering::Relaxed);
            }
            // `sessions_started` was bumped globally at accept and
            // per-store at routing; mirror that split on the outcome so
            // started == completed + failed holds at both levels.
            let field: fn(&ServerStats) -> &AtomicU64 = if completed {
                |s| &s.sessions_completed
            } else {
                |s| &s.sessions_failed
            };
            self.bump(&entry, field, 1);
            if let Some(m) = &self.shared.session_metrics {
                m.session.record_duration(sess.accepted.elapsed());
            }
            if sess.traced {
                trace::event(
                    Level::Info,
                    "session",
                    Some(sess.id),
                    "closed",
                    &[
                        ("completed", Value::Bool(completed)),
                        ("bytes_in", Value::U64(sess.nb.bytes_in())),
                        ("bytes_out", Value::U64(sess.nb.bytes_out())),
                        ("seconds", Value::F64(sess.accepted.elapsed().as_secs_f64())),
                    ],
                );
            }
            // Session drops here; the socket closes with it.
        }
    }

    /// Shutdown: give every session one last flush, then close it with
    /// its state-appropriate outcome. Streaming and parked subscribers
    /// end cleanly; mid-protocol sessions are cut as failed.
    fn close_all(&mut self) {
        for i in 0..self.sessions.len() {
            if self.sessions[i].done.is_some() {
                continue;
            }
            let _ = self.sessions[i].nb.flush();
            let outcome = self.sessions[i].close_outcome();
            self.sessions[i].finish(outcome);
        }
        self.reap();
    }
}

/// Spawn the acceptor thread: blocking `accept`, round-robin handoff to
/// the workers' notice queues. The shutdown flag plus a loopback connect
/// breaks it out of `accept`.
pub(crate) fn spawn_acceptor(
    listener: TcpListener,
    links: Vec<WorkerLink>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
) -> io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("pbs-net-accept".into())
        .spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let link = &links[next % links.len()];
                next = next.wrapping_add(1);
                if link.tx.send(Notice::Conn(stream)).is_err() {
                    break;
                }
                link.wake.wake();
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pair_round_trips_a_byte_and_tolerates_flooding() {
        let (reader, writer) = wake_pair().unwrap();
        let wake = WakeSender {
            writer: Arc::new(writer),
        };
        // Flood far past any socket buffer: must never block or panic.
        for _ in 0..100_000 {
            wake.wake();
        }
        let mut buf = [0u8; 4096];
        let mut drained = 0usize;
        while let Ok(n) = (&reader).read(&mut buf) {
            if n == 0 {
                break;
            }
            drained += n;
        }
        assert!(drained > 0, "at least one wake byte must arrive");
    }
}
