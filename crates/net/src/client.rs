//! The sync client: drives an [`AliceSession`] against a reconciliation
//! server and returns the reconciled difference with full transport
//! accounting.

use crate::frame::{EstimatorMsg, Frame, Hello, PROTOCOL_VERSION};
use crate::{FramedStream, NetError, TransportConfig};
use estimator::{Estimator, TowEstimator};
use pbs_core::{AliceSession, Pbs, PbsConfig, ESTIMATOR_SEED_SALT};
use std::collections::HashSet;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side configuration of one sync.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Socket/framing knobs.
    pub transport: TransportConfig,
    /// The PBS configuration proposed in the handshake.
    pub pbs: PbsConfig,
    /// Difference cardinality known a priori; `None` runs the ToW
    /// estimator exchange.
    pub known_d: Option<u64>,
    /// Base seed for every hash function of the session. Two syncs with
    /// the same seed and sets are byte-identical on the wire.
    pub seed: u64,
    /// Client-side cap on sketch/report rounds before giving up (the
    /// server enforces its own cap too). The default comfortably covers
    /// the ≤ 3 rounds the paper's parameterization targets plus splits.
    pub round_cap: u32,
    /// Largest difference parameterization the client will accept —
    /// whether from its own `known_d` or from the server's estimate reply
    /// (a hostile server must not be able to demand per-group state for a
    /// gigantic `d`). Mirrors `ServerConfig::max_d`; see that knob's
    /// documentation for the relationship to the frame-size cap.
    pub max_d: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            transport: TransportConfig::default(),
            pbs: PbsConfig::default().unlimited_rounds(),
            known_d: None,
            seed: 0x9E37_79B9,
            round_cap: 32,
            max_d: 1 << 18,
        }
    }
}

/// What a completed (or round-capped) sync observed.
#[derive(Debug, Clone)]
pub struct SyncReport {
    /// The symmetric difference `A△B` as the client recovered it.
    pub recovered: Vec<u64>,
    /// The subset of [`SyncReport::recovered`] the client held and the
    /// server lacked (`A \ B`) — shipped to the server in the final
    /// transfer.
    pub pushed: Vec<u64>,
    /// `true` when every group checksum verified — the recovery is exact.
    pub verified: bool,
    /// Sketch/report rounds executed.
    pub rounds: u32,
    /// The difference cardinality the session was parameterized with.
    pub d_param: u64,
    /// The raw ToW estimate, when the estimator exchange ran.
    pub estimated_d: Option<f64>,
    /// The protocol version the server negotiated.
    pub negotiated_version: u16,
    /// Wire bytes sent, framing included.
    pub bytes_sent: u64,
    /// Wire bytes received, framing included.
    pub bytes_received: u64,
    /// Frames sent.
    pub frames_sent: u64,
    /// Frames received.
    pub frames_received: u64,
}

/// Reconcile `set` with the server at `addr`.
///
/// On success the returned [`SyncReport`] carries `A△B`; the elements of
/// `A \ B` were pushed to the server, so afterwards both parties can hold
/// `A ∪ B` (the client by inserting `recovered ∖ pushed`, the server by
/// ingesting the transfer). `verified == false` means the round cap fired
/// before every group checksum passed — the recovery is best-effort and the
/// caller should retry with a fresh seed.
pub fn sync(
    addr: impl ToSocketAddrs,
    set: &[u64],
    config: &ClientConfig,
) -> Result<SyncReport, NetError> {
    // Out-of-universe elements can never verify (Alice's sub-universe check
    // rejects them as fakes), so a session would burn its whole round cap
    // discovering a configuration mistake. Fail fast instead.
    let universe_mask = if config.pbs.universe_bits == 64 {
        u64::MAX
    } else {
        (1u64 << config.pbs.universe_bits) - 1
    };
    if let Some(&bad) = set.iter().find(|&&e| e == 0 || e > universe_mask) {
        return Err(NetError::Protocol(format!(
            "element {bad:#x} outside the {}-bit universe",
            config.pbs.universe_bits
        )));
    }

    // `known_d == 0` means "estimate" on the wire, so a caller's
    // `Some(0)` must not desynchronize the two state machines: normalize
    // it to the same `max(1)` every other `d` path applies.
    let known_d = config.known_d.map(|d| d.max(1));
    if let Some(d) = known_d {
        if d > config.max_d {
            return Err(NetError::Protocol(format!(
                "known_d = {d} exceeds the client cap {}",
                config.max_d
            )));
        }
    }

    let stream = TcpStream::connect(addr)?;
    let mut framed = FramedStream::from_tcp(stream, &config.transport)?;

    // ---- Handshake ----
    let hello = Hello::from_config(&config.pbs, config.seed, known_d.unwrap_or(0));
    framed.send(&Frame::Hello(hello))?;
    let negotiated = match framed.recv()? {
        Frame::Hello(h) => h,
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello reply, got frame type {}",
                other.type_byte()
            )))
        }
    };
    if negotiated.version == 0 || negotiated.version > PROTOCOL_VERSION {
        return Err(NetError::Protocol(format!(
            "server negotiated unsupported version {}",
            negotiated.version
        )));
    }

    // ---- Difference parameterization ----
    let mut estimated_d = None;
    let d_param = match known_d {
        Some(d) => d,
        None => {
            let est_seed = xhash::derive_seed(config.seed, ESTIMATOR_SEED_SALT);
            let mut bank = TowEstimator::new(config.pbs.estimator_sketches, est_seed);
            bank.insert_slice(set);
            framed.send(&Frame::EstimatorExchange(EstimatorMsg::TowBank(
                bank.to_bytes(),
            )))?;
            match framed.recv()? {
                Frame::EstimatorExchange(EstimatorMsg::Estimate { d_param, d_hat }) => {
                    estimated_d = Some(d_hat);
                    d_param.max(1)
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected estimate reply, got frame type {}",
                        other.type_byte()
                    )))
                }
            }
        }
    };
    if d_param > config.max_d {
        return Err(NetError::Protocol(format!(
            "server demanded d = {d_param}, above the client cap {}",
            config.max_d
        )));
    }

    // ---- Round loop ----
    let params = Pbs::new(config.pbs).plan(d_param as usize);
    let mut alice = AliceSession::new(config.pbs, params, set, config.seed);
    let mut verified = false;
    while alice.round() < config.round_cap {
        let batch = alice.start_round();
        framed.send(&Frame::Sketches { m: params.m, batch })?;
        let reports = match framed.recv()? {
            Frame::Reports(reports) => reports,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Reports, got frame type {}",
                    other.type_byte()
                )))
            }
        };
        let status = alice.apply_reports(&reports);
        if status.all_verified {
            verified = true;
            break;
        }
    }

    // ---- Final transfer: ship A \ B so the server can converge ----
    let rounds = alice.round();
    let holdings: HashSet<u64> = set.iter().copied().collect();
    let recovered: Vec<u64> = alice.into_recovered();
    let pushed: Vec<u64> = recovered
        .iter()
        .copied()
        .filter(|e| holdings.contains(e))
        .collect();
    // The transfer is a single frame (body: type + count + 8 bytes per
    // element); give an actionable error rather than a bare size failure.
    let done_capacity = (config.transport.max_frame as u64).saturating_sub(5) / 8;
    if pushed.len() as u64 > done_capacity {
        return Err(NetError::Protocol(format!(
            "final transfer of {} elements exceeds the {}-byte frame cap \
             (max {done_capacity} elements); raise transport.max_frame",
            pushed.len(),
            config.transport.max_frame
        )));
    }
    framed.send(&Frame::Done(pushed.clone()))?;
    match framed.recv()? {
        Frame::Done(_) => {}
        other => {
            return Err(NetError::Protocol(format!(
                "expected Done ack, got frame type {}",
                other.type_byte()
            )))
        }
    }

    Ok(SyncReport {
        recovered,
        pushed,
        verified,
        rounds,
        d_param,
        estimated_d,
        negotiated_version: negotiated.version,
        bytes_sent: framed.bytes_out(),
        bytes_received: framed.bytes_in(),
        frames_sent: framed.frames_out(),
        frames_received: framed.frames_in(),
    })
}
