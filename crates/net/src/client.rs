//! The sync client: [`SyncClient`] drives an [`AliceSession`] against a
//! reconciliation server and returns the reconciled difference with full
//! transport accounting. On v2 sessions the client can address a named
//! server-side store ([`SyncClient::store`]) and pipeline several protocol
//! rounds into each request-response round trip ([`SyncClient::pipeline`]
//! with a fixed [`Pipeline::Depth`] or the per-trip adaptive
//! [`Pipeline::Auto`]). On v3 sessions a client holding the epoch of its
//! previous sync ([`SyncClient::delta_epoch`]) is served the changes since
//! that epoch as a delta stream ([`SyncReport::delta`]) instead of running
//! a reconciliation, falling back transparently when the server's
//! changelog cannot cover the epoch — and can hold the connection open as
//! a live push subscription ([`SyncClient::subscribe`], yielding a
//! [`Subscription`] iterator of [`DeltaReport`]s as the store mutates).
//!
//! ```no_run
//! use pbs_net::{Pipeline, RetryPolicy, SyncClient};
//!
//! let set: Vec<u64> = (1..=100).collect();
//! let report = SyncClient::connect("127.0.0.1:7777")?
//!     .store("inventory")
//!     .pipeline(Pipeline::Auto)
//!     .retry(RetryPolicy::default())
//!     .sync(&set)?;
//! assert!(report.verified);
//! # Ok::<(), pbs_net::NetError>(())
//! ```

use crate::frame::{EstimatorMsg, Frame, Hello, MAX_STORE_NAME, PROTOCOL_VERSION};
use crate::{FramedStream, NetError, TransportConfig};
use estimator::{Estimator, TowEstimator};
use pbs_core::{AliceSession, Pbs, PbsConfig, ESTIMATOR_SEED_SALT};
use std::collections::HashSet;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How many protocol rounds ride in each sketch/report round trip.
///
/// The builder-level view of the [`ClientConfig::pipeline`] /
/// [`ClientConfig::pipeline_auto`] pair: a fixed depth ships that many
/// rounds' sketches per frame, [`Pipeline::Auto`] requests the server's
/// full grant and resizes every trip from the previous trip's
/// layer-verification rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// Fixed depth per round trip; `Depth(1)` is the classic
    /// one-round-per-trip protocol. Clamped to ≥ 1.
    Depth(u32),
    /// Adaptive per-trip depth under the server's grant
    /// ([`pbs_core::AliceSession::next_pipeline_depth`]).
    Auto,
}

/// Client-side configuration of one sync.
///
/// Construct via [`ClientConfig::builder`] (or start from
/// [`ClientConfig::default`] and assign fields); the struct is
/// `#[non_exhaustive]` so new knobs can ship without breaking callers.
/// Most code never touches it directly — [`SyncClient`] carries one
/// internally and exposes the same knobs as builder methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClientConfig {
    /// Socket/framing knobs.
    pub transport: TransportConfig,
    /// The PBS configuration proposed in the handshake.
    pub pbs: PbsConfig,
    /// Difference cardinality known a priori; `None` runs the ToW
    /// estimator exchange.
    pub known_d: Option<u64>,
    /// Base seed for every hash function of the session. Two syncs with
    /// the same seed and sets are byte-identical on the wire.
    pub seed: u64,
    /// Client-side cap on sketch/report *protocol rounds* before giving up
    /// (the server enforces its own cap too; pipelined layers count
    /// individually on both sides). The default comfortably covers the
    /// ≤ 3 rounds the paper's parameterization targets plus splits.
    pub round_cap: u32,
    /// Largest difference parameterization the client will accept —
    /// whether from its own `known_d` or from the server's estimate reply
    /// (a hostile server must not be able to demand per-group state for a
    /// gigantic `d`). Mirrors `ServerConfig::max_d`; see that knob's
    /// documentation for the relationship to the frame-size cap.
    pub max_d: u64,
    /// Name of the server-side store to reconcile against. The empty
    /// string is the default store and works on any server; a non-empty
    /// name requires a v2 session — the sync aborts if the server
    /// negotiates the session down to v1.
    pub store: String,
    /// Number of protocol rounds pipelined into each sketch/report round
    /// trip. 1 (the default) is the classic one-round-per-trip protocol;
    /// higher depths speculatively ship the next rounds' sketches in the
    /// same frame, trading bytes for round trips (see
    /// [`pbs_core::AliceSession::start_rounds`]). Negotiated in the
    /// handshake: the session uses `min` of this request and the server's
    /// grant (`ServerConfig::max_pipeline_depth`, default 4), and falls
    /// back to 1 when the server negotiates v1. Ignored when
    /// [`ClientConfig::pipeline_auto`] is set.
    pub pipeline: u32,
    /// Adaptive pipeline depth: request the server's full grant in the
    /// handshake, start the session at the granted depth, then resize every
    /// trip from the previous trip's layer-verification rate
    /// ([`pbs_core::AliceSession::next_pipeline_depth`] — deepen toward the
    /// grant while every layer decodes, back off toward 1 while most
    /// fail). `pbs-sync --pipeline auto`.
    pub pipeline_auto: bool,
    /// Protocol version to propose, normally [`PROTOCOL_VERSION`]. Set to
    /// 1 to emulate a legacy client (no store routing, no pipelining).
    pub protocol_version: u16,
    /// The store epoch this client last synced at. `Some(e)` asks a v3
    /// server for a delta subscription: when the store's changelog still
    /// covers `e`, the server streams exactly the changes since `e`
    /// ([`SyncReport::delta`]) instead of reconciling — O(|changes|) bytes
    /// — and when it cannot, the sync transparently falls back to a full
    /// reconciliation ([`SyncReport::delta_fallback`]). Requires
    /// `protocol_version >= 3`; the epoch to pass is the
    /// [`SyncReport::epoch`] of the previous sync against the same store.
    pub delta_epoch: Option<u64>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            transport: TransportConfig::default(),
            pbs: PbsConfig::default().unlimited_rounds(),
            known_d: None,
            seed: 0x9E37_79B9,
            round_cap: 32,
            max_d: 1 << 18,
            store: String::new(),
            pipeline: 1,
            pipeline_auto: false,
            protocol_version: PROTOCOL_VERSION,
            delta_epoch: None,
        }
    }
}

impl ClientConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }
}

/// Builder for [`ClientConfig`] — the only way to construct one outside
/// this crate now that the struct is `#[non_exhaustive]` (field-by-field
/// assignment onto a `default()` still works too).
#[derive(Debug, Clone, Default)]
pub struct ConfigBuilder {
    config: ClientConfig,
}

impl ConfigBuilder {
    /// Socket/framing knobs ([`ClientConfig::transport`]).
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.config.transport = transport;
        self
    }

    /// The PBS configuration proposed in the handshake
    /// ([`ClientConfig::pbs`]).
    pub fn pbs(mut self, pbs: PbsConfig) -> Self {
        self.config.pbs = pbs;
        self
    }

    /// A-priori difference cardinality ([`ClientConfig::known_d`];
    /// the default `None` runs the estimator exchange).
    pub fn known_d(mut self, d: u64) -> Self {
        self.config.known_d = Some(d);
        self
    }

    /// Session hash seed ([`ClientConfig::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Client-side protocol-round cap ([`ClientConfig::round_cap`]).
    pub fn round_cap(mut self, cap: u32) -> Self {
        self.config.round_cap = cap;
        self
    }

    /// Largest accepted difference parameterization
    /// ([`ClientConfig::max_d`]).
    pub fn max_d(mut self, max_d: u64) -> Self {
        self.config.max_d = max_d;
        self
    }

    /// Name of the server-side store to address
    /// ([`ClientConfig::store`]).
    pub fn store(mut self, name: impl Into<String>) -> Self {
        self.config.store = name.into();
        self
    }

    /// Pipeline depth policy ([`ClientConfig::pipeline`] /
    /// [`ClientConfig::pipeline_auto`]).
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        match pipeline {
            Pipeline::Depth(depth) => {
                self.config.pipeline = depth.max(1);
                self.config.pipeline_auto = false;
            }
            Pipeline::Auto => self.config.pipeline_auto = true,
        }
        self
    }

    /// Protocol version to propose
    /// ([`ClientConfig::protocol_version`]).
    pub fn protocol_version(mut self, version: u16) -> Self {
        self.config.protocol_version = version;
        self
    }

    /// Epoch of the previous sync, requesting a v3 delta stream
    /// ([`ClientConfig::delta_epoch`]).
    pub fn delta_epoch(mut self, epoch: u64) -> Self {
        self.config.delta_epoch = Some(epoch);
        self
    }

    /// Finish into the configuration.
    pub fn build(self) -> ClientConfig {
        self.config
    }
}

/// Outcome of a delta-subscription sync ([`SyncReport::delta`]): the net
/// changes between the client's cached epoch and the server's current one,
/// collapsed across batches (an element added then removed nets out).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// The epoch the client subscribed from.
    pub from_epoch: u64,
    /// The epoch the stream ended at — the next sync's `delta_epoch`.
    pub to_epoch: u64,
    /// Net elements to insert, sorted.
    pub added: Vec<u64>,
    /// Net elements to remove, sorted.
    pub removed: Vec<u64>,
    /// `DeltaBatch` frames received.
    pub batches: u64,
}

impl DeltaReport {
    /// Apply the net changes to a local element set (removes, then adds).
    pub fn apply_to(&self, set: &mut HashSet<u64>) {
        for e in &self.removed {
            set.remove(e);
        }
        set.extend(self.added.iter().copied());
    }
}

/// Accumulator folding a delta stream into net add/remove sets, in arrival
/// order: a remove cancels an earlier add and vice versa (stream order is
/// changelog order, so the fold is exact). This is *the* collapse rule of
/// the v3 client — the `delta_sync` bench uses the same type, so the gated
/// metric always measures the shipped algorithm.
#[derive(Debug, Default)]
pub struct DeltaFold {
    added: HashSet<u64>,
    removed: HashSet<u64>,
    batches: u64,
}

impl DeltaFold {
    /// An empty fold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one `DeltaBatch` frame's lists, in stream order.
    pub fn fold(
        &mut self,
        added: impl IntoIterator<Item = u64>,
        removed: impl IntoIterator<Item = u64>,
    ) {
        self.batches += 1;
        for e in removed {
            if !self.added.remove(&e) {
                self.removed.insert(e);
            }
        }
        for e in added {
            self.removed.remove(&e);
            self.added.insert(e);
        }
    }

    /// Net changed elements so far (adds plus removes).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// `true` when the folded stream nets out to no change.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish into a sorted [`DeltaReport`] spanning the given epochs.
    pub fn into_report(self, from_epoch: u64, to_epoch: u64) -> DeltaReport {
        let mut added: Vec<u64> = self.added.into_iter().collect();
        let mut removed: Vec<u64> = self.removed.into_iter().collect();
        added.sort_unstable();
        removed.sort_unstable();
        DeltaReport {
            from_epoch,
            to_epoch,
            added,
            removed,
            batches: self.batches,
        }
    }
}

/// Client-side wall-clock breakdown of one sync, measured around the
/// protocol phases of [`sync`]. The server records its own half of the
/// same phases into `pbs_server_phase_seconds` (see
/// `docs/OBSERVABILITY.md`), so the two views can be laid side by side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncPhases {
    /// TCP connect.
    pub connect: Duration,
    /// `Hello` exchange: request sent to negotiated reply validated.
    pub handshake: Duration,
    /// Estimator exchange; ~zero when `known_d` skipped it.
    pub estimate: Duration,
    /// The sketch/report round loop.
    pub rounds: Duration,
    /// Final element transfer and its ack; zero on delta syncs.
    pub transfer: Duration,
    /// Delta catch-up stream; zero on full reconciliations, and on
    /// fallbacks it covers only the refused catch-up attempt.
    pub delta: Duration,
    /// The whole call, connect included.
    pub total: Duration,
}

/// What a completed (or round-capped) sync observed.
#[derive(Debug, Clone)]
pub struct SyncReport {
    /// The symmetric difference `A△B` as the client recovered it.
    pub recovered: Vec<u64>,
    /// The subset of [`SyncReport::recovered`] the client held and the
    /// server lacked (`A \ B`) — shipped to the server in the final
    /// transfer.
    pub pushed: Vec<u64>,
    /// `true` when every group checksum verified — the recovery is exact.
    pub verified: bool,
    /// Protocol rounds executed (pipelined layers counted individually).
    pub rounds: u32,
    /// Sketch/report round trips spent — equals `rounds` unless rounds
    /// were pipelined.
    pub round_trips: u32,
    /// The difference cardinality the session was parameterized with.
    pub d_param: u64,
    /// The raw ToW estimate, when the estimator exchange ran.
    pub estimated_d: Option<f64>,
    /// The protocol version the server negotiated.
    pub negotiated_version: u16,
    /// The epoch baseline this sync established, when the server's store
    /// keeps epochs (v3): after a delta sync, the epoch the stream ended
    /// at; after a full reconciliation, the epoch of the snapshot it ran
    /// against. Feed it back as [`ClientConfig::delta_epoch`] next time.
    pub epoch: Option<u64>,
    /// The delta stream this sync was served from, when the requested
    /// [`ClientConfig::delta_epoch`] was granted. `None` on full
    /// reconciliations.
    pub delta: Option<DeltaReport>,
    /// `true` when a requested delta subscription could not be served
    /// (changelog trimmed, pre-v3 server, epoch-less store) and the sync
    /// fell back to a full reconciliation.
    pub delta_fallback: bool,
    /// Wire bytes sent, framing included.
    pub bytes_sent: u64,
    /// Wire bytes received, framing included.
    pub bytes_received: u64,
    /// Frames sent.
    pub frames_sent: u64,
    /// Frames received.
    pub frames_received: u64,
    /// Wall-clock breakdown by protocol phase.
    pub phases: SyncPhases,
}

/// A configured connection target: the primary client entry point.
///
/// Built fluently from an address, then driven with [`SyncClient::sync`]
/// (one reconciliation or delta sync per call, with optional bounded
/// retry) or [`SyncClient::subscribe`] (a live push subscription):
///
/// ```no_run
/// use pbs_net::{Pipeline, RetryPolicy, SyncClient};
///
/// let set: Vec<u64> = (1..=100).collect();
/// let client = SyncClient::connect("127.0.0.1:7777")?
///     .store("inventory")
///     .pipeline(Pipeline::Auto)
///     .retry(RetryPolicy::default());
/// let report = client.sync(&set)?;
/// for delta in client.subscribe(report.epoch.unwrap())? {
///     let delta = delta?;
///     println!("+{} -{} @{}", delta.added.len(), delta.removed.len(), delta.to_epoch);
/// }
/// # Ok::<(), pbs_net::NetError>(())
/// ```
///
/// Every call opens its own TCP connection, so one client can be reused
/// (and shared immutably) across any number of syncs.
#[derive(Debug, Clone)]
pub struct SyncClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    retry: Option<RetryPolicy>,
}

impl SyncClient {
    /// Resolve `addr` and build a client with the default configuration.
    ///
    /// Name resolution happens once, here; the sockets themselves are
    /// opened per [`SyncClient::sync`] / [`SyncClient::subscribe`] call.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )));
        }
        Ok(SyncClient {
            addrs,
            config: ClientConfig::default(),
            retry: None,
        })
    }

    /// Address a named server-side store ([`ClientConfig::store`]).
    pub fn store(mut self, name: impl Into<String>) -> Self {
        self.config.store = name.into();
        self
    }

    /// Pipeline depth policy ([`Pipeline`]).
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        match pipeline {
            Pipeline::Depth(depth) => {
                self.config.pipeline = depth.max(1);
                self.config.pipeline_auto = false;
            }
            Pipeline::Auto => self.config.pipeline_auto = true,
        }
        self
    }

    /// Retry transient failures under `policy`
    /// (see [`sync_with_retry`]; without this, failures surface on the
    /// first attempt).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Session hash seed ([`ClientConfig::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// A-priori difference cardinality, skipping the estimator exchange
    /// ([`ClientConfig::known_d`]).
    pub fn known_d(mut self, d: u64) -> Self {
        self.config.known_d = Some(d);
        self
    }

    /// Largest accepted difference parameterization
    /// ([`ClientConfig::max_d`]).
    pub fn max_d(mut self, max_d: u64) -> Self {
        self.config.max_d = max_d;
        self
    }

    /// Client-side protocol-round cap ([`ClientConfig::round_cap`]).
    pub fn round_cap(mut self, cap: u32) -> Self {
        self.config.round_cap = cap;
        self
    }

    /// Protocol version to propose
    /// ([`ClientConfig::protocol_version`]).
    pub fn protocol_version(mut self, version: u16) -> Self {
        self.config.protocol_version = version;
        self
    }

    /// Socket/framing knobs ([`ClientConfig::transport`]).
    pub fn transport(mut self, transport: TransportConfig) -> Self {
        self.config.transport = transport;
        self
    }

    /// Epoch of the previous sync, requesting a v3 delta stream
    /// ([`ClientConfig::delta_epoch`]).
    pub fn delta_epoch(mut self, epoch: u64) -> Self {
        self.config.delta_epoch = Some(epoch);
        self
    }

    /// Replace the whole configuration — the escape hatch for knobs
    /// without a dedicated builder method (PBS parameters, a
    /// pre-assembled [`ClientConfig`]).
    pub fn config(mut self, config: ClientConfig) -> Self {
        self.config = config;
        self
    }

    /// The configuration a [`SyncClient::sync`] call would run with.
    pub fn config_ref(&self) -> &ClientConfig {
        &self.config
    }

    /// Run one sync (see the free [`sync`] for the report's semantics),
    /// retrying transient failures when a policy was installed with
    /// [`SyncClient::retry`].
    pub fn sync(&self, set: &[u64]) -> Result<SyncReport, NetError> {
        match &self.retry {
            Some(policy) => {
                sync_with_retry(&self.addrs[..], set, &self.config, policy).map(|(r, _)| r)
            }
            None => sync(&self.addrs[..], set, &self.config),
        }
    }

    /// Open a live push subscription from `epoch`.
    ///
    /// The v3 handshake runs with `delta_epoch = Some(epoch)`; the
    /// server's catch-up delta stream (everything between `epoch` and its
    /// current state) becomes the first item the returned [`Subscription`]
    /// yields, and a `Subscribe` frame then parks the session in the
    /// server's streaming state: every subsequent store mutation is pushed
    /// as another [`DeltaReport`]. Pass the [`SyncReport::epoch`] of a
    /// previous sync against the same store (a fresh client therefore
    /// syncs first, then subscribes from the epoch that sync returned).
    ///
    /// Fails with [`NetError::Remote`]/[`NetError::Protocol`] when the
    /// server cannot serve the epoch (changelog trimmed, epoch-less store,
    /// pre-v3 peer) — run a full [`SyncClient::sync`] and subscribe from
    /// its epoch instead. Retry policies do not apply: a dropped
    /// subscription must not silently skip epochs.
    pub fn subscribe(&self, epoch: u64) -> Result<Subscription, NetError> {
        let config = &self.config;
        if config.protocol_version < 3 {
            return Err(NetError::Protocol(
                "subscriptions require protocol v3".into(),
            ));
        }
        if config.store.len() > MAX_STORE_NAME {
            return Err(NetError::Protocol(format!(
                "store name of {} bytes exceeds the {MAX_STORE_NAME}-byte wire limit",
                config.store.len()
            )));
        }

        let stream = TcpStream::connect(&self.addrs[..])?;
        let mut framed = FramedStream::from_tcp(stream, &config.transport)?;

        let mut hello = Hello::from_config(&config.pbs, config.seed, 0)
            .with_store(config.store.clone())
            .with_pipeline(1);
        hello.delta_epoch = Some(epoch);
        hello.version = config.protocol_version;
        framed.send(&Frame::Hello(hello))?;
        let negotiated = match framed.recv()? {
            Frame::Hello(h) => h,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Hello reply, got frame type {}",
                    other.type_byte()
                )))
            }
        };
        if negotiated.version < 3 {
            return Err(NetError::Protocol(format!(
                "server negotiated v{} — subscriptions require v3",
                negotiated.version
            )));
        }

        // Catch-up stream: the deltas between our epoch and the server's
        // current one. A `FullResyncRequired` here means the changelog no
        // longer covers `epoch` — subscribing would skip changes, so the
        // caller must reconcile first.
        let mut fold = DeltaFold::new();
        let current = loop {
            match framed.recv()? {
                Frame::DeltaBatch { added, removed, .. } => fold.fold(added, removed),
                Frame::DeltaDone { epoch } => break epoch,
                Frame::FullResyncRequired { epoch } => {
                    return Err(NetError::Protocol(format!(
                        "server cannot serve deltas since epoch {epoch}; \
                         run a full sync and subscribe from its epoch"
                    )));
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected delta stream, got frame type {}",
                        other.type_byte()
                    )));
                }
            }
        };

        // Hold the session open: from here the server pushes.
        framed.send(&Frame::Subscribe { epoch: current })?;
        Ok(Subscription {
            framed,
            epoch: current,
            initial: Some(fold.into_report(epoch, current)),
            done: false,
        })
    }
}

/// A live push subscription (see [`SyncClient::subscribe`]): a blocking
/// iterator of the delta streams the server pushes as the store mutates.
///
/// The first item is the catch-up delta between the subscribed epoch and
/// the server's state at subscription time (possibly empty — it still
/// carries the epoch baseline). Each subsequent item covers one or more
/// coalesced store mutations. Keepalive `Ping`s are answered internally;
/// the transport's read timeout bounds how long `next()` blocks without
/// any server traffic (the server pings within its keepalive interval, so
/// a healthy but idle subscription never times out as long as that
/// interval is below the client's read timeout).
///
/// Iteration ends (`None`) when the server closes the stream — on server
/// shutdown, for instance. A backpressure eviction
/// (`FullResyncRequired`) or any transport/protocol failure yields one
/// final `Err` and then ends; after an error the client's cached state is
/// only valid up to [`Subscription::epoch`], so reconcile before
/// resubscribing.
#[derive(Debug)]
pub struct Subscription {
    framed: FramedStream<TcpStream>,
    epoch: u64,
    initial: Option<DeltaReport>,
    done: bool,
}

impl Subscription {
    /// The epoch the stream has advanced to — the `delta_epoch` to resume
    /// from after a disconnect.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total wire bytes received on this subscription so far (framing
    /// included; handshake and catch-up included).
    pub fn bytes_received(&self) -> u64 {
        self.framed.bytes_in()
    }

    /// Frames received on this subscription so far (handshake and
    /// catch-up included).
    pub fn frames_received(&self) -> u64 {
        self.framed.frames_in()
    }

    fn fail(&mut self, err: NetError) -> Option<Result<DeltaReport, NetError>> {
        self.done = true;
        Some(Err(err))
    }
}

impl Iterator for Subscription {
    type Item = Result<DeltaReport, NetError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(initial) = self.initial.take() {
            return Some(Ok(initial));
        }
        let mut fold = DeltaFold::new();
        loop {
            match self.framed.recv() {
                Ok(Frame::DeltaBatch { added, removed, .. }) => fold.fold(added, removed),
                Ok(Frame::DeltaDone { epoch }) => {
                    let report = fold.into_report(self.epoch, epoch);
                    self.epoch = epoch;
                    return Some(Ok(report));
                }
                Ok(Frame::Ping { nonce }) => {
                    // Liveness probe from an idle server; answering is what
                    // keeps the subscription alive.
                    if let Err(e) = self.framed.send(&Frame::Pong { nonce }) {
                        return self.fail(e);
                    }
                }
                Ok(Frame::FullResyncRequired { epoch }) => {
                    return self.fail(NetError::Protocol(format!(
                        "subscription evicted; full resync required (server epoch {epoch})"
                    )));
                }
                Ok(other) => {
                    return self.fail(NetError::Protocol(format!(
                        "unexpected frame type {} on the subscription stream",
                        other.type_byte()
                    )));
                }
                // A clean close mid-silence is the server shutting the
                // stream down, not a failure.
                Err(NetError::Io(e))
                    if e.kind() == std::io::ErrorKind::UnexpectedEof && fold.is_empty() =>
                {
                    self.done = true;
                    return None;
                }
                Err(e) => return self.fail(e),
            }
        }
    }
}

/// Reconcile `set` with the server at `addr`.
///
/// The free-function form predating [`SyncClient`]; prefer
/// `SyncClient::connect(addr)?.sync(&set)`, which adds fluent
/// configuration, retry policies, and subscriptions on the same type.
///
/// On success the returned [`SyncReport`] carries `A△B`; the elements of
/// `A \ B` were pushed to the server, so afterwards both parties can hold
/// `A ∪ B` (the client by inserting `recovered ∖ pushed`, the server by
/// ingesting the transfer). `verified == false` means the round cap fired
/// before every group checksum passed — the recovery is best-effort and the
/// caller should retry with a fresh seed.
pub fn sync(
    addr: impl ToSocketAddrs,
    set: &[u64],
    config: &ClientConfig,
) -> Result<SyncReport, NetError> {
    // Out-of-universe elements can never verify (Alice's sub-universe check
    // rejects them as fakes), so a session would burn its whole round cap
    // discovering a configuration mistake. Fail fast instead.
    let universe_mask = if config.pbs.universe_bits == 64 {
        u64::MAX
    } else {
        (1u64 << config.pbs.universe_bits) - 1
    };
    if let Some(&bad) = set.iter().find(|&&e| e == 0 || e > universe_mask) {
        return Err(NetError::Protocol(format!(
            "element {bad:#x} outside the {}-bit universe",
            config.pbs.universe_bits
        )));
    }

    // `known_d == 0` means "estimate" on the wire, so a caller's
    // `Some(0)` must not desynchronize the two state machines: normalize
    // it to the same `max(1)` every other `d` path applies.
    let known_d = config.known_d.map(|d| d.max(1));
    if let Some(d) = known_d {
        if d > config.max_d {
            return Err(NetError::Protocol(format!(
                "known_d = {d} exceeds the client cap {}",
                config.max_d
            )));
        }
    }

    if config.protocol_version == 0 || config.protocol_version > PROTOCOL_VERSION {
        return Err(NetError::Protocol(format!(
            "protocol_version must be in 1..={PROTOCOL_VERSION}"
        )));
    }
    if !config.store.is_empty() && config.protocol_version < 2 {
        return Err(NetError::Protocol(
            "named stores require protocol v2".into(),
        ));
    }
    if config.delta_epoch.is_some() && config.protocol_version < 3 {
        return Err(NetError::Protocol(
            "delta subscriptions require protocol v3".into(),
        ));
    }
    // The encoder would byte-truncate an over-long name (possibly
    // mid-codepoint), silently addressing a *different* store than the
    // caller asked for — refuse up front instead, mirroring the registry's
    // registration-side check.
    if config.store.len() > MAX_STORE_NAME {
        return Err(NetError::Protocol(format!(
            "store name of {} bytes exceeds the {MAX_STORE_NAME}-byte wire limit",
            config.store.len()
        )));
    }

    let clock = Instant::now();
    let mut phases = SyncPhases::default();
    let stream = TcpStream::connect(addr)?;
    let mut framed = FramedStream::from_tcp(stream, &config.transport)?;
    phases.connect = clock.elapsed();
    let mut mark = Instant::now();

    // ---- Handshake ----
    // An adaptive-pipeline client asks for the largest representable depth;
    // the grant that comes back is the server's own cap, the ceiling the
    // per-trip controller then works under.
    let requested_depth = if config.pipeline_auto {
        u8::MAX as u32
    } else {
        config.pipeline.max(1)
    };
    let mut hello = Hello::from_config(&config.pbs, config.seed, known_d.unwrap_or(0))
        .with_store(config.store.clone())
        .with_pipeline(requested_depth);
    hello.delta_epoch = config.delta_epoch;
    hello.version = config.protocol_version;
    framed.send(&Frame::Hello(hello))?;
    let negotiated = match framed.recv()? {
        Frame::Hello(h) => h,
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello reply, got frame type {}",
                other.type_byte()
            )))
        }
    };
    if negotiated.version == 0 || negotiated.version > config.protocol_version {
        return Err(NetError::Protocol(format!(
            "server negotiated unsupported version {}",
            negotiated.version
        )));
    }
    // A downgraded session cannot address a named store — the server would
    // silently serve its default set instead of the one we asked for.
    if negotiated.version < 2 && !config.store.is_empty() {
        return Err(NetError::Protocol(format!(
            "server only speaks v{} and cannot route store {:?}",
            negotiated.version, config.store
        )));
    }
    // Pipelining is a v2 semantic negotiated like the version: the server
    // grants at most its own per-frame cap, and the session uses the
    // granted depth — a deeper request degrades instead of having a
    // mid-session frame refused. v1 sessions are always unpipelined.
    let grant = if negotiated.version >= 2 {
        requested_depth.min(negotiated.pipeline.max(1) as u32)
    } else {
        1
    };
    phases.handshake = mark.elapsed();
    mark = Instant::now();

    // ---- Delta subscription (v3) ----
    // When the handshake carried our cached epoch and the session stayed
    // v3, the server's very next frames settle the question: a granted
    // subscription streams DeltaBatch frames ending in DeltaDone (and the
    // sync is over — no reconciliation ran), a FullResyncRequired drops us
    // into the classic protocol below.
    let mut delta_fallback = false;
    if let Some(since) = config.delta_epoch {
        if negotiated.version >= 3 {
            let mut fold = DeltaFold::new();
            loop {
                match framed.recv()? {
                    Frame::DeltaBatch {
                        added: batch_added,
                        removed: batch_removed,
                        ..
                    } => fold.fold(batch_added, batch_removed),
                    Frame::DeltaDone { epoch } => {
                        phases.delta = mark.elapsed();
                        phases.total = clock.elapsed();
                        return Ok(SyncReport {
                            recovered: Vec::new(),
                            pushed: Vec::new(),
                            verified: true,
                            rounds: 0,
                            round_trips: 0,
                            d_param: 0,
                            estimated_d: None,
                            negotiated_version: negotiated.version,
                            epoch: Some(epoch),
                            delta: Some(fold.into_report(since, epoch)),
                            delta_fallback: false,
                            bytes_sent: framed.bytes_out(),
                            bytes_received: framed.bytes_in(),
                            frames_sent: framed.frames_out(),
                            frames_received: framed.frames_in(),
                            phases,
                        });
                    }
                    Frame::FullResyncRequired { .. } => {
                        delta_fallback = true;
                        break;
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "expected delta stream, got frame type {}",
                            other.type_byte()
                        )))
                    }
                }
            }
        } else {
            // A pre-v3 responder cannot serve deltas at all; the classic
            // session below is the fallback.
            delta_fallback = true;
        }
        phases.delta = mark.elapsed();
        mark = Instant::now();
    }

    // ---- Difference parameterization ----
    let mut estimated_d = None;
    let d_param = match known_d {
        Some(d) => d,
        None => {
            let est_seed = xhash::derive_seed(config.seed, ESTIMATOR_SEED_SALT);
            let mut bank = TowEstimator::new(config.pbs.estimator_sketches, est_seed);
            bank.insert_slice(set);
            framed.send(&Frame::EstimatorExchange(EstimatorMsg::TowBank(
                bank.to_bytes(),
            )))?;
            match framed.recv()? {
                Frame::EstimatorExchange(EstimatorMsg::Estimate { d_param, d_hat }) => {
                    estimated_d = Some(d_hat);
                    d_param.max(1)
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected estimate reply, got frame type {}",
                        other.type_byte()
                    )))
                }
            }
        }
    };
    if d_param > config.max_d {
        return Err(NetError::Protocol(format!(
            "server demanded d = {d_param}, above the client cap {}",
            config.max_d
        )));
    }
    phases.estimate = mark.elapsed();
    mark = Instant::now();

    // ---- Round loop ----
    let params = Pbs::new(config.pbs).plan(d_param as usize);
    let mut alice = AliceSession::new(config.pbs, params, set, config.seed);
    let mut verified = false;
    while alice.round() < config.round_cap {
        // Pipelined: one frame speculatively carries the next `layers`
        // rounds' sketches; the server answers every layer in one reply.
        // In auto mode the depth is re-picked every trip from the previous
        // trip's layer-verification rate, never above the grant.
        let depth = if config.pipeline_auto {
            alice.next_pipeline_depth(grant)
        } else {
            grant
        };
        let layers = depth.min(config.round_cap - alice.round());
        let batch = alice.start_rounds(layers);
        framed.send(&Frame::Sketches { m: params.m, batch })?;
        let reports = match framed.recv()? {
            Frame::Reports(reports) => reports,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Reports, got frame type {}",
                    other.type_byte()
                )))
            }
        };
        let status = alice.apply_reports(&reports);
        if status.all_verified {
            verified = true;
            break;
        }
    }

    phases.rounds = mark.elapsed();
    mark = Instant::now();

    // ---- Final transfer: ship A \ B so the server can converge ----
    let rounds = alice.round();
    let round_trips = alice.round_trips();
    let holdings: HashSet<u64> = set.iter().copied().collect();
    let recovered: Vec<u64> = alice.into_recovered();
    let pushed: Vec<u64> = recovered
        .iter()
        .copied()
        .filter(|e| holdings.contains(e))
        .collect();
    // The transfer is a single frame (body: type + count + 8 bytes per
    // element); give an actionable error rather than a bare size failure.
    let done_capacity = (config.transport.max_frame as u64).saturating_sub(5) / 8;
    if pushed.len() as u64 > done_capacity {
        return Err(NetError::Protocol(format!(
            "final transfer of {} elements exceeds the {}-byte frame cap \
             (max {done_capacity} elements); raise transport.max_frame",
            pushed.len(),
            config.transport.max_frame
        )));
    }
    framed.send(&Frame::Done(pushed.clone()))?;
    // On a v3 session against an epoch-capable store the ack is a
    // DeltaDone carrying the epoch baseline this reconciliation
    // established — what the next sync passes as `delta_epoch`.
    let epoch = match framed.recv()? {
        Frame::Done(_) => None,
        Frame::DeltaDone { epoch } => Some(epoch),
        other => {
            return Err(NetError::Protocol(format!(
                "expected Done ack, got frame type {}",
                other.type_byte()
            )))
        }
    };

    phases.transfer = mark.elapsed();
    phases.total = clock.elapsed();

    Ok(SyncReport {
        recovered,
        pushed,
        verified,
        rounds,
        round_trips,
        d_param,
        estimated_d,
        negotiated_version: negotiated.version,
        epoch,
        delta: None,
        delta_fallback,
        bytes_sent: framed.bytes_out(),
        bytes_received: framed.bytes_in(),
        frames_sent: framed.frames_out(),
        frames_received: framed.frames_in(),
        phases,
    })
}

/// Bounded retry with exponential backoff and deterministic jitter, for
/// riding out transient connect/IO failures — most importantly a server
/// restarting into its recovered state (`pbs-sync --retry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first included (1 = no retry). Clamped to ≥ 1.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter sequence (so tests and reproduced
    /// runs sleep identically). Each delay is drawn uniformly from
    /// `[backoff/2, backoff]` — "equal jitter", which de-synchronizes a
    /// fleet of clients hammering a restarting server while keeping the
    /// exponential envelope.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before attempt `attempt + 1` (`attempt` is
    /// 1-based: pass 1 after the first failure). Advances `rng` (xorshift).
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let full = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay);
        let mut x = (*rng).max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        let half = full / 2;
        let span_nanos = full.saturating_sub(half).as_nanos().max(1) as u64;
        half + Duration::from_nanos(x % span_nanos)
    }
}

/// `true` for failures worth retrying: connection-level I/O errors
/// (refused, reset, aborted, timed out, broken pipe, unexpected EOF) — the
/// shapes a restarting or briefly overloaded server produces. Protocol
/// violations, peer-reported errors, and framing corruption are never
/// transient: retrying them would re-run a sync that is wrong, not unlucky.
pub fn is_transient(err: &NetError) -> bool {
    use std::io::ErrorKind;
    match err {
        NetError::Io(e) => matches!(
            e.kind(),
            ErrorKind::ConnectionRefused
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::NotConnected
                | ErrorKind::BrokenPipe
                | ErrorKind::TimedOut
                | ErrorKind::WouldBlock
                | ErrorKind::UnexpectedEof
                | ErrorKind::Interrupted
        ),
        NetError::Frame(_) | NetError::Remote { .. } | NetError::Protocol(_) => false,
    }
}

/// [`sync`] with bounded retry — the free-function form of
/// [`SyncClient::retry`], kept for callers not yet on the builder.
///
/// Transient failures ([`is_transient`])
/// back off exponentially (with jitter) and try again, up to
/// [`RetryPolicy::attempts`]; anything else — and the last transient
/// failure once attempts are exhausted — is returned as-is. On success the
/// report comes back with the 1-based attempt number that succeeded.
pub fn sync_with_retry<A: ToSocketAddrs>(
    addr: A,
    set: &[u64],
    config: &ClientConfig,
    policy: &RetryPolicy,
) -> Result<(SyncReport, u32), NetError> {
    let attempts = policy.attempts.max(1);
    let mut rng = policy.jitter_seed;
    let mut attempt = 1;
    loop {
        match sync(&addr, set, config) {
            Ok(report) => return Ok((report, attempt)),
            Err(e) if attempt < attempts && is_transient(&e) => {
                let delay = policy.backoff(attempt, &mut rng);
                eprintln!(
                    "pbs-sync: transient failure on attempt {attempt}/{attempts}: {e}; \
                     retrying in {delay:?}"
                );
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        let io = |kind| NetError::Io(std::io::Error::new(kind, "x"));
        assert!(is_transient(&io(std::io::ErrorKind::ConnectionRefused)));
        assert!(is_transient(&io(std::io::ErrorKind::ConnectionReset)));
        assert!(is_transient(&io(std::io::ErrorKind::UnexpectedEof)));
        assert!(is_transient(&io(std::io::ErrorKind::TimedOut)));
        assert!(!is_transient(&io(std::io::ErrorKind::PermissionDenied)));
        assert!(!is_transient(&NetError::Protocol("bad".into())));
        assert!(!is_transient(&NetError::Frame(crate::FrameError::BadCrc)));
        assert!(!is_transient(&NetError::Remote {
            code: crate::frame::ErrorCode::Internal,
            message: "boom".into(),
        }));
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
            jitter_seed: 42,
        };
        let mut rng = policy.jitter_seed;
        let mut prev_full = Duration::ZERO;
        for attempt in 1..=8u32 {
            let d = policy.backoff(attempt, &mut rng);
            let full = policy
                .base_delay
                .saturating_mul(1u32 << (attempt - 1).min(20))
                .min(policy.max_delay);
            assert!(
                d >= full / 2 && d <= full,
                "attempt {attempt}: {d:?} vs {full:?}"
            );
            assert!(full >= prev_full, "envelope is monotone");
            prev_full = full;
        }
        assert_eq!(prev_full, Duration::from_secs(2), "cap reached");
        // Determinism: the same seed replays the same delays.
        let (mut a, mut b) = (policy.jitter_seed, policy.jitter_seed);
        for attempt in 1..=5 {
            assert_eq!(
                policy.backoff(attempt, &mut a),
                policy.backoff(attempt, &mut b)
            );
        }
    }

    #[test]
    fn builder_mirrors_field_assignment() {
        let built = ClientConfig::builder()
            .store("inventory")
            .pipeline(Pipeline::Depth(3))
            .seed(7)
            .known_d(20)
            .max_d(1 << 10)
            .round_cap(9)
            .protocol_version(2)
            .build();
        assert_eq!(built.store, "inventory");
        assert_eq!(built.pipeline, 3);
        assert!(!built.pipeline_auto);
        assert_eq!(built.seed, 7);
        assert_eq!(built.known_d, Some(20));
        assert_eq!(built.max_d, 1 << 10);
        assert_eq!(built.round_cap, 9);
        assert_eq!(built.protocol_version, 2);
        assert_eq!(built.delta_epoch, None);

        // Auto overrides any fixed depth; Depth(0) clamps to 1.
        let auto = ClientConfig::builder().pipeline(Pipeline::Auto).build();
        assert!(auto.pipeline_auto);
        let clamped = ClientConfig::builder().pipeline(Pipeline::Depth(0)).build();
        assert_eq!(clamped.pipeline, 1);
    }

    #[test]
    fn sync_client_builder_configures_and_resolves() {
        let client = SyncClient::connect("127.0.0.1:9")
            .expect("literal addr resolves")
            .store("live")
            .pipeline(Pipeline::Auto)
            .seed(0xF00D)
            .delta_epoch(42);
        assert_eq!(client.config_ref().store, "live");
        assert!(client.config_ref().pipeline_auto);
        assert_eq!(client.config_ref().seed, 0xF00D);
        assert_eq!(client.config_ref().delta_epoch, Some(42));

        // subscribe() fail-fast checks run before any connect.
        let v1 = SyncClient::connect("127.0.0.1:9")
            .unwrap()
            .protocol_version(1);
        assert!(matches!(v1.subscribe(0), Err(NetError::Protocol(_))));
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        // A protocol-invalid config fails immediately even with a generous
        // policy (no sleeping, no attempts burned).
        let config = ClientConfig {
            protocol_version: 99,
            ..ClientConfig::default()
        };
        let policy = RetryPolicy {
            attempts: 10,
            base_delay: Duration::from_secs(10),
            ..RetryPolicy::default()
        };
        let start = std::time::Instant::now();
        let err = sync_with_retry("127.0.0.1:1", &[1], &config, &policy).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
