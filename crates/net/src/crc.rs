//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-frame
//! integrity check of the wire protocol (see `docs/WIRE.md`).
//!
//! TCP's own checksum is weak (16-bit ones' complement) and ends at the
//! socket; the frame CRC catches corruption introduced anywhere between the
//! two state machines — a truncated proxy buffer, a bad length prefix, a
//! miscounted payload — before the payload decoder runs. The table is built
//! at compile time; the byte-at-a-time loop is plenty for frames that top
//! out at a few hundred kilobytes per round.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `!0`, final complement — the standard
/// "CRC-32/ISO-HDLC" parameterization, matching zlib's `crc32()`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn sensitive_to_any_single_byte_change() {
        let base: Vec<u8> = (0..=255u8).collect();
        let reference = crc32(&base);
        for i in 0..base.len() {
            let mut corrupted = base.clone();
            corrupted[i] ^= 0x40;
            assert_ne!(crc32(&corrupted), reference, "flip at byte {i} undetected");
        }
    }
}
