//! Durable persistence for [`crate::store::MutableStore`]: an append-only
//! epoch-stamped write-ahead log plus periodic snapshots, with crash-safe
//! recovery.
//!
//! The on-disk layout of one store directory is
//!
//! ```text
//! <dir>/changes.wal            the WAL: one frame per change-batch chunk
//! <dir>/snapshot-<epoch>.snap  full state at <epoch> (set + changelog)
//! <dir>/snapshot.tmp           in-flight snapshot (ignored by recovery)
//! ```
//!
//! **WAL records reuse the wire discipline of [`crate::frame`] verbatim**:
//! every record is a length-prefixed, CRC-32-checked frame whose body is a
//! [`Frame::DeltaBatch`] — the epoch stamp, the effective add/remove lists,
//! elements packed at the chunk's byte width. A batch larger than
//! [`crate::frame::delta_chunk_capacity`] spans several consecutive records
//! carrying the same epoch, exactly like the v3 delta stream; recovery
//! merges them back into one [`ChangeBatch`]. Reusing the frame codec means
//! the WAL inherits the codec's fuzz coverage, and a WAL tail can be
//! inspected with the same tooling as a wire capture.
//!
//! **Snapshots** are written to a temp file, fsynced, and atomically
//! renamed into place, so a crash can never leave a half-written file under
//! the live name on a POSIX filesystem; a torn file (power loss, copy of a
//! dying disk) is detected by the trailing CRC-32 and recovery falls back
//! to the next older snapshot, or to a full WAL replay. A snapshot carries
//! the element set *and* the retained changelog, so delta subscribers'
//! epoch baselines survive a restart (the acceptance criterion of the
//! durability layer: zero forced full resyncs for epochs the changelog
//! still covers).
//!
//! **Recovery** ([`recover`]) scans the newest valid snapshot plus the WAL:
//! records at or below the snapshot epoch are skipped (they are leftovers
//! of a compaction that crashed before truncating the log), records must
//! advance the epoch by exactly one (chunks of one batch repeat it), and
//! the scan stops at the first torn, corrupt, or out-of-sequence record —
//! the file is truncated back to the last valid prefix, so a torn final
//! append never poisons the log. Everything after the cut is at most one
//! unacknowledged batch.
//!
//! Fault injection for the crash-safety tests is built in:
//! [`Wal::inject_crash`] arms a [`CrashPoint`] that makes the next matching
//! operation perform its *partial* work (a torn record, an unrenamed temp
//! snapshot, an untruncated log) and then fail as a crash would.

use crate::frame::{self, delta_batch_frames, delta_chunk_capacity, Frame, DEFAULT_MAX_FRAME};
use crate::store::ChangeBatch;
use obs::Histogram;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "changes.wal";

/// Magic number opening every snapshot file (`"PBSS"` little-endian).
pub const SNAPSHOT_MAGIC: u32 = 0x5353_4250;

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Injectable crash points for the kill-and-recover tests. Arming one via
/// [`Wal::inject_crash`] makes the next matching operation do its partial,
/// torn work and then fail with an [`io::ErrorKind::Other`] error — the
/// on-disk state is exactly what a process killed at that instant would
/// leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die halfway through a WAL append: only a prefix of the record's
    /// bytes reaches the file.
    MidWalAppend,
    /// Die mid-snapshot: a partial temp file exists, the rename never
    /// happened, the previous snapshot and the WAL are untouched.
    MidSnapshotWrite,
    /// Die mid-compaction: the new snapshot is fully in place but the WAL
    /// was not truncated and older snapshots were not removed.
    MidCompaction,
    /// Simulate a non-atomic rename (or a torn disk): a corrupt snapshot
    /// sits under the *live* snapshot name. Recovery must reject it by CRC
    /// and fall back.
    TornSnapshot,
}

fn injected() -> io::Error {
    io::Error::other("injected crash")
}

/// Size-free summary of a recovery, for logging and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch the recovered state corresponds to.
    pub epoch: u64,
    /// Epoch of the snapshot recovery started from (0 with no snapshot).
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records: u64,
    /// Bytes of torn/corrupt WAL tail that were truncated away.
    pub truncated_bytes: u64,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_rejected: u64,
    /// Elements in the recovered set.
    pub elements: usize,
    /// Change batches in the recovered changelog.
    pub log_batches: usize,
}

/// What [`recover`] reconstructed from a store directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The element set at `epoch`.
    pub elements: HashSet<u64>,
    /// The epoch the recovered state corresponds to.
    pub epoch: u64,
    /// The retained changelog, oldest first — every batch's epoch is
    /// contiguous up to `epoch`.
    pub log: Vec<ChangeBatch>,
    /// Epoch of the snapshot recovery started from (0 with no snapshot).
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records: u64,
    /// Bytes of torn/corrupt WAL tail that were truncated away.
    pub truncated_bytes: u64,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_rejected: u64,
}

impl Recovered {
    /// The size-free summary of this recovery.
    pub fn report(&self) -> RecoveryReport {
        RecoveryReport {
            epoch: self.epoch,
            snapshot_epoch: self.snapshot_epoch,
            wal_records: self.wal_records,
            truncated_bytes: self.truncated_bytes,
            snapshots_rejected: self.snapshots_rejected,
            elements: self.elements.len(),
            log_batches: self.log.len(),
        }
    }
}

/// Persistence options for a durable store.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Change batches retained in the in-memory changelog *and* in every
    /// snapshot (the `--changelog-cap` knob).
    pub log_capacity: usize,
    /// WAL records between automatic snapshots (compaction period). A
    /// snapshot rewrites the full state and truncates the log, so this
    /// bounds both recovery time and WAL growth. 0 disables automatic
    /// snapshots (the WAL grows until [`Wal::compact`] is called).
    pub snapshot_every: usize,
    /// `fsync` every WAL append. The WAL is always flushed to the OS per
    /// append (surviving a process crash); syncing additionally survives
    /// power loss, at a large per-batch cost. Snapshots are always synced.
    pub sync_writes: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            log_capacity: crate::store::DEFAULT_CHANGELOG_CAPACITY,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            sync_writes: false,
        }
    }
}

/// Default number of WAL appends between automatic snapshots.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 256;

/// The append handle of a store directory: the open WAL plus the snapshot
/// bookkeeping. All methods assume the caller serializes access (the store
/// holds it inside its write lock, so WAL order always equals epoch order).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// Byte length of the valid prefix (everything we have appended or
    /// recovered; a crash point may leave garbage beyond it).
    len: u64,
    records_since_snapshot: usize,
    options: DurableOptions,
    crash: Option<CrashPoint>,
    /// Append / fsync / compaction latency histograms, installed by
    /// [`Wal::set_timers`] when the owning store attaches to a metric
    /// registry. `None` costs nothing.
    timers: Option<WalTimers>,
}

#[derive(Debug)]
struct WalTimers {
    append: Arc<Histogram>,
    fsync: Arc<Histogram>,
    compaction: Arc<Histogram>,
}

fn snapshot_name(epoch: u64) -> String {
    // Zero-padded so lexicographic order equals epoch order.
    format!("snapshot-{epoch:020}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

fn push_packed(out: &mut Vec<u8>, elements: &[u64]) {
    let width = frame::delta_element_width(elements, &[]) as usize;
    out.push(width as u8);
    out.extend_from_slice(&(elements.len() as u64).to_le_bytes());
    for &e in elements {
        out.extend_from_slice(&e.to_le_bytes()[..width]);
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

fn take_packed(buf: &mut &[u8]) -> Option<Vec<u64>> {
    let width = take(buf, 1)?[0] as usize;
    if !(1..=8).contains(&width) {
        return None;
    }
    let count = u64::from_le_bytes(take(buf, 8)?.try_into().unwrap());
    // Clamp against the bytes actually present before any allocation.
    if (buf.len() as u64) < count.checked_mul(width as u64)? {
        return None;
    }
    let raw = take(buf, count as usize * width)?;
    Some(
        raw.chunks_exact(width)
            .map(|c| {
                let mut bytes = [0u8; 8];
                bytes[..width].copy_from_slice(c);
                u64::from_le_bytes(bytes)
            })
            .collect(),
    )
}

/// Serialize a snapshot: the set at `epoch` plus the retained changelog,
/// with a trailing CRC-32 over everything before it.
fn encode_snapshot(elements: &[u64], epoch: u64, log: &[ChangeBatch]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + elements.len() * 8);
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    push_packed(&mut out, elements);
    out.extend_from_slice(&(log.len() as u32).to_le_bytes());
    for batch in log {
        out.extend_from_slice(&batch.epoch.to_le_bytes());
        push_packed(&mut out, &batch.added);
        push_packed(&mut out, &batch.removed);
    }
    out.extend_from_slice(&crate::crc::crc32(&out).to_le_bytes());
    out
}

/// Decode and validate a snapshot blob. `None` on any torn or corrupt
/// shape — a snapshot is trusted in full or not at all.
fn decode_snapshot(bytes: &[u8]) -> Option<(HashSet<u64>, u64, Vec<ChangeBatch>)> {
    if bytes.len() < 4 + 2 + 8 + 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crate::crc::crc32(body) != crc {
        return None;
    }
    let mut buf = body;
    if u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) != SNAPSHOT_MAGIC {
        return None;
    }
    if u16::from_le_bytes(take(&mut buf, 2)?.try_into().unwrap()) != SNAPSHOT_VERSION {
        return None;
    }
    let epoch = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
    let elements: HashSet<u64> = take_packed(&mut buf)?.into_iter().collect();
    let batch_count = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap());
    let mut log = Vec::with_capacity((batch_count as usize).min(1 << 16));
    for _ in 0..batch_count {
        let batch_epoch = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
        let added = take_packed(&mut buf)?;
        let removed = take_packed(&mut buf)?;
        log.push(ChangeBatch {
            epoch: batch_epoch,
            added,
            removed,
        });
    }
    if !buf.is_empty() {
        return None;
    }
    // The changelog must be contiguous and end exactly at the set's epoch.
    for (i, batch) in log.iter().enumerate() {
        if i > 0 && batch.epoch != log[i - 1].epoch + 1 {
            return None;
        }
    }
    if let Some(last) = log.last() {
        if last.epoch != epoch {
            return None;
        }
    }
    Some((elements, epoch, log))
}

/// Recover a store directory: newest valid snapshot + WAL tail replay,
/// truncating any torn or corrupt tail back to the last valid prefix. A
/// missing or empty directory recovers to the empty state at epoch 0.
/// Never panics on corrupt input; only real I/O failures error.
pub fn recover(dir: &Path, log_capacity: usize) -> io::Result<Recovered> {
    std::fs::create_dir_all(dir)?;
    let mut out = Recovered::default();

    // ---- Newest valid snapshot ----
    let mut snapshots: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            parse_snapshot_name(name.to_str()?).map(|epoch| (epoch, e.path()))
        })
        .collect();
    snapshots.sort_unstable_by_key(|(epoch, _)| std::cmp::Reverse(*epoch));
    for (_, path) in &snapshots {
        match std::fs::read(path).ok().and_then(|b| decode_snapshot(&b)) {
            Some((elements, epoch, log)) => {
                out.elements = elements;
                out.epoch = epoch;
                out.snapshot_epoch = epoch;
                out.log = log;
                break;
            }
            None => out.snapshots_rejected += 1,
        }
    }

    // ---- WAL tail replay ----
    let wal_path = dir.join(WAL_FILE);
    let bytes = match std::fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut cursor = bytes.as_slice();
    let mut valid_end = 0u64;
    loop {
        let record = match frame::read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Ok((
                Frame::DeltaBatch {
                    epoch,
                    added,
                    removed,
                },
                consumed,
            )) => Some((epoch, added, removed, consumed)),
            // Any other well-framed type, or any framing/CRC/decode error,
            // marks the end of the trustworthy prefix.
            _ => None,
        };
        let Some((epoch, added, removed, consumed)) = record else {
            break;
        };
        // Sequencing: a record either continues the current batch (same
        // epoch — a chunk), starts the next one (epoch + 1), or — when at
        // or below the snapshot epoch — is a pre-compaction leftover that
        // the snapshot already reflects. Anything else (a gap, a rewind
        // below a later record) is corruption: stop here.
        if epoch <= out.snapshot_epoch {
            valid_end += consumed;
            continue;
        }
        if epoch == out.epoch && out.epoch > out.snapshot_epoch {
            // Continuation chunk of the batch we are building.
            let last = out.log.last_mut().expect("current batch is logged");
            last.added.extend_from_slice(&added);
            last.removed.extend_from_slice(&removed);
        } else if epoch == out.epoch.wrapping_add(1) && epoch != 0 {
            out.log.push(ChangeBatch {
                epoch,
                added,
                removed,
            });
            out.epoch = epoch;
        } else {
            break;
        }
        // Replay applies the whole (possibly re-extended) batch each chunk;
        // effective changes are disjoint, so the repetition is idempotent.
        let last = out.log.last().expect("just ensured");
        for e in &last.removed {
            out.elements.remove(e);
        }
        out.elements.extend(last.added.iter().copied());
        out.wal_records += 1;
        valid_end += consumed;
    }
    if valid_end < bytes.len() as u64 {
        out.truncated_bytes = bytes.len() as u64 - valid_end;
        let file = OpenOptions::new().write(true).open(&wal_path)?;
        file.set_len(valid_end)?;
        file.sync_all()?;
    }
    while out.log.len() > log_capacity {
        out.log.remove(0);
    }
    if log_capacity == 0 {
        out.log.clear();
    }
    Ok(out)
}

impl Wal {
    /// Open (creating if needed) the WAL of `dir` for appending. Call
    /// [`recover`] first — the WAL must already be truncated to its valid
    /// prefix.
    pub fn open(dir: &Path, options: DurableOptions) -> io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            len,
            records_since_snapshot: 0,
            options,
            crash: None,
            timers: None,
        })
    }

    /// Install append / fsync / compaction latency histograms. Called once
    /// by the owning store when it attaches to a metric registry.
    pub fn set_timers(
        &mut self,
        append: Arc<Histogram>,
        fsync: Arc<Histogram>,
        compaction: Arc<Histogram>,
    ) {
        self.timers = Some(WalTimers {
            append,
            fsync,
            compaction,
        });
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The persistence options this WAL runs under.
    pub fn options(&self) -> DurableOptions {
        self.options
    }

    /// Arm (or disarm) a crash point: the next matching operation performs
    /// its partial work and fails. Fault injection for the recovery tests.
    pub fn inject_crash(&mut self, point: Option<CrashPoint>) {
        self.crash = point;
    }

    /// Append one effective change batch, chunked under the frame cap like
    /// the v3 delta stream. On success the batch is on disk (flushed to the
    /// OS; fsynced when [`DurableOptions::sync_writes`]) *before* the
    /// caller mutates memory — the write-ahead contract.
    ///
    /// Returns `true` when a compaction is now due
    /// ([`DurableOptions::snapshot_every`] appends since the last one).
    pub fn append(&mut self, epoch: u64, added: &[u64], removed: &[u64]) -> io::Result<bool> {
        let capacity = delta_chunk_capacity(DEFAULT_MAX_FRAME);
        let mut record = Vec::new();
        for chunk in delta_batch_frames(epoch, added, removed, capacity) {
            frame::write_frame(&mut record, &chunk, DEFAULT_MAX_FRAME)
                .map_err(|e| io::Error::other(format!("wal encode: {e}")))?;
        }
        if self.crash == Some(CrashPoint::MidWalAppend) {
            // A torn append: exactly half the record's bytes land.
            self.file.write_all(&record[..record.len() / 2])?;
            self.file.flush()?;
            return Err(injected());
        }
        let start = self.timers.as_ref().map(|_| Instant::now());
        self.file.write_all(&record)?;
        self.file.flush()?;
        let written = start.map(|s| s.elapsed());
        if self.options.sync_writes {
            self.file.sync_data()?;
        }
        if let (Some(t), Some(written)) = (self.timers.as_ref(), written) {
            t.append.record_duration(written);
            if self.options.sync_writes {
                // The fsync cost alone: total minus the buffered write.
                let total = start.expect("timed above").elapsed();
                t.fsync.record_duration(total.saturating_sub(written));
            }
        }
        self.len += record.len() as u64;
        self.records_since_snapshot += 1;
        Ok(self.options.snapshot_every > 0
            && self.records_since_snapshot >= self.options.snapshot_every)
    }

    /// Write a snapshot of the full state and compact: temp file → fsync →
    /// atomic rename → truncate the WAL → remove older snapshots. Crashing
    /// between any two steps leaves a recoverable directory (the ordering
    /// is the whole point; see the module docs).
    pub fn compact(&mut self, elements: &[u64], epoch: u64, log: &[ChangeBatch]) -> io::Result<()> {
        let start = self.timers.as_ref().map(|_| Instant::now());
        let result = self.compact_untimed(elements, epoch, log);
        if let (Some(t), Some(start), Ok(())) = (self.timers.as_ref(), start, &result) {
            t.compaction.record_duration(start.elapsed());
        }
        result
    }

    fn compact_untimed(
        &mut self,
        elements: &[u64],
        epoch: u64,
        log: &[ChangeBatch],
    ) -> io::Result<()> {
        let blob = encode_snapshot(elements, epoch, log);
        let final_path = self.dir.join(snapshot_name(epoch));
        if self.crash == Some(CrashPoint::TornSnapshot) {
            // A non-atomic rename / torn disk: half a snapshot under the
            // live name. The trailing CRC is what catches this.
            std::fs::write(&final_path, &blob[..blob.len() / 2])?;
            return Err(injected());
        }
        let tmp_path = self.dir.join("snapshot.tmp");
        if self.crash == Some(CrashPoint::MidSnapshotWrite) {
            std::fs::write(&tmp_path, &blob[..blob.len() / 2])?;
            return Err(injected());
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&blob)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable before truncating the WAL.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if self.crash == Some(CrashPoint::MidCompaction) {
            return Err(injected());
        }
        self.truncate_wal()?;
        for entry in std::fs::read_dir(&self.dir)?.flatten() {
            let name = entry.file_name();
            if let Some(e) = name.to_str().and_then(parse_snapshot_name) {
                if e < epoch {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    fn truncate_wal(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.len = 0;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

/// Read the raw WAL bytes of a store directory (empty when absent) — for
/// tests and tooling that want to corrupt or inspect the log.
pub fn read_wal_bytes(dir: &Path) -> io::Result<Vec<u8>> {
    match std::fs::read(dir.join(WAL_FILE)) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Overwrite the raw WAL bytes of a store directory — the tests' way of
/// planting torn, bit-flipped, or duplicated tails.
pub fn write_wal_bytes(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(WAL_FILE), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pbs_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trip_and_crc_rejection() {
        let log = vec![
            ChangeBatch {
                epoch: 4,
                added: vec![10, 11],
                removed: vec![],
            },
            ChangeBatch {
                epoch: 5,
                added: vec![],
                removed: vec![10],
            },
        ];
        let blob = encode_snapshot(&[1, 2, 3, 1 << 40], 5, &log);
        let (set, epoch, got_log) = decode_snapshot(&blob).expect("valid snapshot");
        assert_eq!(epoch, 5);
        assert_eq!(set.len(), 4);
        assert!(set.contains(&(1 << 40)));
        assert_eq!(got_log, log);
        // Every single-byte corruption is caught.
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(decode_snapshot(&bad).is_none(), "corruption at {i} missed");
        }
        // Truncations are caught.
        for cut in 0..blob.len() {
            assert!(decode_snapshot(&blob[..cut]).is_none());
        }
        // A contiguity violation in the changelog is rejected even with a
        // valid CRC.
        let gap = vec![ChangeBatch {
            epoch: 3,
            added: vec![9],
            removed: vec![],
        }];
        assert!(decode_snapshot(&encode_snapshot(&[9], 5, &gap)).is_none());
    }

    #[test]
    fn wal_append_recover_round_trip() {
        let dir = tempdir("round_trip");
        let mut wal = Wal::open(&dir, DurableOptions::default()).unwrap();
        wal.append(1, &[1, 2, 3], &[]).unwrap();
        wal.append(2, &[4], &[1]).unwrap();
        let rec = recover(&dir, 16).unwrap();
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.wal_records, 2);
        assert_eq!(rec.truncated_bytes, 0);
        let mut got: Vec<u64> = rec.elements.iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(rec.log.len(), 2);
        assert_eq!(rec.log[0].epoch, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = tempdir("torn_tail");
        let mut wal = Wal::open(&dir, DurableOptions::default()).unwrap();
        wal.append(1, &[1], &[]).unwrap();
        wal.append(2, &[2], &[]).unwrap();
        // Tear the last record.
        let bytes = read_wal_bytes(&dir).unwrap();
        write_wal_bytes(&dir, &bytes[..bytes.len() - 3]).unwrap();
        let rec = recover(&dir, 16).unwrap();
        assert_eq!(rec.epoch, 1, "the torn batch must be rolled back");
        assert!(rec.truncated_bytes > 0);
        // The file was physically truncated to the valid prefix and stays
        // appendable at the next epoch.
        let mut wal = Wal::open(&dir, DurableOptions::default()).unwrap();
        wal.append(2, &[7], &[]).unwrap();
        let rec = recover(&dir, 16).unwrap();
        assert_eq!(rec.epoch, 2);
        assert!(rec.elements.contains(&7) && !rec.elements.contains(&2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_prunes() {
        let dir = tempdir("compaction");
        let opts = DurableOptions {
            log_capacity: 2,
            snapshot_every: 2,
            sync_writes: false,
        };
        let mut wal = Wal::open(&dir, opts).unwrap();
        assert!(!wal.append(1, &[1], &[]).unwrap());
        assert!(wal.append(2, &[2], &[]).unwrap(), "second append is due");
        let log = vec![
            ChangeBatch {
                epoch: 1,
                added: vec![1],
                removed: vec![],
            },
            ChangeBatch {
                epoch: 2,
                added: vec![2],
                removed: vec![],
            },
        ];
        wal.compact(&[1, 2], 2, &log).unwrap();
        assert_eq!(read_wal_bytes(&dir).unwrap().len(), 0, "WAL truncated");
        let rec = recover(&dir, 2).unwrap();
        assert_eq!((rec.epoch, rec.snapshot_epoch, rec.wal_records), (2, 2, 0));
        assert_eq!(rec.log, log, "changelog survives through the snapshot");
        // A second compaction prunes the first snapshot file.
        let mut wal = Wal::open(&dir, opts).unwrap();
        wal.append(3, &[3], &[]).unwrap();
        wal.compact(&[1, 2, 3], 3, &log[1..]).unwrap();
        let snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .collect();
        assert_eq!(snaps.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn big_batches_chunk_and_merge_back() {
        let dir = tempdir("chunking");
        let mut wal = Wal::open(&dir, DurableOptions::default()).unwrap();
        // Above the 2^16-element chunk clamp, so the batch spans records.
        let big: Vec<u64> = (1..=70_000u64).collect();
        wal.append(1, &big, &[]).unwrap();
        wal.append(2, &[1 << 50], &[1]).unwrap();
        let rec = recover(&dir, 8).unwrap();
        assert_eq!(rec.epoch, 2);
        assert_eq!(rec.elements.len(), 70_000);
        assert_eq!(rec.log.len(), 2);
        assert_eq!(
            rec.log[0].added.len(),
            70_000,
            "chunks merged into one batch"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_skips_pre_snapshot_leftovers() {
        // A crash between snapshot rename and WAL truncation leaves records
        // the snapshot already covers; they must be skipped, and records
        // beyond the snapshot applied.
        let dir = tempdir("leftovers");
        let opts = DurableOptions {
            snapshot_every: 0,
            ..DurableOptions::default()
        };
        let mut wal = Wal::open(&dir, opts).unwrap();
        wal.append(1, &[1], &[]).unwrap();
        wal.append(2, &[2], &[]).unwrap();
        wal.inject_crash(Some(CrashPoint::MidCompaction));
        let log = vec![ChangeBatch {
            epoch: 2,
            added: vec![2],
            removed: vec![],
        }];
        assert!(wal.compact(&[1, 2], 2, &log).is_err());
        // The WAL still holds epochs 1–2; append epoch 3 with a fresh handle
        // (the crashed process is gone).
        let mut wal = Wal::open(&dir, opts).unwrap();
        wal.append(3, &[3], &[]).unwrap();
        let rec = recover(&dir, 8).unwrap();
        assert_eq!((rec.epoch, rec.snapshot_epoch), (3, 2));
        assert_eq!(rec.wal_records, 1, "only the post-snapshot record replays");
        let mut got: Vec<u64> = rec.elements.iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
