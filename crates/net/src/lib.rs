//! Networked PBS set reconciliation.
//!
//! PR 1–2 made the PBS state machines fast; this crate puts them on a
//! socket. It is deliberately `std`-only (`std::net` + `std::thread` — the
//! build environment has no crates.io access, so no async runtime):
//!
//! * [`frame`] — a length-prefixed, CRC-checked, versioned frame codec
//!   ([`frame::Frame`]) layered over the payload encoders of
//!   [`pbs_core::wire`]; the format is specified in `docs/WIRE.md`.
//! * [`FramedStream`] — a byte-counting framed transport over any
//!   `Read + Write` stream.
//! * [`store`] — the element stores: [`InMemoryStore`], the mutable
//!   epoch-stamped [`store::MutableStore`] delta feed, and the
//!   [`StoreRegistry`] a multi-tenant server routes the v2 handshake's
//!   store name through.
//! * [`server`] — [`server::Server`]: an event-driven TCP server — one
//!   acceptor plus a few [`poll`]-based event-loop workers, each
//!   multiplexing many non-blocking connections; every session is a
//!   resumable state machine around a [`pbs_core::BobSession`] (handshake
//!   with store routing → estimator exchange → possibly-pipelined
//!   sketch/report rounds → final element transfer → optional live
//!   subscription), enforcing per-session deadlines, read/write-inactivity
//!   timeouts, round caps and pipeline-depth caps, and exporting atomic
//!   [`server::ServerStats`] both server-wide and per store.
//! * [`admin`] — [`admin::AdminServer`]: a hand-rolled HTTP/1.0
//!   observability endpoint (`/metrics`, `/healthz`, `/stats.json`)
//!   serving the [`obs::Registry`] a server's instrumentation records
//!   into; see `docs/OBSERVABILITY.md` for the metric catalog.
//! * [`client`] — [`client::SyncClient`]: drives an
//!   [`pbs_core::AliceSession`] against a server (optionally pipelining
//!   several protocol rounds per round trip, with a fixed or per-trip
//!   adaptive depth) and returns the reconciled difference plus transport
//!   accounting; [`client::SyncClient::subscribe`] holds the connection
//!   open as a live push subscription.
//!
//! Protocol v3 adds the **delta-subscription** path: a client carrying the
//! epoch of its previous sync ([`ClientConfig::delta_epoch`]) is served
//! exactly the changes since that epoch from the store's changelog —
//! O(|changes|) bytes, no reconciliation — and falls back to the classic
//! session when the changelog cannot cover the epoch. After the catch-up,
//! a `Subscribe` frame parks the session in the server's streaming state
//! and every further mutation is pushed to the client as it happens, with
//! keepalive pings and per-subscriber backpressure. See `docs/WIRE.md`.
//!
//! The loopback integration test (`tests/loopback.rs`) reconciles
//! 100k-element sets over real sockets and checks the measured wire bytes
//! against the in-process transcript's payload accounting
//! ([`protocol::Transcript::wire_bytes_total`]).
//!
//! # Example
//!
//! Reconcile two in-process sets over a real socket pair:
//!
//! ```
//! use pbs_net::{InMemoryStore, Server, ServerConfig, SyncClient};
//! use std::sync::Arc;
//!
//! let store = Arc::new(InMemoryStore::new(2..=100u64));
//! let server = Server::bind("127.0.0.1:0", store.clone(), ServerConfig::default())?;
//!
//! let alice: Vec<u64> = (1..=99).collect();
//! let report = SyncClient::connect(server.local_addr())?.sync(&alice)?;
//! assert!(report.verified);
//! let mut diff = report.recovered.clone();
//! diff.sort_unstable();
//! assert_eq!(diff, vec![1, 100]);          // A△B
//! assert!(store.contains(1));              // server ingested A \ B
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod client;
pub mod crc;
pub(crate) mod event_loop;
pub mod frame;
pub mod mesh;
pub mod mux;
pub mod poll;
pub mod server;
pub mod setio;
pub mod store;
pub mod wal;
pub mod watch;

pub use admin::{AdminServer, AdminState};
pub use client::{
    is_transient, sync, sync_with_retry, ClientConfig, ConfigBuilder, DeltaFold, DeltaReport,
    Pipeline, RetryPolicy, Subscription, SyncClient, SyncPhases, SyncReport,
};
pub use frame::{Frame, Hello, PROTOCOL_VERSION};
pub use mesh::{MeshConfig, MeshDriver, MeshStats, PeerSnapshot, PeerStats};
pub use mux::MuxStream;
pub use server::{Server, ServerConfig};
pub use store::{ChangeBatch, DeltaAnswer, InMemoryStore, MutableStore, SetStore, StoreRegistry};
pub use wal::{CrashPoint, DurableOptions, RecoveryReport};

use pbs_core::wire::WireError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a frame could not be produced or accepted at the framing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix (or a body about to be sent) exceeds the
    /// configured maximum frame size.
    TooLarge {
        /// Declared or actual body length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The frame CRC did not match the body.
    BadCrc,
    /// Unknown frame type byte.
    BadType(u8),
    /// A `Hello` opened with the wrong magic number.
    BadMagic(u32),
    /// The frame payload failed to decode.
    Payload(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::BadType(t) => write!(f, "unknown frame type {t:#x}"),
            FrameError::BadMagic(m) => write!(f, "bad hello magic {m:#010x}"),
            FrameError::Payload(e) => write!(f, "frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Errors surfaced by the networked client and server sessions.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (includes read/write timeouts).
    Io(std::io::Error),
    /// Framing-layer failure (size, CRC, type, payload decode).
    Frame(FrameError),
    /// The peer reported a fatal error and closed the session.
    Remote {
        /// The peer's machine-readable cause.
        code: frame::ErrorCode,
        /// The peer's human-readable detail.
        message: String,
    },
    /// The peer sent a well-formed frame the local state machine cannot
    /// accept at this point of the session.
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o: {e}"),
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Remote { code, message } => {
                write!(f, "peer error [{code}]: {message}")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

/// Socket-and-framing knobs shared by client and server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Maximum accepted/produced frame body size in bytes.
    pub max_frame: u32,
    /// Per-frame read timeout (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Per-frame write timeout (`None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Disable Nagle's algorithm. The protocol is strictly request/response
    /// with small frames, the worst case for delayed ACK interactions, so
    /// this defaults to `true`.
    pub nodelay: bool,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_frame: frame::DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            nodelay: true,
        }
    }
}

/// A framed, byte-counting transport over any `Read + Write` stream.
#[derive(Debug)]
pub struct FramedStream<S> {
    inner: S,
    max_frame: u32,
    bytes_in: u64,
    bytes_out: u64,
    frames_in: u64,
    frames_out: u64,
}

impl FramedStream<TcpStream> {
    /// Wrap a TCP stream, applying the transport configuration's timeouts
    /// and `TCP_NODELAY` setting.
    pub fn from_tcp(stream: TcpStream, cfg: &TransportConfig) -> std::io::Result<Self> {
        stream.set_read_timeout(cfg.read_timeout)?;
        stream.set_write_timeout(cfg.write_timeout)?;
        stream.set_nodelay(cfg.nodelay)?;
        Ok(Self::new(stream, cfg.max_frame))
    }
}

impl<S: Read + Write> FramedStream<S> {
    /// Wrap an arbitrary stream with the given frame-size cap.
    pub fn new(inner: S, max_frame: u32) -> Self {
        FramedStream {
            inner,
            max_frame,
            bytes_in: 0,
            bytes_out: 0,
            frames_in: 0,
            frames_out: 0,
        }
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let n = frame::write_frame(&mut self.inner, frame, self.max_frame)?;
        self.bytes_out += n;
        self.frames_out += 1;
        Ok(())
    }

    /// Receive one frame. A peer [`Frame::Error`] is returned as
    /// [`NetError::Remote`] — sessions never have to handle it positionally.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        let (frame, n) = frame::read_frame(&mut self.inner, self.max_frame)?;
        self.bytes_in += n;
        self.frames_in += 1;
        if let Frame::Error { code, message } = frame {
            return Err(NetError::Remote { code, message });
        }
        Ok(frame)
    }

    /// Total wire bytes received so far (framing included).
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total wire bytes sent so far (framing included).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Frames received so far.
    pub fn frames_in(&self) -> u64 {
        self.frames_in
    }

    /// Frames sent so far.
    pub fn frames_out(&self) -> u64 {
        self.frames_out
    }

    /// The underlying stream (e.g. to shut a TCP connection down).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}
