//! Element-set loading shared by the `pbs-syncd` / `pbs-sync` binaries.

use std::io::{BufRead, BufReader};
use std::path::Path;

/// Read a set file: one element per line, decimal or `0x`-prefixed hex,
/// blank lines and `#` comments ignored. Elements must be nonzero (the
/// all-zero signature is excluded from the universe, §2.1 of the paper).
pub fn load_set(path: &Path) -> std::io::Result<Vec<u64>> {
    let file = std::fs::File::open(path)?;
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        let token = line.split('#').next().unwrap_or("").trim();
        if token.is_empty() {
            continue;
        }
        let value = match token
            .strip_prefix("0x")
            .or_else(|| token.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse::<u64>(),
        }
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), lineno + 1),
            )
        })?;
        if value == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}:{}: the zero element is not allowed",
                    path.display(),
                    lineno + 1
                ),
            ));
        }
        out.push(value);
    }
    Ok(out)
}

/// A deterministic pseudo-random demo set of `n` nonzero 32-bit-universe
/// elements — the `--range` option of both binaries, handy for trying the
/// pair without writing set files.
pub fn demo_set(n: usize, salt: u64) -> Vec<u64> {
    let mut x = salt | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 16 & 0xFFFF_FFFF) | 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_comments_and_blanks() {
        let dir = std::env::temp_dir().join("pbs_net_setio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.txt");
        std::fs::write(&path, "7\n# comment\n0x10\n\n42 # trailing\n").unwrap();
        assert_eq!(load_set(&path).unwrap(), vec![7, 16, 42]);
        std::fs::write(&path, "0\n").unwrap();
        assert!(load_set(&path).is_err());
        std::fs::write(&path, "not-a-number\n").unwrap();
        assert!(load_set(&path).is_err());
    }

    #[test]
    fn demo_sets_are_deterministic_and_nonzero() {
        let a = demo_set(1000, 5);
        assert_eq!(a, demo_set(1000, 5));
        assert!(a.iter().all(|&e| e != 0 && e <= u32::MAX as u64));
    }
}
