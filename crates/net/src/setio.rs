//! Element-set loading shared by the `pbs-syncd` / `pbs-sync` binaries.

use std::io::{BufRead, BufReader};
use std::path::Path;

/// Read a set file: one element per line, decimal or `0x`-prefixed hex,
/// blank lines and `#` comments ignored. Elements must be nonzero (the
/// all-zero signature is excluded from the universe, §2.1 of the paper).
pub fn load_set(path: &Path) -> std::io::Result<Vec<u64>> {
    let file = std::fs::File::open(path)?;
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        let token = line.split('#').next().unwrap_or("").trim();
        if token.is_empty() {
            continue;
        }
        let value = match token
            .strip_prefix("0x")
            .or_else(|| token.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse::<u64>(),
        }
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), lineno + 1),
            )
        })?;
        if value == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}:{}: the zero element is not allowed",
                    path.display(),
                    lineno + 1
                ),
            ));
        }
        out.push(value);
    }
    Ok(out)
}

/// Parse as much of a set file as is valid: like [`load_set`], but a
/// malformed line stops the parse instead of failing it, returning the
/// elements of the longest valid prefix plus whether anything was cut.
/// This is the read the `--watch-dir` poller uses — a file caught torn
/// mid-write (or truncated by a crashed producer) yields the elements that
/// were fully written, rather than wedging the store on stale contents.
pub fn load_set_prefix(path: &Path) -> std::io::Result<(Vec<u64>, bool)> {
    let file = std::fs::File::open(path)?;
    let mut out = Vec::new();
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else {
            return Ok((out, true));
        };
        let token = line.split('#').next().unwrap_or("").trim();
        if token.is_empty() {
            continue;
        }
        let value = match token
            .strip_prefix("0x")
            .or_else(|| token.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse::<u64>(),
        };
        match value {
            Ok(v) if v != 0 => out.push(v),
            _ => return Ok((out, true)),
        }
    }
    Ok((out, false))
}

/// Write `contents` to `path` atomically: temp file in the same directory,
/// fsync, rename. A crash mid-write can leave a stray temp file but never
/// a half-written `path` — the discipline every persistent artifact of the
/// binaries (epoch caches, snapshots) uses.
pub fn write_file_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "file".into());
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// A deterministic pseudo-random demo set of `n` nonzero 32-bit-universe
/// elements — the `--range` option of both binaries, handy for trying the
/// pair without writing set files.
pub fn demo_set(n: usize, salt: u64) -> Vec<u64> {
    let mut x = salt | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 16 & 0xFFFF_FFFF) | 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_comments_and_blanks() {
        let dir = std::env::temp_dir().join("pbs_net_setio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.txt");
        std::fs::write(&path, "7\n# comment\n0x10\n\n42 # trailing\n").unwrap();
        assert_eq!(load_set(&path).unwrap(), vec![7, 16, 42]);
        std::fs::write(&path, "0\n").unwrap();
        assert!(load_set(&path).is_err());
        std::fs::write(&path, "not-a-number\n").unwrap();
        assert!(load_set(&path).is_err());
    }

    #[test]
    fn prefix_load_survives_torn_tails() {
        let dir = std::env::temp_dir().join("pbs_net_setio_prefix_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.txt");
        std::fs::write(&path, "7\n16\n42\n").unwrap();
        assert_eq!(load_set_prefix(&path).unwrap(), (vec![7, 16, 42], false));
        // A torn tail (non-numeric garbage) cuts the parse, keeps the prefix.
        std::fs::write(&path, "7\n16\n4x!\n99\n").unwrap();
        assert_eq!(load_set_prefix(&path).unwrap(), (vec![7, 16], true));
        // The zero element also stops the prefix (it can never be served).
        std::fs::write(&path, "7\n0\n99\n").unwrap();
        assert_eq!(load_set_prefix(&path).unwrap(), (vec![7], true));
        std::fs::write(&path, "").unwrap();
        assert_eq!(load_set_prefix(&path).unwrap(), (vec![], false));
    }

    #[test]
    fn atomic_write_replaces_in_place() {
        let dir = std::env::temp_dir().join("pbs_net_setio_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch");
        write_file_atomic(&path, b"41\n").unwrap();
        write_file_atomic(&path, b"42\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"42\n");
        // No temp droppings left behind.
        let stray = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(stray, 0);
    }

    #[test]
    fn demo_sets_are_deterministic_and_nonzero() {
        let a = demo_set(1000, 5);
        assert_eq!(a, demo_set(1000, 5));
        assert!(a.iter().all(|&e| e != 0 && e <= u32::MAX as u64));
    }
}
