//! Anti-entropy mesh: the *client role* of a node.
//!
//! A `pbs-syncd` node normally only answers sessions. In a mesh
//! deployment (`pbs-syncd --anti-entropy PEER[,PEER…]`) it also
//! periodically originates them: every tick, each of the node's stores is
//! reconciled pairwise against a peer with the ordinary PBS session
//! ([`crate::client::sync`]), and the recovered difference is applied
//! locally through [`crate::store::SetStore::apply_missing`] — on a
//! [`crate::store::MutableStore`] that lands as a normal `apply` batch,
//! so the epoch advances, the changelog records it, and live subscribers
//! ride along exactly as they would for a local write.
//!
//! Convergence is gossip-style union convergence: one pairwise sync moves
//! both endpoints to `A ∪ B` (the protocol pushes `A \ B` to the peer
//! and this driver applies `B \ A` locally), so any connected mesh
//! converges after enough pairwise rounds regardless of topology, and
//! partitioned halves converge among themselves and re-converge globally
//! once the partition heals. The peer rotation and tick jitter are seeded
//! ([`MeshConfig::seed`]), so a mesh soak replays the same schedule.
//!
//! [`anti_entropy_round`] is the synchronous single-(peer × stores) pass —
//! the unit tests and the mesh soak drive it directly for determinism;
//! [`MeshDriver::spawn`] wraps it in the background thread `pbs-syncd`
//! runs.

use crate::client::{sync, ClientConfig};
use crate::store::StoreRegistry;
use crate::NetError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a node's anti-entropy driver.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Peer addresses (`host:port`) this node reconciles against.
    pub peers: Vec<String>,
    /// Pause between full peer rotations (each rotation syncs every store
    /// against every peer once, in seeded order).
    pub interval: Duration,
    /// Seed of the rotation order and tick jitter.
    pub seed: u64,
    /// The client configuration each pairwise sync runs with; the store
    /// name is filled in per sync. `delta_epoch` is ignored — anti-entropy
    /// always runs the full reconciliation so each pairwise sync is a
    /// symmetric union step.
    pub client: ClientConfig,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            peers: Vec::new(),
            interval: Duration::from_secs(5),
            seed: 0xA17E_E471,
            client: ClientConfig::default(),
        }
    }
}

/// Per-peer (per-link) counters, updated by every pairwise sync. All
/// counters are cumulative; byte counters come straight from the
/// [`crate::client::SyncReport`] wire ledgers, so on a fault-free link
/// they reconcile exactly with what a relay in the middle forwarded.
#[derive(Debug, Default)]
pub struct PeerStats {
    /// Pairwise syncs attempted (one per store per rotation).
    pub syncs_attempted: AtomicU64,
    /// Pairwise syncs that completed verified.
    pub syncs_completed: AtomicU64,
    /// Pairwise syncs that failed (connect, transport, protocol) or came
    /// back unverified.
    pub syncs_failed: AtomicU64,
    /// Wire bytes sent to this peer over completed syncs.
    pub bytes_sent: AtomicU64,
    /// Wire bytes received from this peer over completed syncs.
    pub bytes_received: AtomicU64,
    /// Elements learned from this peer and applied locally (`B \ A`).
    pub elements_pulled: AtomicU64,
    /// Elements pushed to this peer by the protocol's final transfer
    /// (`A \ B`).
    pub elements_pushed: AtomicU64,
}

/// One peer's counters, frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSnapshot {
    /// The peer address these counters are about.
    pub peer: String,
    /// See [`PeerStats::syncs_attempted`].
    pub syncs_attempted: u64,
    /// See [`PeerStats::syncs_completed`].
    pub syncs_completed: u64,
    /// See [`PeerStats::syncs_failed`].
    pub syncs_failed: u64,
    /// See [`PeerStats::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`PeerStats::bytes_received`].
    pub bytes_received: u64,
    /// See [`PeerStats::elements_pulled`].
    pub elements_pulled: u64,
    /// See [`PeerStats::elements_pushed`].
    pub elements_pushed: u64,
}

/// The per-peer counter set of one driver.
#[derive(Debug)]
pub struct MeshStats {
    peers: Vec<(String, Arc<PeerStats>)>,
}

impl MeshStats {
    /// Build the counter set for `peers` (order preserved).
    pub fn new(peers: &[String]) -> Self {
        MeshStats {
            peers: peers
                .iter()
                .map(|p| (p.clone(), Arc::new(PeerStats::default())))
                .collect(),
        }
    }

    /// The counters for `peer`, if it is part of this mesh.
    pub fn peer(&self, peer: &str) -> Option<&Arc<PeerStats>> {
        self.peers.iter().find(|(p, _)| p == peer).map(|(_, s)| s)
    }

    /// Freeze every peer's counters.
    pub fn snapshot(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .map(|(peer, s)| PeerSnapshot {
                peer: peer.clone(),
                syncs_attempted: s.syncs_attempted.load(Ordering::Relaxed),
                syncs_completed: s.syncs_completed.load(Ordering::Relaxed),
                syncs_failed: s.syncs_failed.load(Ordering::Relaxed),
                bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
                bytes_received: s.bytes_received.load(Ordering::Relaxed),
                elements_pulled: s.elements_pulled.load(Ordering::Relaxed),
                elements_pushed: s.elements_pushed.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// What one [`anti_entropy_round`] (one peer, every store) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Stores that reconciled verified against the peer.
    pub synced: usize,
    /// Stores whose sync failed (the first error is returned alongside).
    pub failed: usize,
    /// Elements learned from the peer and applied locally.
    pub pulled: u64,
    /// Elements the protocol pushed to the peer.
    pub pushed: u64,
}

/// Reconcile every store of `registry` against `peer` once, applying what
/// the peer had and we lacked. Failures on one store do not stop the
/// others; the outcome counts both, and the first error (if any) rides
/// along so callers can log it.
pub fn anti_entropy_round(
    registry: &StoreRegistry,
    peer: &str,
    config: &ClientConfig,
    stats: &PeerStats,
) -> (RoundOutcome, Option<NetError>) {
    let mut outcome = RoundOutcome::default();
    let mut first_error = None;
    for name in registry.names() {
        let Some(entry) = registry.get(&name) else {
            continue;
        };
        let store = Arc::clone(entry.store());
        let (snapshot, _epoch) = store.epoch_snapshot();
        let mut cfg = config.clone();
        cfg.store = name.clone();
        cfg.delta_epoch = None;
        stats.syncs_attempted.fetch_add(1, Ordering::Relaxed);
        match sync(peer, &snapshot, &cfg) {
            Ok(report) if report.verified => {
                // The peer ingested `A \ B` (report.pushed) from the final
                // transfer; what remains of the recovered difference is
                // `B \ A` — ours to apply. `apply_missing` on a
                // MutableStore is an ordinary apply: epoch bump,
                // changelog batch, subscriber push.
                let pushed: std::collections::HashSet<u64> =
                    report.pushed.iter().copied().collect();
                let pulled: Vec<u64> = report
                    .recovered
                    .iter()
                    .copied()
                    .filter(|e| !pushed.contains(e))
                    .collect();
                if !pulled.is_empty() {
                    store.apply_missing(&pulled);
                }
                stats.syncs_completed.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes_sent
                    .fetch_add(report.bytes_sent, Ordering::Relaxed);
                stats
                    .bytes_received
                    .fetch_add(report.bytes_received, Ordering::Relaxed);
                stats
                    .elements_pulled
                    .fetch_add(pulled.len() as u64, Ordering::Relaxed);
                stats
                    .elements_pushed
                    .fetch_add(report.pushed.len() as u64, Ordering::Relaxed);
                outcome.synced += 1;
                outcome.pulled += pulled.len() as u64;
                outcome.pushed += report.pushed.len() as u64;
            }
            Ok(_) => {
                // Unverified: the round cap fired before every group
                // checksum passed. Apply nothing — a best-effort recovery
                // may contain fakes.
                stats.syncs_failed.fetch_add(1, Ordering::Relaxed);
                outcome.failed += 1;
                if first_error.is_none() {
                    first_error = Some(NetError::Protocol(
                        "anti-entropy sync finished unverified".into(),
                    ));
                }
            }
            Err(e) => {
                stats.syncs_failed.fetch_add(1, Ordering::Relaxed);
                outcome.failed += 1;
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    (outcome, first_error)
}

/// The background anti-entropy loop of one node: seeded peer rotation,
/// jittered ticks, graceful shutdown. `pbs-syncd --anti-entropy` owns one.
#[derive(Debug)]
pub struct MeshDriver {
    shutdown: Arc<AtomicBool>,
    stats: Arc<MeshStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MeshDriver {
    /// Spawn the driver thread. Each rotation visits every peer once in a
    /// seeded order (reshuffled per rotation — xorshift over
    /// [`MeshConfig::seed`]), reconciling every store of `registry`
    /// against it, then sleeps [`MeshConfig::interval`] with ±25% seeded
    /// jitter so a fleet of identical nodes de-synchronizes.
    pub fn spawn(registry: Arc<StoreRegistry>, config: MeshConfig) -> MeshDriver {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(MeshStats::new(&config.peers));
        let thread_shutdown = Arc::clone(&shutdown);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("pbs-mesh".into())
            .spawn(move || {
                let mut rng = config.seed | 1;
                let step = move |rng: &mut u64| {
                    *rng ^= *rng << 13;
                    *rng ^= *rng >> 7;
                    *rng ^= *rng << 17;
                    *rng
                };
                let mut order: Vec<usize> = (0..config.peers.len()).collect();
                while !thread_shutdown.load(Ordering::SeqCst) {
                    // Seeded Fisher–Yates reshuffle per rotation.
                    for i in (1..order.len()).rev() {
                        let j = (step(&mut rng) % (i as u64 + 1)) as usize;
                        order.swap(i, j);
                    }
                    for &p in &order {
                        if thread_shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let peer = &config.peers[p];
                        if let Some(peer_stats) = thread_stats.peer(peer) {
                            let (_, _err) =
                                anti_entropy_round(&registry, peer, &config.client, peer_stats);
                        }
                    }
                    // Jittered sleep in short slices so shutdown is prompt.
                    let jitter = step(&mut rng) % 501; // 0..=500 → 75%..125%
                    let tick = config.interval.mul_f64(0.75 + jitter as f64 / 2000.0);
                    let until = Instant::now() + tick;
                    while Instant::now() < until && !thread_shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(20).min(tick));
                    }
                }
            })
            .expect("spawn mesh driver thread");
        MeshDriver {
            shutdown,
            stats,
            handle: Some(handle),
        }
    }

    /// The live per-peer counters.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Stop the loop (finishing at most the in-flight pairwise sync) and
    /// return the final per-peer counters.
    pub fn shutdown(mut self) -> Vec<PeerSnapshot> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for MeshDriver {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::store::MutableStore;

    #[test]
    fn one_round_converges_a_pair_of_stores() {
        let local = Arc::new(MutableStore::new([1u64, 2, 3, 10]));
        let remote = Arc::new(MutableStore::new([2u64, 3, 4, 20]));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&remote) as Arc<_>,
            ServerConfig::default(),
        )
        .expect("bind peer");
        let peer = server.local_addr().to_string();

        let registry = StoreRegistry::single(Arc::clone(&local) as Arc<_>);
        let stats = PeerStats::default();
        let (outcome, err) = anti_entropy_round(&registry, &peer, &ClientConfig::default(), &stats);
        assert!(err.is_none(), "round failed: {err:?}");
        assert_eq!(outcome.synced, 1);
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.pulled, 2, "learned 4 and 20");
        assert_eq!(outcome.pushed, 2, "shipped 1 and 10");
        server.shutdown();

        let (mut a, _) = local.snapshot_with_epoch();
        let (mut b, _) = remote.snapshot_with_epoch();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "one pairwise round reaches A ∪ B on both sides");
        assert_eq!(a, vec![1, 2, 3, 4, 10, 20]);
        assert_eq!(stats.syncs_completed.load(Ordering::Relaxed), 1);
        assert_eq!(stats.elements_pulled.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let local = Arc::new(MutableStore::new([1u64, 2, 3]));
        let registry = StoreRegistry::single(local as Arc<_>);
        let stats = PeerStats::default();
        // Nothing listens on this port (bound then dropped).
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (outcome, err) = anti_entropy_round(&registry, &dead, &ClientConfig::default(), &stats);
        assert_eq!(outcome.synced, 0);
        assert_eq!(outcome.failed, 1);
        assert!(err.is_some());
        assert_eq!(stats.syncs_failed.load(Ordering::Relaxed), 1);
    }
}
