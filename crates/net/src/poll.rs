//! A minimal, std-only readiness facility: `poll(2)` through a hand-rolled
//! FFI shim, wrapped in the portable [`Poller`] abstraction the event loop
//! is written against.
//!
//! The build environment has no crates.io access, so `libc`/`mio` are out;
//! the shim below declares exactly the one symbol it needs. Level-triggered
//! semantics only — the event loop re-declares interest on every wait, so
//! the poller itself is stateless and a `Vec<PollFd>` rebuilt per call is
//! both correct and cheap at the fan-outs this server targets (the array
//! is reused between calls, so steady-state waits allocate nothing).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// `struct pollfd` from `<poll.h>`. On every platform this crate builds on
/// (Linux, the BSDs, macOS) the layout is identical: `int fd; short
/// events; short revents;`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    /// `nfds_t` is `unsigned long` on every supported target, which is
    /// `usize` for the purposes of this shim.
    fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
}

/// What a registrant wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or at EOF / error).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The descriptor this event is about.
    pub fd: RawFd,
    /// Readable (includes EOF — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup/invalid: the owner should read to surface the error
    /// and tear the registrant down.
    pub error: bool,
}

/// A level-triggered readiness selector over `poll(2)`.
///
/// Deliberately stateless between waits: callers pass the full interest
/// set every time. That matches level-triggered `poll` exactly and makes
/// the event loop's bookkeeping (sessions come and go per wait) trivial.
#[derive(Debug, Default)]
pub struct Poller {
    /// Reused across waits to avoid steady-state allocation.
    fds: Vec<PollFd>,
}

impl Poller {
    /// A fresh poller.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Wait until at least one of `interests` is ready or `timeout`
    /// elapses (`None` blocks indefinitely). Returns the ready events;
    /// an empty vec means the timeout fired. `EINTR` is retried
    /// internally with the original deadline semantics approximated by
    /// simply re-issuing the wait (deadlines are re-derived by the caller
    /// each loop iteration, so drift does not accumulate).
    pub fn wait(
        &mut self,
        interests: &[(RawFd, Interest)],
        timeout: Option<Duration>,
    ) -> io::Result<Vec<Event>> {
        self.fds.clear();
        for &(fd, interest) in interests {
            let mut events = 0i16;
            if interest.readable {
                events |= POLLIN;
            }
            if interest.writable {
                events |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd,
                events,
                revents: 0,
            });
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len(), timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let mut ready = Vec::with_capacity(rc as usize);
            for pfd in &self.fds {
                if pfd.revents == 0 {
                    continue;
                }
                ready.push(Event {
                    fd: pfd.fd,
                    readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            return Ok(ready);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn timeout_fires_when_nothing_is_ready() {
        let (a, _b) = pair();
        let mut poller = Poller::new();
        let events = poller
            .wait(
                &[(a.as_raw_fd(), Interest::READABLE)],
                Some(Duration::from_millis(20)),
            )
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn readable_after_peer_write_and_at_eof() {
        let (a, mut b) = pair();
        b.write_all(b"x").unwrap();
        let mut poller = Poller::new();
        let events = poller
            .wait(
                &[(a.as_raw_fd(), Interest::READABLE)],
                Some(Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);

        let mut buf = [0u8; 1];
        (&a).read_exact(&mut buf).unwrap();
        drop(b);
        // EOF is a readable event under level-triggered poll.
        let events = poller
            .wait(
                &[(a.as_raw_fd(), Interest::READABLE)],
                Some(Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        assert_eq!((&a).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn writable_is_level_triggered() {
        let (a, _b) = pair();
        let mut poller = Poller::new();
        let events = poller
            .wait(
                &[(a.as_raw_fd(), Interest::BOTH)],
                Some(Duration::from_secs(5)),
            )
            .unwrap();
        assert!(events.iter().any(|e| e.writable));
    }
}
