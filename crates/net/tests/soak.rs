//! Delta-subscription soak and byte-accounting tests.
//!
//! The v3 delta path exists to make a returning client's re-sync cost
//! O(|changes|) instead of O(d) reconciliation rounds over the full set.
//! These tests pin that claim against the transcript ledger (measured
//! frame encodings, never wall time): a delta sync's wire bytes must equal
//! its own frame-by-frame prediction exactly, stay a small fraction of the
//! full reconciliation it replaces, and keep converging under concurrent
//! server-side mutation — with the trimmed-changelog path falling back to
//! a classic session that re-establishes the epoch baseline.

use pbs_core::PbsConfig;
use pbs_net::client::{sync, ClientConfig};
use pbs_net::frame::{
    delta_batch_frames, delta_chunk_capacity, Frame, Hello, DEFAULT_MAX_FRAME, FRAME_OVERHEAD,
};
use pbs_net::server::{InMemoryStore, Server, ServerConfig};
use pbs_net::store::{MutableStore, SetStore};
use protocol::{Direction, Transcript};
use std::collections::HashSet;
use std::sync::Arc;

/// `count` distinct nonzero 32-bit-universe elements.
fn distinct_keys(count: usize, salt: u64) -> Vec<u64> {
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut x = salt | 1;
    while out.len() < count {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = (x >> 16 & 0xFFFF_FFFF) | 1;
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// Predict the exact wire bytes of a delta sync: both `Hello` frames (the
/// negotiated reply echoes the request byte for byte at depth-1 requests),
/// the chunked `DeltaBatch` stream for the given changelog tail, and the
/// closing `DeltaDone` — each framed at [`FRAME_OVERHEAD`]. Returns the
/// transcript (labels `hello` / `delta-batch` / `delta-done`) and the
/// frame count.
fn predict_delta_sync(
    cfg: &PbsConfig,
    seed: u64,
    since: u64,
    batches: &[pbs_net::store::ChangeBatch],
    to_epoch: u64,
) -> (Transcript, u64) {
    let mut transcript = Transcript::new();
    let mut frames = 0u64;
    let mut record = |t: &mut Transcript, dir, label, frame: &Frame| {
        let body = frame.encode_body().len() as u64;
        t.send_encoded(dir, label, body * 8, body);
        frames += 1;
    };
    let hello = Frame::Hello(Hello::from_config(cfg, seed, 0).with_delta_epoch(since));
    record(&mut transcript, Direction::AliceToBob, "hello", &hello);
    record(&mut transcript, Direction::BobToAlice, "hello", &hello);
    let capacity = delta_chunk_capacity(DEFAULT_MAX_FRAME);
    for batch in batches {
        for frame in delta_batch_frames(batch.epoch, &batch.added, &batch.removed, capacity) {
            record(
                &mut transcript,
                Direction::BobToAlice,
                "delta-batch",
                &frame,
            );
        }
    }
    record(
        &mut transcript,
        Direction::BobToAlice,
        "delta-done",
        &Frame::DeltaDone { epoch: to_epoch },
    );
    (transcript, frames)
}

/// Acceptance: a delta sync of a 100k-element store with 50 changes since
/// the client's epoch ships a small fraction of a full d=50 reconciliation
/// on the same seed, with the wire bytes matching the transcript ledger's
/// frame-by-frame prediction exactly.
///
/// On the ratio: the measured comparator on this seed is 2798 B (the
/// handshake plus ToW estimator bank plus sketch/report rounds plus final
/// transfer); the delta session is 377 B total, of which 243 B is the
/// actual delta stream: 13.5% and 8.7%. That is floor territory, not an
/// implementation gap: the 50 changed elements carry 50 × 4 B of raw
/// identity in a 32-bit universe and both protocols pay the same ~150 B
/// handshake, so no encoding of this scenario can reach the issue's
/// nominal "< 5%" against a ~2.8 KB comparator (the target is met with
/// room to spare as soon as the comparator's d grows: at d = 1000 the
/// same stream is ~0.6%). The assertions pin the deterministic achievable
/// form: session under 1/6th, stream under 1/10th of the comparator.
#[test]
fn delta_sync_of_100k_store_beats_full_reconciliation_bytes() {
    let changes = 50usize;
    let pool = distinct_keys(100_000 + changes / 2, 0xDE17A5EED);
    let baseline: Vec<u64> = pool[..100_000].to_vec();
    let added: Vec<u64> = pool[100_000..].to_vec();
    let removed: Vec<u64> = baseline[..changes - added.len()].to_vec();
    let seed = 0xDE17Au64;

    // The comparator: the same client state syncing the same 50-element
    // difference the classic way (no epoch cache), same seed.
    let mutated: HashSet<u64> = baseline
        .iter()
        .copied()
        .filter(|e| !removed.contains(e))
        .chain(added.iter().copied())
        .collect();
    let full_store = Arc::new(InMemoryStore::new(mutated.iter().copied()));
    let full_server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&full_store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let full = sync(
        full_server.local_addr(),
        &baseline,
        &ClientConfig::builder().seed(seed).build(),
    )
    .expect("full reconciliation");
    full_server.shutdown();
    assert!(full.verified);
    assert_eq!(full.recovered.len(), changes, "comparator difference");
    let full_bytes = full.bytes_sent + full.bytes_received;

    // The delta path: a store that mutated by the same 50 elements since
    // the client's epoch-0 baseline.
    let store = Arc::new(MutableStore::new(baseline.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    assert_eq!(store.apply(&added, &removed), 1);

    let config = ClientConfig::builder().seed(seed).delta_epoch(0).build();
    let report = sync(server.local_addr(), &baseline, &config).expect("delta sync");
    assert!(report.verified);
    assert!(!report.delta_fallback);
    assert_eq!(report.epoch, Some(1));
    assert_eq!(report.rounds, 0, "no reconciliation round ran");
    let delta = report.delta.as_ref().expect("delta served");
    assert_eq!(delta.from_epoch, 0);
    assert_eq!(delta.to_epoch, 1);
    assert_eq!(sorted(delta.added.clone()), sorted(added.clone()));
    assert_eq!(sorted(delta.removed.clone()), sorted(removed.clone()));

    // Applying the delta reproduces the server's set exactly.
    let mut local: HashSet<u64> = baseline.iter().copied().collect();
    delta.apply_to(&mut local);
    assert_eq!(local, mutated);

    // Exact byte accounting against the transcript ledger.
    let batches = store.changes_since(0).expect("changelog intact");
    let (predicted, frames) = predict_delta_sync(&config.pbs, seed, 0, &batches, 1);
    let wire_total = report.bytes_sent + report.bytes_received;
    assert_eq!(report.frames_sent + report.frames_received, frames);
    assert_eq!(
        wire_total,
        predicted.wire_bytes_total() + FRAME_OVERHEAD * frames,
        "delta wire bytes diverged from the frame-by-frame prediction"
    );
    // The stream is O(|changes|): one packed chunk plus the DeltaDone.
    let stream_bytes = predicted.wire_bytes_for_label("delta-batch")
        + predicted.wire_bytes_for_label("delta-done");
    assert!(
        stream_bytes <= 64 + 8 * changes as u64,
        "stream of {stream_bytes} B not O(|changes|)"
    );

    // The ratios (see the doc comment for why 1/6 and 1/10 are the honest
    // achievable pins of the issue's "small fraction" target here).
    assert!(
        wire_total * 6 < full_bytes,
        "delta session {wire_total} B not under 1/6 of the {full_bytes} B full reconciliation"
    );
    assert!(
        (stream_bytes + 2 * FRAME_OVERHEAD) * 10 < full_bytes,
        "delta stream {stream_bytes} B not under 1/10 of the full reconciliation"
    );

    // Server-side stats agree: one delta session, no reconciliation.
    let stats = server.shutdown();
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.delta_sessions, 1);
    assert_eq!(stats.delta_fallbacks, 0);
    assert_eq!(stats.delta_elements, changes as u64);
    assert_eq!(stats.rounds, 0);
    assert_eq!(stats.estimator_exchanges, 0);
}

/// Acceptance: a session whose epoch the changelog no longer covers falls
/// back to the classic reconciliation, succeeds, and re-establishes a
/// servable epoch baseline.
#[test]
fn trimmed_changelog_falls_back_to_full_reconciliation() {
    let pool = distinct_keys(5_000, 0x721133D);
    let baseline: Vec<u64> = pool[..4_960].to_vec();
    // Capacity 1: only the newest batch survives, so an epoch-0 client is
    // always behind the log.
    let store = Arc::new(MutableStore::with_log_capacity(baseline.iter().copied(), 1));
    store.apply(&pool[4_960..4_980], &[]);
    store.apply(&pool[4_980..], &[]);
    assert!(store.changes_since(0).is_none(), "log must be trimmed");

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let config = ClientConfig::builder().seed(42).delta_epoch(0).build();
    let report = sync(server.local_addr(), &baseline, &config).expect("fallback sync");
    assert!(report.verified);
    assert!(report.delta_fallback, "must have fallen back");
    assert!(report.delta.is_none());
    assert_eq!(
        sorted(report.recovered.clone()),
        sorted(pool[4_960..].to_vec())
    );
    // The classic session's ack re-established the baseline: the epoch of
    // the snapshot it reconciled against.
    assert_eq!(report.epoch, Some(2));

    // From that baseline, the next sync is an (empty) delta again.
    let report2 = sync(
        server.local_addr(),
        &pool,
        &ClientConfig::builder()
            .seed(43)
            .delta_epoch(report.epoch.expect("baseline epoch"))
            .build(),
    )
    .expect("resumed delta sync");
    let delta = report2.delta.expect("delta served after re-baseline");
    assert_eq!(delta.batches, 0);
    assert!(delta.added.is_empty() && delta.removed.is_empty());

    let stats = server.shutdown();
    assert_eq!(stats.delta_fallbacks, 1);
    assert_eq!(stats.delta_sessions, 1);
    assert_eq!(stats.sessions_completed, 2);
}

/// A delta request against a store with no changelog at all (plain
/// `InMemoryStore`) is answered with `FullResyncRequired` and completes as
/// a classic session with no epoch baseline.
#[test]
fn epochless_stores_demand_full_resync() {
    let pool = distinct_keys(2_000, 0xE9_0C4);
    let store = Arc::new(InMemoryStore::new(pool[..1_990].iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let report = sync(
        server.local_addr(),
        &pool,
        &ClientConfig::builder()
            .seed(7)
            .known_d(10)
            .delta_epoch(123)
            .build(),
    )
    .expect("fallback sync");
    assert!(report.verified);
    assert!(report.delta_fallback);
    assert_eq!(report.epoch, None, "epoch-less stores grant no baseline");
    let stats = server.shutdown();
    assert_eq!(stats.delta_fallbacks, 1);
    assert_eq!(stats.delta_sessions, 0);
}

/// Soak: repeated delta syncs under concurrent `--watch-dir`-style
/// mutation converge to the live store, every sync's wire bytes matching
/// the ledger prediction for exactly the change batches it was served —
/// transferred delta bytes stay O(|changes|) by construction, asserted
/// against measured encodings rather than wall time.
#[test]
fn repeated_delta_syncs_track_a_concurrently_mutating_store() {
    let pool = distinct_keys(30_000, 0x50AC_50AC);
    let initial: Vec<u64> = pool[..20_000].to_vec();
    let store = Arc::new(MutableStore::new(initial.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // The mutator: 40 epoch batches, each inserting 16 fresh elements and
    // removing 8 current ones — the shape `pbs-syncd --watch-dir` produces
    // when a watched file keeps changing.
    let mutator = {
        let store = Arc::clone(&store);
        let fresh: Vec<u64> = pool[20_000..].to_vec();
        std::thread::spawn(move || {
            for i in 0..40usize {
                let adds = &fresh[i * 16..(i + 1) * 16];
                let snapshot = store.snapshot();
                let removes: Vec<u64> = snapshot.iter().copied().take(8).collect();
                store.apply(adds, &removes);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };

    // The subscriber: bootstrap from a snapshot, then follow by delta.
    let (boot, mut epoch) = store.snapshot_with_epoch();
    let mut local: HashSet<u64> = boot.into_iter().collect();
    let mut syncs = 0u64;
    let mut done_mutating = false;
    loop {
        if mutator.is_finished() {
            // One final sync after the last mutation is in the store.
            done_mutating = true;
        }
        let config = ClientConfig::builder()
            .seed(0x50AC + syncs)
            .delta_epoch(epoch)
            .build();
        let report = sync(addr, &[1], &config).expect("delta sync");
        let delta = report.delta.expect("changelog capacity is never exceeded");
        assert_eq!(delta.from_epoch, epoch);

        // Byte accounting: this sync must have been served exactly the
        // changelog batches in (from_epoch, to_epoch].
        let served: Vec<pbs_net::store::ChangeBatch> = store
            .changes_since(epoch)
            .expect("log intact")
            .into_iter()
            .filter(|b| b.epoch <= delta.to_epoch)
            .collect();
        let (predicted, frames) =
            predict_delta_sync(&config.pbs, config.seed, epoch, &served, delta.to_epoch);
        assert_eq!(report.frames_sent + report.frames_received, frames);
        assert_eq!(
            report.bytes_sent + report.bytes_received,
            predicted.wire_bytes_total() + FRAME_OVERHEAD * frames,
            "sync {syncs}: wire bytes diverged from the served batches"
        );

        delta.apply_to(&mut local);
        epoch = delta.to_epoch;
        syncs += 1;
        if done_mutating {
            break;
        }
    }
    mutator.join().expect("mutator");

    // The subscriber converged on the live store.
    let (now, now_epoch) = store.snapshot_with_epoch();
    assert_eq!(now_epoch, epoch, "final sync reached the head epoch");
    assert_eq!(sorted(now), sorted(local.into_iter().collect()));
    assert_eq!(store.len(), 20_000 + 40 * 16 - 40 * 8);

    let stats = server.shutdown();
    assert_eq!(stats.delta_sessions, syncs);
    assert_eq!(stats.sessions_completed, syncs);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.rounds, 0, "no reconciliation ever ran");
}
