//! Live push-subscription integration tests: clients park on the server's
//! streaming state and have store mutations pushed to them as they happen.
//!
//! Covered here:
//! * byte-exact push accounting against the store's changelog ledger
//!   (every pushed `DeltaBatch` is exactly the frame the chunking rule
//!   produces for the corresponding changelog batch);
//! * a 256-subscriber fan-out on a two-worker event loop, all receiving
//!   all 20 pushed mutation batches with exact byte accounting;
//! * backpressure: a push burst that exceeds the per-subscriber buffer
//!   evicts the subscriber with `FullResyncRequired` instead of buffering
//!   without bound;
//! * keepalive: an idle subscription outlives multiples of the liveness
//!   window because the server pings and the client pongs;
//! * shutdown: `Server::shutdown` wakes and drains parked subscribers —
//!   their iterators end cleanly and no session leaks (the
//!   `started == completed + failed` invariant holds in every test).

use pbs_net::client::{DeltaReport, SyncClient};
use pbs_net::frame::{delta_batch_frames, delta_chunk_capacity, Frame, DEFAULT_MAX_FRAME};
use pbs_net::server::{Server, ServerConfig};
use pbs_net::store::{InMemoryStore, MutableStore, StoreRegistry};
use pbs_net::NetError;
use std::collections::HashSet;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// The wire bytes the server must push for the changelog batches since
/// `epoch`: one `DeltaBatch` frame per chunk, computed with the same
/// chunking rule the server uses.
fn expected_push_bytes(store: &MutableStore, epoch: u64) -> (u64, u64) {
    let capacity = delta_chunk_capacity(DEFAULT_MAX_FRAME);
    let mut bytes = 0u64;
    let mut frames = 0u64;
    for batch in store.changes_since(epoch).expect("changelog intact") {
        for frame in delta_batch_frames(batch.epoch, &batch.added, &batch.removed, capacity) {
            bytes += frame.wire_len();
            frames += 1;
        }
    }
    (bytes, frames)
}

fn delta_done_len() -> u64 {
    Frame::DeltaDone { epoch: 0 }.wire_len()
}

#[test]
fn pushed_deltas_are_byte_exact_against_the_changelog() {
    let store = Arc::new(MutableStore::new(1..=100u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");

    let client = SyncClient::connect(server.local_addr()).expect("resolve");
    let mut sub = client.subscribe(store.epoch()).expect("subscribe");
    // The catch-up report on an unmutated store is empty but carries the
    // epoch baseline.
    let catch_up = sub.next().expect("catch-up").expect("catch-up ok");
    assert_eq!(catch_up.batches, 0);
    assert_eq!(catch_up.to_epoch, 0);
    let baseline_bytes = sub.bytes_received();
    let baseline_frames = sub.frames_received();

    // Five known mutation batches, mixing adds and removes.
    for b in 0..5u64 {
        let added: Vec<u64> = (0..10).map(|i| 10_000 + b * 100 + i).collect();
        let removed = vec![b * 7 + 1];
        store.apply(&added, &removed);
    }

    // Drain pushed reports until every batch arrived (the worker may
    // coalesce several changelog batches into one burst).
    let mut batches = 0u64;
    let mut reports = 0u64;
    let mut added = HashSet::new();
    let mut removed = HashSet::new();
    while batches < 5 {
        let report = sub.next().expect("live stream").expect("push ok");
        batches += report.batches;
        reports += 1;
        added.extend(report.added.iter().copied());
        removed.extend(report.removed.iter().copied());
    }
    assert_eq!(batches, 5);
    assert_eq!(sub.epoch(), 5, "epochs advance with the pushes");
    assert_eq!(added.len(), 50);
    assert_eq!(
        removed,
        (0..5u64).map(|b| b * 7 + 1).collect::<HashSet<_>>()
    );

    // Byte-exact accounting: what arrived is precisely the changelog's
    // batches under the wire chunking rule, plus one DeltaDone per burst.
    let (batch_bytes, batch_frames) = expected_push_bytes(&store, 0);
    let frames_delta = sub.frames_received() - baseline_frames;
    assert_eq!(frames_delta, batch_frames + reports);
    assert_eq!(
        sub.bytes_received() - baseline_bytes,
        batch_bytes + reports * delta_done_len(),
        "pushed bytes must match the changelog ledger exactly"
    );

    drop(sub);
    let stats = server.shutdown();
    assert_eq!(stats.subscriptions, 1);
    assert_eq!(stats.push_batches, batch_frames);
    assert_eq!(stats.subscribers_evicted, 0);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
}

#[test]
fn fan_out_256_subscribers_all_receive_every_batch() {
    const SUBSCRIBERS: usize = 256;
    const BATCHES: u64 = 20;
    const PER_BATCH: u64 = 10;

    let store = Arc::new(MutableStore::new(1..=50u64));
    let registry = Arc::new(StoreRegistry::new());
    registry.register("", Arc::clone(&store) as Arc<_>);
    let server = Server::bind_registry(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            workers: 2,
            // Keep keepalive pings out of the byte accounting.
            keepalive: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(SUBSCRIBERS + 1));
    let handles: Vec<_> = (0..SUBSCRIBERS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Stagger the connect storm a little so the accept backlog
                // never overflows.
                std::thread::sleep(Duration::from_millis(i as u64 % 32));
                let client = SyncClient::connect(addr).expect("resolve");
                let mut sub = client.subscribe(0).expect("subscribe");
                let catch_up = sub.next().expect("catch-up").expect("catch-up ok");
                assert_eq!(catch_up.batches, 0, "subscribed before any mutation");
                let baseline_bytes = sub.bytes_received();
                let baseline_frames = sub.frames_received();
                barrier.wait();

                let mut batches = 0u64;
                let mut reports = 0u64;
                let mut added = HashSet::new();
                while batches < BATCHES {
                    let report = sub.next().expect("live stream").expect("push ok");
                    batches += report.batches;
                    reports += 1;
                    added.extend(report.added.iter().copied());
                }
                (
                    batches,
                    reports,
                    sub.bytes_received() - baseline_bytes,
                    sub.frames_received() - baseline_frames,
                    added,
                )
            })
        })
        .collect();

    barrier.wait();
    let mut expected_added = HashSet::new();
    for b in 0..BATCHES {
        let added: Vec<u64> = (0..PER_BATCH).map(|i| 100_000 + b * 1_000 + i).collect();
        expected_added.extend(added.iter().copied());
        store.apply(&added, &[]);
    }

    let (batch_bytes, batch_frames) = expected_push_bytes(&store, 0);
    assert_eq!(batch_frames, BATCHES, "one frame per small changelog batch");
    for handle in handles {
        let (batches, reports, bytes, frames, added) = handle.join().expect("subscriber thread");
        assert_eq!(batches, BATCHES);
        assert_eq!(added, expected_added);
        // Exact byte accounting per subscriber: the batch frames are
        // byte-identical for everyone; only the number of DeltaDone
        // burst terminators varies with coalescing.
        assert_eq!(frames, batch_frames + reports);
        assert_eq!(bytes, batch_bytes + reports * delta_done_len());
    }

    let stats = server.shutdown();
    assert_eq!(stats.subscriptions, SUBSCRIBERS as u64);
    assert_eq!(stats.push_batches, BATCHES * SUBSCRIBERS as u64);
    assert_eq!(
        stats.push_elements,
        BATCHES * PER_BATCH * SUBSCRIBERS as u64
    );
    assert_eq!(stats.subscribers_evicted, 0);
    assert_eq!(stats.keepalive_pings, 0);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "a session vanished — a worker must have leaked"
    );
    assert!(stats.sessions_completed >= SUBSCRIBERS as u64);
}

#[test]
fn slow_subscribers_are_evicted_with_full_resync() {
    let store = Arc::new(MutableStore::new(1..=10u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            // A buffer far smaller than one big push burst: the very first
            // oversized push must evict instead of queueing unboundedly.
            subscriber_buffer: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let client = SyncClient::connect(server.local_addr()).expect("resolve");
    let mut sub = client.subscribe(0).expect("subscribe");
    sub.next().expect("catch-up").expect("catch-up ok");

    // One batch whose frames alone exceed the 256-byte subscriber buffer.
    let big: Vec<u64> = (0..500u64).map(|i| 50_000 + i).collect();
    store.apply(&big, &[]);

    match sub.next() {
        Some(Err(NetError::Protocol(msg))) => {
            assert!(msg.contains("resync"), "unexpected eviction message: {msg}")
        }
        other => panic!("expected eviction error, got {other:?}"),
    }
    assert!(sub.next().is_none(), "the stream ends after the eviction");

    let stats = server.shutdown();
    assert_eq!(stats.subscribers_evicted, 1);
    assert_eq!(stats.push_batches, 0, "the oversized burst was never sent");
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
}

#[test]
fn idle_subscriptions_survive_on_keepalive() {
    let keepalive = Duration::from_millis(100);
    let store = Arc::new(MutableStore::new(1..=10u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            keepalive,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let client = SyncClient::connect(server.local_addr()).expect("resolve");
    let mut sub = client.subscribe(0).expect("subscribe");
    sub.next().expect("catch-up").expect("catch-up ok");

    // Park the subscriber in next() across many keepalive windows (and
    // well past the 3x liveness cut): the server must ping, the client
    // must pong, and the session must still be alive for the push.
    let reader = std::thread::spawn(move || {
        let report = sub.next().expect("pushed after idle").expect("push ok");
        (report, sub)
    });
    std::thread::sleep(keepalive * 8);
    store.apply(&[777], &[]);
    let (report, sub) = reader.join().expect("reader thread");
    assert_eq!(report.added, vec![777]);
    drop(sub);

    let stats = server.shutdown();
    assert!(
        stats.keepalive_pings >= 2,
        "server pinged {} times across an 8x-keepalive idle window",
        stats.keepalive_pings
    );
    assert_eq!(stats.subscribers_evicted, 0);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
}

#[test]
fn shutdown_wakes_and_drains_streaming_sessions() {
    let store = Arc::new(MutableStore::new(1..=10u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");

    let client = SyncClient::connect(server.local_addr()).expect("resolve");
    let mut sub = client.subscribe(0).expect("subscribe");
    sub.next().expect("catch-up").expect("catch-up ok");

    // Block a reader in next() with nothing to push; shutdown must cut it
    // loose instead of waiting out a timeout.
    let reader = std::thread::spawn(move || {
        let tail: Vec<Result<DeltaReport, NetError>> = sub.collect();
        tail.len()
    });
    std::thread::sleep(Duration::from_millis(100));
    let stats = server.shutdown();

    assert_eq!(
        reader.join().expect("reader thread"),
        0,
        "clean end, no error"
    );
    assert_eq!(stats.sessions_failed, 0, "a drained subscriber completed");
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
}

#[test]
fn epoch_less_stores_refuse_subscriptions_cleanly() {
    let store = Arc::new(InMemoryStore::new(1..=10u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");

    let client = SyncClient::connect(server.local_addr()).expect("resolve");
    match client.subscribe(0) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("full sync"), "{msg}"),
        other => panic!("expected refusal, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.subscriptions, 0);
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed
    );
}
