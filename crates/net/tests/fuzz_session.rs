//! Protocol fuzz harness: a seeded generator builds *valid* v1/v2/v3 frame
//! streams, mutates them (truncation, bit flips, frame reordering,
//! duplicated frames, oversized length prefixes, raw garbage) and replays
//! them against a live server.
//!
//! The properties: the server worker never panics (detected two ways —
//! the stats invariant `started == completed + failed` would break if a
//! worker unwound mid-session, and the post-fuzz good syncs would hang if
//! the pool lost threads), every fuzzed session ends in an `Error` frame
//! or a connection close (never a hang beyond the configured timeouts, and
//! never a malformed reply — the client-side frame decoder validates every
//! byte the server sends back), and afterwards the server still serves
//! real reconciliations.
//!
//! Deterministic by default (`FUZZ_SEED` fixed in CI); export `FUZZ_SEED`
//! to explore a different corner locally. The seed is printed so any
//! failure is reproducible.

use pbs_core::{AliceSession, Pbs, PbsConfig};
use pbs_net::client::{sync_with_retry, ClientConfig, RetryPolicy};
use pbs_net::frame::{write_frame, EstimatorMsg, Frame, Hello, DEFAULT_MAX_FRAME};
use pbs_net::server::{InMemoryStore, Server, ServerConfig};
use pbs_net::store::{MutableStore, StoreRegistry};
use pbs_net::{FramedStream, NetError, TransportConfig};
use std::collections::HashSet;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// xorshift64* — tiny, seedable, good enough to drive mutations.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn fuzz_seed() -> u64 {
    std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF0CC_5EED_2026)
}

fn keys(count: usize, salt: u64) -> Vec<u64> {
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut x = salt | 1;
    while out.len() < count {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = (x >> 16 & 0xFFFF_FFFF) | 1;
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

fn encode(frames: &[Frame]) -> Vec<Vec<u8>> {
    frames
        .iter()
        .map(|f| {
            let mut buf = Vec::new();
            write_frame(&mut buf, f, DEFAULT_MAX_FRAME).expect("valid frame");
            buf
        })
        .collect()
}

/// The valid frame streams the mutator starts from: one client-side byte
/// stream per protocol generation, each of which completes cleanly when
/// replayed unmutated.
fn valid_streams(client_set: &[u64], d: u64) -> Vec<Vec<Vec<u8>>> {
    let cfg = PbsConfig::default();
    let seed = 0xF0CCu64;
    let sketch_round = |layers: u32| {
        let params = Pbs::new(cfg).plan(d as usize);
        let mut alice = AliceSession::new(cfg, params, client_set, seed);
        Frame::Sketches {
            m: params.m,
            batch: alice.start_rounds(layers),
        }
    };
    let hello = |version: u16| {
        let mut h = Hello::from_config(&cfg, seed, d);
        h.version = version;
        h
    };
    vec![
        // v1 classic: hello, one round, final transfer.
        encode(&[
            Frame::Hello(hello(1)),
            sketch_round(1),
            Frame::Done(client_set[..4].to_vec()),
        ]),
        // v2: named store, two pipelined layers.
        encode(&[
            Frame::Hello(hello(2).with_store("live").with_pipeline(2)),
            sketch_round(2),
            Frame::Done(vec![client_set[0]]),
        ]),
        // v3 delta subscription against the live store's changelog.
        encode(&[Frame::Hello(
            hello(3).with_store("live").with_delta_epoch(0),
        )]),
        // v3 live subscription: delta catch-up, park with Subscribe, probe
        // with Ping, answer an (unsolicited but legal) keepalive with Pong.
        // The server pushes the changelog batch since epoch 0 and closes
        // cleanly when the write side shuts down.
        encode(&[
            Frame::Hello(hello(3).with_store("live").with_delta_epoch(0)),
            Frame::Subscribe { epoch: 0 },
            Frame::Ping { nonce: 0xF0CC },
            Frame::Pong { nonce: 0xF0CC },
        ]),
        // v3 full session plus frames that are well-formed but make no
        // sense from a client (delta frames, estimator estimate) — the
        // state machine must refuse, not crash.
        encode(&[
            Frame::Hello(hello(3)),
            Frame::EstimatorExchange(EstimatorMsg::Estimate {
                d_param: 9,
                d_hat: 9.0,
            }),
            Frame::DeltaBatch {
                epoch: 3,
                added: vec![1, 2],
                removed: vec![9],
            },
        ]),
        // Hostile degenerate shape: zero-cell/zero-width sketch parameters
        // in the Hello. Every one of these would build a zero-sized table
        // or divide by zero somewhere downstream; config validation must
        // refuse them at the handshake, before any worker sees them.
        encode(&[Frame::Hello({
            let mut h = hello(1);
            h.universe_bits = 0;
            h.delta = 0;
            h.estimator_sketches = 0;
            h
        })]),
        // Degenerate round shape after a valid handshake: an empty sketch
        // batch (m matches, zero sketches). The shape check must refuse it
        // before the decode path is handed a zero-cell workload.
        encode(&[
            Frame::Hello(hello(1)),
            Frame::Sketches {
                m: Pbs::new(cfg).plan(d as usize).m,
                batch: vec![],
            },
        ]),
    ]
}

/// Apply one seeded mutation to a frame stream, returning the raw bytes to
/// put on the wire.
fn mutate(rng: &mut Rng, frames: &[Vec<u8>]) -> Vec<u8> {
    let mut frames: Vec<Vec<u8>> = frames.to_vec();
    match rng.below(7) {
        0 => {
            // Truncate the flattened stream mid-byte.
            let mut bytes: Vec<u8> = frames.concat();
            bytes.truncate(rng.below(bytes.len().max(1)));
            return bytes;
        }
        1 => {
            // Flip 1..=16 random bits anywhere in the stream.
            let mut bytes: Vec<u8> = frames.concat();
            if !bytes.is_empty() {
                for _ in 0..rng.below(16) + 1 {
                    let at = rng.below(bytes.len());
                    bytes[at] ^= 1 << rng.below(8);
                }
            }
            return bytes;
        }
        2 => {
            // Reorder two frames.
            if frames.len() >= 2 {
                let a = rng.below(frames.len());
                let b = rng.below(frames.len());
                frames.swap(a, b);
            }
        }
        3 => {
            // Duplicate a frame.
            let at = rng.below(frames.len());
            frames.insert(at, frames[at].clone());
        }
        4 => {
            // Oversize: patch a length prefix to a hostile value.
            let at = rng.below(frames.len());
            let huge = (DEFAULT_MAX_FRAME + 1 + rng.next() as u32 % 1024).to_le_bytes();
            frames[at][..4].copy_from_slice(&huge);
        }
        5 => {
            // Append raw garbage after a valid prefix.
            let keep = rng.below(frames.len() + 1);
            frames.truncate(keep);
            let mut garbage = vec![0u8; rng.below(200) + 8];
            for b in &mut garbage {
                *b = rng.next() as u8;
            }
            frames.push(garbage);
        }
        _ => {
            // Replace the whole stream with garbage.
            let mut garbage = vec![0u8; rng.below(400) + 1];
            for b in &mut garbage {
                *b = rng.next() as u8;
            }
            return garbage;
        }
    }
    frames.concat()
}

#[test]
fn fuzzed_streams_never_break_the_server() {
    let seed = fuzz_seed();
    println!("fuzz_session: FUZZ_SEED={seed}");
    let mut rng = Rng(seed | 1);

    let pool = keys(600, 0xF0CCB0B);
    let server_set: Vec<u64> = pool[..590].to_vec();
    let client_set: Vec<u64> = pool[10..].to_vec();

    let registry = Arc::new(StoreRegistry::new());
    registry.register("", Arc::new(InMemoryStore::new(server_set.iter().copied())));
    let live = Arc::new(MutableStore::new(server_set.iter().copied()));
    live.apply(&pool[590..], &[]);
    registry.register("live", Arc::clone(&live) as Arc<_>);

    // Short server-side read timeout: a truncated stream must release the
    // worker quickly instead of pinning it for the default 30 s.
    let transport = TransportConfig {
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(500)),
        ..TransportConfig::default()
    };
    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            transport,
            workers: 2,
            round_cap: 8,
            session_deadline: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let streams = valid_streams(&client_set, 20);

    // Sanity: the first four seed streams complete cleanly unmutated; the
    // rest — the protocol-violating stream and the degenerate-shape
    // streams (zero-cell Hello parameters, empty sketch batch) — must be
    // refused with an Error frame (not a crash, not a hang).
    for (i, stream) in streams.iter().enumerate() {
        let outcome = replay(addr, &stream.concat());
        if i < 4 {
            assert!(
                !matches!(outcome, Outcome::ServerError),
                "valid stream {i} was refused"
            );
        } else {
            assert!(
                matches!(outcome, Outcome::ServerError),
                "protocol-violating stream {i} was not refused with an Error frame"
            );
        }
    }

    // Nothing else to assert per iteration: replay() itself asserts that
    // every reply frame decodes and that the session terminates in an
    // Error frame or a close.
    let mut closes = 0u32;
    let mut error_frames = 0u32;
    for _ in 0..64u32 {
        let which = rng.below(streams.len());
        let bytes = mutate(&mut rng, &streams[which]);
        match replay(addr, &bytes) {
            Outcome::Clean | Outcome::Closed => closes += 1,
            Outcome::ServerError => error_frames += 1,
        }
    }
    println!("fuzz_session: {closes} closes, {error_frames} error frames");

    // The server must still reconcile for real — with more sequential
    // clients than workers, so a single panicked worker thread could not
    // hide. Retried: this server runs a deliberately brutal 200 ms read
    // timeout for the fuzz streams, which on a loaded box can clip a
    // legitimate session between frames — exactly the transient class
    // `RetryPolicy` exists for.
    let policy = RetryPolicy {
        attempts: 4,
        base_delay: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    for i in 0..4u64 {
        let config = ClientConfig::builder()
            .seed(0xAF7E_0000 + i)
            .known_d(20)
            .build();
        let (report, _) =
            sync_with_retry(addr, &client_set, &config, &policy).expect("post-fuzz sync");
        assert!(report.verified, "post-fuzz sync {i} failed to verify");
    }

    // Worker-panic detector: an unwound worker can neither mark its
    // session completed nor failed.
    let stats = server.shutdown();
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "a session vanished — a worker must have panicked"
    );
    assert!(stats.sessions_completed >= 4 + 4); // clean seed replays + good syncs
}

enum Outcome {
    /// The server replied and closed cleanly (EOF after valid frames).
    Clean,
    /// The connection was closed/reset/timed out without an `Error` frame.
    Closed,
    /// The server answered with a well-formed `Error` frame.
    ServerError,
}

/// Blind-write `bytes`, then drain the server's replies until the session
/// terminates. Panics (failing the test) only if a reply frame fails to
/// decode as a valid frame — everything else is a legal way for a fuzzed
/// session to end.
fn replay(addr: std::net::SocketAddr, bytes: &[u8]) -> Outcome {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    // The server may refuse and close while we are still writing; EPIPE /
    // reset here is expected.
    let mut w = &stream;
    let _ = w.write_all(bytes);
    let _ = w.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut framed = FramedStream::new(&stream, DEFAULT_MAX_FRAME);
    let mut got_any = false;
    loop {
        match framed.recv() {
            Ok(_) => got_any = true,
            Err(NetError::Remote { .. }) => return Outcome::ServerError,
            Err(NetError::Io(_)) => {
                return if got_any {
                    Outcome::Clean
                } else {
                    Outcome::Closed
                }
            }
            Err(other) => panic!("server sent an undecodable reply: {other}"),
        }
    }
}
