//! Crash-recovery soak: kill the durable store at injected crash points,
//! recover, and prove delta-sync convergence with exact epoch continuity.
//!
//! The acceptance bar of the durability layer: after N injected crashes at
//! distinct crash points (torn WAL append, partial snapshot temp file,
//! compaction interrupted between rename and truncate, corrupt snapshot
//! under the live name), a restarted server keeps serving delta
//! subscriptions against client epoch caches established *before* the
//! crashes — zero forced full resyncs for epochs the changelog still
//! covers — and recovery truncates torn WAL tails instead of failing.
//!
//! Deterministic by default; export `FUZZ_SEED` to vary the generated
//! workload (the CI fuzz-soak leg pins it).

use pbs_net::client::{sync, sync_with_retry, ClientConfig, RetryPolicy};
use pbs_net::store::{ChangeBatch, StoreOptions, StoreRegistry};
use pbs_net::wal::{self, CrashPoint, DurableOptions};
use pbs_net::{InMemoryStore, Server, ServerConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn seed() -> u64 {
    std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C_0CAFE)
}

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pbs_recovery_{tag}_{}_{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `count` distinct nonzero 32-bit-universe elements.
fn distinct_keys(count: usize, salt: u64) -> Vec<u64> {
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut x = salt | 1;
    while out.len() < count {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = (x >> 16 & 0xFFFF_FFFF) | 1;
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

fn sorted(set: &HashSet<u64>) -> Vec<u64> {
    let mut v: Vec<u64> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// The full kill-and-recover soak. One logical store lives across many
/// server "generations"; each generation ends in an injected crash at a
/// different crash point, and each recovery must hand every surviving
/// client a delta — never a forced full resync.
#[test]
fn kill_and_recover_soak_preserves_delta_continuity() {
    let root = tempdir("soak");
    let durable = DurableOptions {
        log_capacity: 1024,
        snapshot_every: 6,
        sync_writes: false,
    };
    let open = |crash_expected: bool| {
        let registry = Arc::new(StoreRegistry::new());
        registry.set_persistence_root(&root);
        let (store, recovery) = registry
            .register_durable("", durable, StoreOptions::default())
            .expect("open durable store");
        if !crash_expected {
            assert_eq!(recovery.truncated_bytes, 0);
        }
        let server = Server::bind_registry(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        (store, server, recovery)
    };

    // Generation 0: seed the store, give the client a full-sync baseline.
    let keys = distinct_keys(4000, seed());
    let mut expected: HashSet<u64> = keys[..1000].iter().copied().collect();
    let mut expected_epoch = 0u64;
    let (store, server, _) = open(false);
    store.apply(&keys[..1000], &[]);
    expected_epoch += 1;

    // The client holds a subset and reconciles up to the full set.
    let mut client: HashSet<u64> = keys[..900].iter().copied().collect();
    let client_vec: Vec<u64> = client.iter().copied().collect();
    let report =
        sync(server.local_addr(), &client_vec, &ClientConfig::default()).expect("baseline sync");
    assert!(report.verified);
    for e in &report.recovered {
        client.insert(*e);
    }
    let mut cached_epoch = report.epoch.expect("epoch-capable store");
    assert_eq!(cached_epoch, expected_epoch);
    assert_eq!(sorted(&client), sorted(&expected));
    let stats = server.shutdown();
    assert_eq!(stats.delta_fallbacks, 0);
    drop(store);

    // Crash generations: two full cycles over the four crash points.
    let crash_points = [
        CrashPoint::MidWalAppend,
        CrashPoint::MidSnapshotWrite,
        CrashPoint::MidCompaction,
        CrashPoint::TornSnapshot,
        CrashPoint::MidWalAppend,
        CrashPoint::MidSnapshotWrite,
        CrashPoint::MidCompaction,
        CrashPoint::TornSnapshot,
    ];
    let mut next_key = 1000usize;
    let mut total_truncations = 0u64;
    let mut total_rejected_snapshots = 0u64;
    for (generation, &point) in crash_points.iter().enumerate() {
        let (store, server, recovery) = open(true);
        assert_eq!(
            recovery.epoch, expected_epoch,
            "generation {generation}: exact epoch continuity across restarts"
        );
        total_truncations += recovery.truncated_bytes;
        total_rejected_snapshots += recovery.snapshots_rejected;

        // Normal life: a few effective batches (adds + removes).
        for _ in 0..3 {
            let add = &keys[next_key..next_key + 37];
            let drop_key = *expected.iter().next().unwrap();
            let epoch = store.apply(add, &[drop_key]);
            expected.extend(add.iter().copied());
            expected.remove(&drop_key);
            expected_epoch += 1;
            assert_eq!(epoch, expected_epoch);
            next_key += 37;
        }

        // The crash: arm the point, trigger the matching operation, treat
        // the Err as the process dying mid-syscall.
        store.inject_crash(Some(point));
        match point {
            CrashPoint::MidWalAppend => {
                let doomed = &keys[next_key..next_key + 5];
                next_key += 5;
                let err = store.try_apply(doomed, &[]).unwrap_err();
                assert_eq!(err.to_string(), "injected crash");
                // The write-ahead contract: the rejected batch never
                // reached memory either.
                assert_eq!(store.epoch(), expected_epoch);
                assert!(!store.contains(doomed[0]));
            }
            _ => {
                let err = store.compact_now().unwrap_err();
                assert_eq!(err.to_string(), "injected crash");
            }
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.delta_fallbacks, 0,
            "generation {generation}: no forced resyncs"
        );
        drop(store);

        // Restart; the surviving pre-crash epoch cache must be served a
        // delta, and applying it must converge the client exactly.
        let (store, server, recovery) = open(true);
        assert_eq!(recovery.epoch, expected_epoch);
        if matches!(point, CrashPoint::MidWalAppend) {
            assert!(
                recovery.truncated_bytes > 0,
                "generation {generation}: the torn WAL tail must be truncated, not fatal"
            );
        }
        total_truncations += recovery.truncated_bytes;
        total_rejected_snapshots += recovery.snapshots_rejected;
        let client_vec: Vec<u64> = client.iter().copied().collect();
        let config = ClientConfig::builder().delta_epoch(cached_epoch).build();
        let report = sync(server.local_addr(), &client_vec, &config).expect("delta sync");
        assert!(
            !report.delta_fallback,
            "generation {generation}: cached epoch {cached_epoch} must still be covered"
        );
        let delta = report.delta.as_ref().expect("delta subscription granted");
        delta.apply_to(&mut client);
        cached_epoch = report.epoch.expect("new baseline");
        assert_eq!(cached_epoch, expected_epoch);
        assert_eq!(
            sorted(&client),
            sorted(&expected),
            "generation {generation}: delta replay converges to the recovered store"
        );
        let stats = server.shutdown();
        assert_eq!(stats.delta_fallbacks, 0);
        drop(store);
    }
    assert!(
        total_truncations > 0,
        "the MidWalAppend generations must have produced (and survived) torn tails"
    );
    assert!(
        total_rejected_snapshots > 0,
        "the TornSnapshot generations must have produced (and survived) corrupt snapshots"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// A client with `--retry` rides out a server that is down when the sync
/// starts (the restart window) and converges once it is back.
#[test]
fn retry_rides_out_a_server_restart() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener); // the port is now dead — connects are refused
    let server_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(400));
        let store = Arc::new(InMemoryStore::new(2..=100u64));
        Server::bind(addr, store, ServerConfig::default()).expect("bind")
    });
    let alice: Vec<u64> = (1..=99).collect();
    let policy = RetryPolicy {
        attempts: 12,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(400),
        jitter_seed: seed(),
    };
    let (report, attempts) =
        sync_with_retry(addr, &alice, &ClientConfig::default(), &policy).expect("retry converges");
    assert!(report.verified);
    assert!(
        attempts > 1,
        "the first attempt must have hit the dead port"
    );
    let mut diff = report.recovered.clone();
    diff.sort_unstable();
    assert_eq!(diff, vec![1, 100]);
    server_thread.join().unwrap().shutdown();
}

/// Deterministic replay of a batch sequence: the expected (set, epoch)
/// ladder a recovery may land on.
fn build_states(batches: &[ChangeBatch]) -> Vec<HashSet<u64>> {
    let mut states = vec![HashSet::new()];
    for batch in batches {
        let mut next: HashSet<u64> = states.last().unwrap().clone();
        for e in &batch.removed {
            next.remove(e);
        }
        next.extend(batch.added.iter().copied());
        states.push(next);
    }
    states
}

/// Generate `n` effective batches over a deterministic key stream.
fn generate_batches(n: usize, salt: u64) -> Vec<ChangeBatch> {
    let keys = distinct_keys(n * 8, salt);
    let mut live: Vec<u64> = Vec::new();
    let mut batches = Vec::with_capacity(n);
    let mut cursor = 0usize;
    for i in 0..n {
        let add: Vec<u64> = keys[cursor..cursor + 5].to_vec();
        cursor += 5;
        let removed: Vec<u64> = if i % 3 == 2 && !live.is_empty() {
            vec![live.swap_remove(i % live.len())]
        } else {
            Vec::new()
        };
        live.extend(add.iter().copied());
        batches.push(ChangeBatch {
            epoch: (i + 1) as u64,
            added: add,
            removed,
        });
    }
    batches
}

/// Write `batches` as a fresh WAL in `dir`.
fn write_wal(dir: &std::path::Path, batches: &[ChangeBatch]) {
    let mut w = wal::Wal::open(
        dir,
        DurableOptions {
            snapshot_every: 0,
            ..DurableOptions::default()
        },
    )
    .unwrap();
    for b in batches {
        w.append(b.epoch, &b.added, &b.removed).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recovery over a torn (truncated-anywhere) WAL never panics and
    /// lands exactly on a valid batch prefix.
    #[test]
    fn torn_wal_tails_recover_to_a_batch_prefix(
        n in 1usize..8,
        salt in any::<u64>(),
        cut_pos in 0usize..4096,
    ) {
        let dir = tempdir("prop_torn");
        let batches = generate_batches(n, salt | 1);
        let states = build_states(&batches);
        write_wal(&dir, &batches);
        let bytes = wal::read_wal_bytes(&dir).unwrap();
        let cut = cut_pos % (bytes.len() + 1);
        wal::write_wal_bytes(&dir, &bytes[..cut]).unwrap();

        let rec = wal::recover(&dir, 1024).unwrap();
        let k = rec.epoch as usize;
        prop_assert!(k <= n);
        prop_assert_eq!(&rec.elements, &states[k], "set must match epoch {}", k);
        if let Some(last) = rec.log.last() {
            prop_assert_eq!(last.epoch, rec.epoch);
        }
        // Idempotence: recovering the already-truncated log changes nothing.
        let again = wal::recover(&dir, 1024).unwrap();
        prop_assert_eq!(again.epoch, rec.epoch);
        prop_assert_eq!(again.truncated_bytes, 0);
        prop_assert_eq!(again.elements, rec.elements);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A single flipped bit anywhere in the WAL is caught (by the CRC, the
    /// length prefix validation, or the epoch sequencing) and recovery
    /// still lands on a consistent (set, epoch) prefix pair.
    #[test]
    fn bit_flipped_wal_recovers_to_a_batch_prefix(
        n in 1usize..8,
        salt in any::<u64>(),
        flip_pos in 0usize..4096,
        flip_bit in 0u32..8,
    ) {
        let dir = tempdir("prop_flip");
        let batches = generate_batches(n, salt | 1);
        let states = build_states(&batches);
        write_wal(&dir, &batches);
        let mut bytes = wal::read_wal_bytes(&dir).unwrap();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        wal::write_wal_bytes(&dir, &bytes).unwrap();

        let rec = wal::recover(&dir, 1024).unwrap();
        let k = rec.epoch as usize;
        prop_assert!(k <= n);
        prop_assert_eq!(&rec.elements, &states[k], "set must match epoch {}", k);
        // The flipped record and everything after it are gone from disk.
        let again = wal::recover(&dir, 1024).unwrap();
        prop_assert_eq!(again.truncated_bytes, 0);
        prop_assert_eq!(again.epoch, rec.epoch);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A duplicated tail record (a replayed append after an unclean kill)
    /// carries the current epoch, so recovery folds it into the last batch
    /// as a continuation chunk: the epoch must not advance and the set must
    /// stay exactly the batch-prefix state — never a double-apply.
    #[test]
    fn duplicated_wal_tail_is_dropped_not_reapplied(
        n in 1usize..8,
        salt in any::<u64>(),
    ) {
        let dir = tempdir("prop_dup");
        let batches = generate_batches(n, salt | 1);
        let states = build_states(&batches);
        write_wal(&dir, &batches);
        let bytes = wal::read_wal_bytes(&dir).unwrap();
        // Duplicate the last record verbatim (re-encode it alone to find
        // its byte length).
        let solo = tempdir("prop_dup_solo");
        write_wal(&solo, std::slice::from_ref(&batches[n - 1]));
        let record = wal::read_wal_bytes(&solo).unwrap();
        std::fs::remove_dir_all(&solo).unwrap();
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&record);
        wal::write_wal_bytes(&dir, &doubled).unwrap();

        let rec = wal::recover(&dir, 1024).unwrap();
        prop_assert_eq!(rec.epoch, n as u64, "the duplicate must not advance the epoch");
        prop_assert_eq!(&rec.elements, &states[n]);
        // Idempotent from here on: a second recovery sees a valid log.
        let again = wal::recover(&dir, 1024).unwrap();
        prop_assert_eq!(again.epoch, rec.epoch);
        prop_assert_eq!(again.elements, rec.elements);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
