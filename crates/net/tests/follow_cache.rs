//! Kill-timing regression test for the `pbs-sync --follow` epoch cache.
//!
//! The bug: `--follow` printed each pushed delta *before* rewriting the
//! epoch cache, and never persisted the baseline epoch at all — so a
//! client killed between consuming a delta (or the baseline sync) and the
//! atomic rewrite would resume from a stale epoch and re-fetch (or full
//! resync) work it had already applied. The fix flushes the cache before
//! the delta is acknowledged on stdout, which this test exploits: the
//! moment a delta line is observable on the pipe, the cache must already
//! hold that delta's `to_epoch` — at which point the process is SIGKILLed
//! and the cache must still carry the final epoch, and a fresh sync from
//! it must ride the delta path without falling back.

use pbs_net::client::ClientConfig;
use pbs_net::server::{Server, ServerConfig};
use pbs_net::setio;
use pbs_net::store::{MutableStore, SetStore};
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::Arc;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pbs-follow-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn cached_epoch(path: &std::path::Path) -> Option<u64> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

#[test]
fn follow_flushes_epoch_cache_before_printing_each_delta() {
    const RANGE: usize = 64;
    const DELTAS: u64 = 5;

    let dir = tempdir("order");
    let cache = dir.join("epoch.cache");
    let base: Vec<u64> = setio::demo_set(RANGE, 0xB0B);
    let store = Arc::new(MutableStore::new(base.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut child = Command::new(env!("CARGO_BIN_EXE_pbs-sync"))
        .args([
            "--connect",
            &addr.to_string(),
            "--range",
            &RANGE.to_string(),
            "--follow",
            "--epoch-cache",
            cache.to_str().expect("utf8 path"),
            "--quiet",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn pbs-sync --follow");
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();

    // Baseline: the epoch cache did not exist, so the follow runs one full
    // sync first. Its epoch is durable state — the cache must hold it the
    // moment the baseline is announced (the old code never wrote it).
    loop {
        let line = lines
            .next()
            .expect("stdout open through baseline")
            .expect("read line");
        if line.contains("baseline sync") {
            assert!(
                line.ends_with("epoch 0"),
                "fresh store baseline at epoch 0, got: {line}"
            );
            break;
        }
    }
    assert_eq!(
        cached_epoch(&cache),
        Some(0),
        "baseline epoch must be persisted before it is announced"
    );

    // Push deltas one at a time. The instant a delta's line is readable on
    // the pipe, the cache must already hold its epoch: the rewrite happens
    // strictly before the print, so a kill at any observable point leaves
    // the cache current.
    for epoch in 1..=DELTAS {
        store.apply(&[1_000_000 + epoch], &[]);
        loop {
            let line = lines
                .next()
                .expect("stdout open through the push stream")
                .expect("read line");
            if line.contains(&format!("→ {epoch} in")) {
                break;
            }
        }
        assert_eq!(
            cached_epoch(&cache),
            Some(epoch),
            "cache must already hold epoch {epoch} when its delta prints"
        );
    }

    // The kill: the follow dies right after acknowledging the last delta,
    // before it could do any further bookkeeping.
    child.kill().expect("kill follow client");
    let _ = child.wait();
    assert_eq!(
        cached_epoch(&cache),
        Some(DELTAS),
        "a killed follow must leave the cache at the last consumed epoch"
    );

    // Resume: a fresh sync seeded from the cache rides the delta path —
    // no fallback, nothing re-fetched.
    let resume_epoch = cached_epoch(&cache).expect("cache readable");
    let local: Vec<u64> = store.snapshot();
    let config = ClientConfig::builder().delta_epoch(resume_epoch).build();
    let report = pbs_net::client::sync(addr, &local, &config).expect("resume sync");
    let delta = report.delta.expect("resume took the delta path");
    assert_eq!(delta.from_epoch, resume_epoch);
    assert!(!report.delta_fallback, "no full-resync fallback on resume");
    assert!(delta.added.is_empty() && delta.removed.is_empty());

    let stats = server.shutdown();
    assert_eq!(
        stats.sessions_started,
        stats.sessions_completed + stats.sessions_failed,
        "the killed follow session must still be accounted for"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
