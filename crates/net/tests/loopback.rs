//! Loopback integration: client and server reconcile 100k-element sets with
//! d ∈ {10, 100, 1000} differences over real TCP sockets.
//!
//! For each difference size the test also runs the *in-process* protocol —
//! the same state machines exchanging the same frames by function call —
//! and records every frame's serialized payload into a
//! [`protocol::Transcript`] via `send_encoded`. The networked run must then
//! (a) recover the exact symmetric difference, (b) converge the server's
//! store onto `A ∪ B`, and (c) put *exactly* the predicted payload bytes
//! plus 8 bytes of len/CRC framing per frame on the wire — which keeps the
//! measured total within the 10% envelope of the transcript's payload
//! accounting that the acceptance criterion demands.

use estimator::{inflate_estimate, Estimator, TowEstimator};
use pbs_core::{AliceSession, BobSession, Pbs, PbsConfig, ESTIMATOR_SEED_SALT};
use pbs_net::client::{sync, ClientConfig, Pipeline};
use pbs_net::frame::{EstimatorMsg, Frame, Hello, FRAME_OVERHEAD, PROTOCOL_VERSION};
use pbs_net::server::{InMemoryStore, Server, ServerConfig};
use pbs_net::store::{MutableStore, StoreRegistry};
use pbs_net::NetError;
use protocol::{Direction, Transcript};
use std::collections::HashSet;
use std::sync::Arc;

/// `count` distinct nonzero 32-bit-universe elements.
fn distinct_keys(count: usize, salt: u64) -> Vec<u64> {
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut x = salt | 1;
    while out.len() < count {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = (x >> 16 & 0xFFFF_FFFF) | 1;
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

/// Split a pool into Alice's and Bob's sets with a two-sided difference of
/// `d` elements (`⌈d/2⌉` exclusive to Alice, `⌊d/2⌋` exclusive to Bob).
fn two_sided_pair(pool: &[u64], d: usize) -> (Vec<u64>, Vec<u64>) {
    let only_alice = d.div_ceil(2);
    let only_bob = d / 2;
    let alice = pool[..pool.len() - only_bob].to_vec();
    let bob = pool[only_alice..].to_vec();
    (alice, bob)
}

struct ReferencePrediction {
    transcript: Transcript,
    frames: u64,
    recovered: Vec<u64>,
    pushed: usize,
    rounds: u32,
    round_trips: u32,
    d_param: u64,
}

/// Run the protocol in-process, mirroring the client/server state machines
/// frame for frame, and ledger every frame's serialized body into a
/// transcript (`wire_bytes` = type byte + payload; the socket adds
/// [`FRAME_OVERHEAD`] per frame on top). `pipeline` is the client's layer
/// depth — 1 reproduces the classic one-round-per-trip protocol.
fn reference_run(
    alice_set: &[u64],
    bob_set: &[u64],
    cfg: PbsConfig,
    seed: u64,
    round_cap: u32,
    pipeline: u32,
) -> ReferencePrediction {
    let mut transcript = Transcript::new();
    let mut frames = 0u64;
    let mut record = |t: &mut Transcript, dir, label, bits: u64, frame: &Frame| {
        t.send_encoded(dir, label, bits, frame.encode_body().len() as u64);
        frames += 1;
    };

    // Handshake: the server echoes the client's Hello (the version already
    // matches), so both frames serialize identically.
    let hello = Hello::from_config(&cfg, seed, 0);
    let hello_frame = Frame::Hello(hello);
    let hello_bits = hello_frame.encode_body().len() as u64 * 8;
    record(
        &mut transcript,
        Direction::AliceToBob,
        "hello",
        hello_bits,
        &hello_frame,
    );
    record(
        &mut transcript,
        Direction::BobToAlice,
        "hello",
        hello_bits,
        &hello_frame,
    );

    // Estimator exchange.
    let est_seed = xhash::derive_seed(seed, ESTIMATOR_SEED_SALT);
    let mut bank_a = TowEstimator::new(cfg.estimator_sketches, est_seed);
    bank_a.insert_slice(alice_set);
    let mut bank_b = TowEstimator::new(cfg.estimator_sketches, est_seed);
    bank_b.insert_slice(bob_set);
    let bank_frame = Frame::EstimatorExchange(EstimatorMsg::TowBank(bank_a.to_bytes()));
    record(
        &mut transcript,
        Direction::AliceToBob,
        "estimator-bank",
        bank_a.wire_bits(),
        &bank_frame,
    );
    let d_hat = bank_a.estimate(&bank_b);
    let d_param = inflate_estimate(d_hat) as u64;
    record(
        &mut transcript,
        Direction::BobToAlice,
        "estimate",
        64 + 64,
        &Frame::EstimatorExchange(EstimatorMsg::Estimate { d_param, d_hat }),
    );

    // Round loop — the exact shape of `pbs_net::client::sync`.
    let params = Pbs::new(cfg).plan(d_param as usize);
    let mut alice = AliceSession::new(cfg, params, alice_set, seed);
    let mut bob = BobSession::new(cfg, params, bob_set, seed);
    while alice.round() < round_cap {
        let layers = pipeline.min(round_cap - alice.round());
        let batch = alice.start_rounds(layers);
        let sketch_bits: u64 = batch.iter().map(|s| s.wire_bits(params.m)).sum();
        record(
            &mut transcript,
            Direction::AliceToBob,
            "sketches",
            sketch_bits,
            &Frame::Sketches {
                m: params.m,
                batch: batch.clone(),
            },
        );
        let reports = bob.handle_sketches(&batch);
        let report_bits: u64 = reports
            .iter()
            .map(|r| r.wire_bits(params.m, cfg.universe_bits))
            .sum();
        record(
            &mut transcript,
            Direction::BobToAlice,
            "reports",
            report_bits,
            &Frame::Reports(reports.clone()),
        );
        transcript.record_round_trip();
        let status = alice.apply_reports(&reports);
        transcript.next_round();
        if status.all_verified {
            break;
        }
    }

    // Final transfer + ack.
    let rounds = alice.round();
    let round_trips = alice.round_trips();
    let holdings: HashSet<u64> = alice_set.iter().copied().collect();
    let recovered = alice.into_recovered();
    let pushed: Vec<u64> = recovered
        .iter()
        .copied()
        .filter(|e| holdings.contains(e))
        .collect();
    record(
        &mut transcript,
        Direction::AliceToBob,
        "final-transfer",
        pushed.len() as u64 * cfg.universe_bits as u64,
        &Frame::Done(pushed.clone()),
    );
    record(
        &mut transcript,
        Direction::BobToAlice,
        "final-ack",
        0,
        &Frame::Done(Vec::new()),
    );

    ReferencePrediction {
        transcript,
        frames,
        recovered,
        pushed: pushed.len(),
        rounds,
        round_trips,
        d_param,
    }
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

#[test]
fn loopback_reconciles_100k_sets_within_the_transcript_byte_envelope() {
    let pool = distinct_keys(100_000 + 500, 0x100C_BACC);
    for &d in &[10usize, 100, 1000] {
        let (alice_set, bob_set) = two_sided_pair(&pool[..100_000 + d / 2], d);
        assert_eq!(alice_set.len(), 100_000);
        let truth: Vec<u64> = sorted(
            pool[..d.div_ceil(2)]
                .iter()
                .chain(&pool[100_000 - d / 2 + d.div_ceil(2)..100_000 + d / 2])
                .copied()
                .collect(),
        );
        assert_eq!(truth.len(), d);

        let seed = 0xAB5_0000 + d as u64;
        let client_cfg = ClientConfig::builder().seed(seed).build();
        let predicted = reference_run(
            &alice_set,
            &bob_set,
            client_cfg.pbs,
            seed,
            client_cfg.round_cap,
            1,
        );
        assert_eq!(
            sorted(predicted.recovered.clone()),
            truth,
            "d={d} reference"
        );

        // The networked run, over a real socket pair.
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let report = sync(server.local_addr(), &alice_set, &client_cfg).expect("sync");

        // (a) Exact recovery.
        assert!(report.verified, "d={d}: checksums did not verify");
        assert_eq!(sorted(report.recovered.clone()), truth, "d={d} recovery");
        assert_eq!(report.rounds, predicted.rounds, "d={d} round count");
        assert_eq!(report.d_param, predicted.d_param, "d={d} parameterization");
        assert_eq!(
            report.pushed.len(),
            predicted.pushed,
            "d={d} final transfer"
        );
        assert_eq!(report.negotiated_version, PROTOCOL_VERSION);

        // (b) The server's store converged on A ∪ B.
        assert_eq!(store.len(), 100_000 + d / 2, "d={d} server union size");
        assert!(pool[..d.div_ceil(2)].iter().all(|&e| store.contains(e)));

        // (c) Byte accounting: the wire carried exactly the predicted
        // payloads plus 8 bytes of framing per frame — and therefore lands
        // within 10% of the in-process transcript's payload bytes.
        let wire_total = report.bytes_sent + report.bytes_received;
        let frames_total = report.frames_sent + report.frames_received;
        let payload_total = predicted.transcript.wire_bytes_total();
        assert_eq!(frames_total, predicted.frames, "d={d} frame count");
        assert_eq!(
            wire_total,
            payload_total + FRAME_OVERHEAD * frames_total,
            "d={d}: wire bytes diverged from the predicted frames"
        );
        assert!(
            wire_total <= payload_total + payload_total / 10,
            "d={d}: {wire_total} wire bytes exceed 110% of {payload_total} payload bytes"
        );
        // The real encoding stays within ~2x of the paper's
        // information-theoretic accounting for the same messages.
        let paper_bytes = predicted.transcript.stats().total_bytes();
        assert!(
            wire_total >= paper_bytes,
            "d={d}: wire bytes below the information-theoretic floor"
        );

        let stats = server.shutdown();
        assert_eq!(stats.sessions_started, 1);
        assert_eq!(stats.sessions_completed, 1);
        assert_eq!(stats.sessions_failed, 0);
        assert_eq!(stats.rounds, report.rounds as u64);
        assert_eq!(stats.estimator_exchanges, 1);
        assert_eq!(stats.elements_received, predicted.pushed as u64);
        assert_eq!(stats.bytes_in, report.bytes_sent, "d={d} server bytes in");
        assert_eq!(stats.bytes_out, report.bytes_received, "d={d} bytes out");
    }
}

#[test]
fn out_of_universe_elements_fail_fast_client_side() {
    // No server needed: the check runs before the connection is opened.
    let config = ClientConfig::default();
    match sync("127.0.0.1:1", &[1, 2, 1u64 << 40], &config) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("universe"), "{msg}"),
        other => panic!("expected universe refusal, got {other:?}"),
    }
    match sync("127.0.0.1:1", &[1, 0], &config) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("universe"), "{msg}"),
        other => panic!("expected zero-element refusal, got {other:?}"),
    }
}

#[test]
fn known_d_skips_the_estimator_exchange() {
    let pool = distinct_keys(5_000, 0xD00D);
    let (alice_set, bob_set) = two_sided_pair(&pool, 40);
    let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let config = ClientConfig::builder().known_d(40).seed(7).build();
    let report = sync(server.local_addr(), &alice_set, &config).expect("sync");
    assert!(report.verified);
    assert_eq!(report.d_param, 40);
    assert_eq!(report.estimated_d, None);
    assert_eq!(report.recovered.len(), 40);
    let stats = server.shutdown();
    assert_eq!(stats.estimator_exchanges, 0);
    assert_eq!(stats.sessions_completed, 1);
}

#[test]
fn concurrent_clients_share_the_worker_pool() {
    let pool = distinct_keys(3_000, 0xCAFE);
    let (alice_set, bob_set) = two_sided_pair(&pool, 20);
    let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            let set = alice_set.clone();
            std::thread::spawn(move || {
                let config = ClientConfig::builder().seed(100 + i).known_d(20).build();
                sync(addr, &set, &config).expect("concurrent sync")
            })
        })
        .collect();
    for handle in handles {
        let report = handle.join().expect("client thread");
        assert!(report.verified);
        // A session that snapshots the store *after* another client's final
        // transfer landed sees only Bob's exclusive elements (A ∪ B is
        // already converging), so the recovered difference is 20 or 10.
        assert!(
            report.recovered.len() == 20 || report.recovered.len() == 10,
            "unexpected |A△B| = {}",
            report.recovered.len()
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.sessions_completed, 4);
    assert_eq!(stats.sessions_failed, 0);
    // Every client pushed A \ B; the store holds the full union.
    assert_eq!(store.len(), 3_000);
}

#[test]
fn server_rejects_protocol_violations() {
    let store = Arc::new(InMemoryStore::new(1..=100u64));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            round_cap: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let transport = pbs_net::TransportConfig::default();

    // Version 0 is refused at the handshake.
    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut framed = pbs_net::FramedStream::from_tcp(stream, &transport).unwrap();
        let mut hello = Hello::from_config(&PbsConfig::default(), 1, 1);
        hello.version = 0;
        framed.send(&Frame::Hello(hello)).unwrap();
        match framed.recv() {
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, pbs_net::frame::ErrorCode::Version)
            }
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    // A mid-session frame before the handshake is a protocol error.
    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut framed = pbs_net::FramedStream::from_tcp(stream, &transport).unwrap();
        framed.send(&Frame::Done(vec![1, 2, 3])).unwrap();
        match framed.recv() {
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, pbs_net::frame::ErrorCode::Protocol)
            }
            other => panic!("expected protocol refusal, got {other:?}"),
        }
    }

    // A hostile delta of zero is refused as bad config.
    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut framed = pbs_net::FramedStream::from_tcp(stream, &transport).unwrap();
        let mut hello = Hello::from_config(&PbsConfig::default(), 1, 1);
        hello.delta = 0;
        framed.send(&Frame::Hello(hello)).unwrap();
        match framed.recv() {
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, pbs_net::frame::ErrorCode::BadConfig)
            }
            other => panic!("expected config refusal, got {other:?}"),
        }
    }

    // A final transfer with out-of-universe elements must not poison the
    // store (they could never verify in any later session).
    {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut framed = pbs_net::FramedStream::from_tcp(stream, &transport).unwrap();
        framed
            .send(&Frame::Hello(Hello::from_config(
                &PbsConfig::default(),
                5,
                1,
            )))
            .unwrap();
        let Ok(Frame::Hello(_)) = framed.recv() else {
            panic!("handshake refused")
        };
        framed
            .send(&Frame::Done(vec![0x7777, 0, 1u64 << 40]))
            .unwrap();
        match framed.recv() {
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, pbs_net::frame::ErrorCode::BadConfig)
            }
            other => panic!("expected poisoning refusal, got {other:?}"),
        }
        // The whole batch is refused — even its in-universe element.
        assert!(!store.contains(0) && !store.contains(0x7777) && !store.contains(1u64 << 40));
    }

    let stats = server.shutdown();
    assert_eq!(stats.sessions_completed, 0);
    assert_eq!(stats.sessions_failed, 4);
    assert_eq!(stats.elements_received, 0);
}

#[test]
fn pipelined_rounds_cut_round_trips_at_d_1000_within_the_byte_envelope() {
    // Same sets, same seed, two identical servers: one sync in the classic
    // one-round-per-trip v1 shape, one with three pipelined layers per
    // trip. The pipelined run must recover the identical difference in
    // strictly fewer request-response round trips, and its wire bytes must
    // still match its own transcript prediction exactly (and therefore
    // stay within the 10% framing envelope).
    let d = 1000usize;
    let pool = distinct_keys(100_000 + d / 2, 0x91BE_11FE);
    let (alice_set, bob_set) = two_sided_pair(&pool, d);
    let truth: Vec<u64> = sorted(
        pool[..d.div_ceil(2)]
            .iter()
            .chain(&pool[100_000 - d / 2 + d.div_ceil(2)..])
            .copied()
            .collect(),
    );
    assert_eq!(truth.len(), d);
    let seed = 0x1175_1000u64;

    let mut reports = Vec::new();
    for pipeline in [1u32, 3] {
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig::default(),
        )
        .expect("bind");
        let config = ClientConfig::builder()
            .seed(seed)
            .pipeline(Pipeline::Depth(pipeline))
            .build();
        let predicted = reference_run(
            &alice_set,
            &bob_set,
            config.pbs,
            seed,
            config.round_cap,
            pipeline,
        );
        assert_eq!(
            sorted(predicted.recovered.clone()),
            truth,
            "pipeline={pipeline} reference recovery"
        );
        let report = sync(server.local_addr(), &alice_set, &config).expect("sync");
        assert!(report.verified, "pipeline={pipeline}: did not verify");
        assert_eq!(sorted(report.recovered.clone()), truth);
        assert_eq!(report.round_trips, predicted.round_trips);
        assert_eq!(report.rounds, predicted.rounds);
        assert_eq!(
            predicted.transcript.round_trips(),
            predicted.round_trips,
            "transcript round-trip ledger"
        );

        // Byte accounting against this run's own transcript.
        let wire_total = report.bytes_sent + report.bytes_received;
        let frames_total = report.frames_sent + report.frames_received;
        let payload_total = predicted.transcript.wire_bytes_total();
        assert_eq!(frames_total, predicted.frames);
        assert_eq!(
            wire_total,
            payload_total + FRAME_OVERHEAD * frames_total,
            "pipeline={pipeline}: wire bytes diverged from the prediction"
        );
        assert!(
            wire_total <= payload_total + payload_total / 10,
            "pipeline={pipeline}: framing overhead above 10%"
        );

        let stats = server.shutdown();
        assert_eq!(stats.round_trips, report.round_trips as u64);
        assert_eq!(stats.rounds, report.rounds as u64);
        reports.push(report);
    }
    let (serial, pipelined) = (&reports[0], &reports[1]);
    assert_eq!(serial.round_trips, serial.rounds);
    assert!(
        pipelined.round_trips < serial.round_trips,
        "pipelined {} trips not fewer than serial {}",
        pipelined.round_trips,
        serial.round_trips
    );
}

#[test]
fn two_named_stores_sync_concurrently_through_one_server() {
    // One server, two named stores plus a default store; two clients per
    // named store reconcile concurrently. Each store must converge on its
    // own union and count its own sessions.
    let pool_a = distinct_keys(4_000, 0xA11A);
    let pool_b = distinct_keys(4_000, 0xB22B);
    let (alice_a, bob_a) = two_sided_pair(&pool_a, 30);
    let (alice_b, bob_b) = two_sided_pair(&pool_b, 50);

    let registry = Arc::new(StoreRegistry::new());
    registry.register("", Arc::new(InMemoryStore::new(1..=10u64)));
    let store_a = Arc::new(InMemoryStore::new(bob_a.iter().copied()));
    let store_b = Arc::new(InMemoryStore::new(bob_b.iter().copied()));
    registry.register("alpha", Arc::clone(&store_a) as Arc<_>);
    registry.register("beta", Arc::clone(&store_b) as Arc<_>);

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let spawn = |store: &str, set: Vec<u64>, d: u64, seed: u64| {
        let store = store.to_string();
        std::thread::spawn(move || {
            let config = ClientConfig::builder()
                .store(store)
                .known_d(d)
                .seed(seed)
                .pipeline(Pipeline::Depth(2))
                .build();
            sync(addr, &set, &config).expect("store sync")
        })
    };
    let handles = vec![
        spawn("alpha", alice_a.clone(), 30, 1),
        spawn("beta", alice_b.clone(), 50, 2),
        spawn("alpha", alice_a.clone(), 30, 3),
        spawn("beta", alice_b.clone(), 50, 4),
    ];
    for handle in handles {
        let report = handle.join().expect("client thread");
        assert!(report.verified);
        assert_eq!(report.negotiated_version, PROTOCOL_VERSION);
    }

    // Each store converged on its own union; the default store is untouched.
    assert_eq!(store_a.len(), 4_000);
    assert_eq!(store_b.len(), 4_000);
    assert!(pool_a[..15].iter().all(|&e| store_a.contains(e)));
    assert!(pool_b[..25].iter().all(|&e| store_b.contains(e)));

    // Per-store stats add up to the server-wide stats. Shut down first:
    // joining the workers guarantees every session's counters are folded.
    let total = server.shutdown();
    let alpha = registry.get("alpha").unwrap().stats().snapshot();
    let beta = registry.get("beta").unwrap().stats().snapshot();
    let default = registry.get("").unwrap().stats().snapshot();
    assert_eq!(alpha.sessions_started, 2);
    assert_eq!(alpha.sessions_completed, 2);
    assert_eq!(beta.sessions_started, 2);
    assert_eq!(beta.sessions_completed, 2);
    assert_eq!(default.sessions_started, 0);
    assert!(alpha.elements_received >= 15);
    assert!(beta.elements_received >= 25);
    assert_eq!(total.sessions_completed, 4);
    assert_eq!(
        total.rounds,
        alpha.rounds + beta.rounds + default.rounds,
        "global rounds are the sum of the per-store rounds"
    );
    assert_eq!(
        total.bytes_in,
        alpha.bytes_in + beta.bytes_in + default.bytes_in
    );
}

#[test]
fn v1_v2_downgrade_handshake() {
    let pool = distinct_keys(2_000, 0xD0D0);
    let (alice_set, bob_set) = two_sided_pair(&pool, 20);

    // A legacy v1 client against a v2 server: negotiates down to 1 and
    // reconciles on the default store.
    {
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig::default(),
        )
        .expect("bind");
        let config = ClientConfig::builder()
            .protocol_version(1)
            .known_d(20)
            .seed(5)
            .build();
        let report = sync(server.local_addr(), &alice_set, &config).expect("v1 client sync");
        assert!(report.verified);
        assert_eq!(report.negotiated_version, 1);
        server.shutdown();
    }

    // A v2 client (with pipelining requested) against a v1-only server:
    // negotiates down to 1, silently drops pipelining, still reconciles.
    {
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig {
                protocol_version: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let config = ClientConfig::builder()
            .known_d(20)
            .seed(5)
            .pipeline(Pipeline::Depth(3))
            .build();
        let report = sync(server.local_addr(), &alice_set, &config).expect("downgraded sync");
        assert!(report.verified);
        assert_eq!(report.negotiated_version, 1);
        assert_eq!(
            report.round_trips, report.rounds,
            "pipelining must be disabled on a v1 session"
        );
        server.shutdown();
    }

    // A v2 client that *requires* a named store aborts on the downgrade
    // instead of silently syncing against the default store.
    {
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig {
                protocol_version: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let config = ClientConfig::builder().store("alpha").known_d(20).build();
        match sync(server.local_addr(), &alice_set, &config) {
            Err(NetError::Protocol(msg)) => assert!(msg.contains("route store"), "{msg}"),
            other => panic!("expected downgrade refusal, got {other:?}"),
        }
        server.shutdown();
    }

    // A v2 server refuses an unknown store by name with the dedicated
    // error code.
    {
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig::default(),
        )
        .expect("bind");
        let config = ClientConfig::builder().store("nope").known_d(20).build();
        match sync(server.local_addr(), &alice_set, &config) {
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, pbs_net::frame::ErrorCode::UnknownStore)
            }
            other => panic!("expected unknown-store refusal, got {other:?}"),
        }
        server.shutdown();
    }
}

#[test]
fn adaptive_pipeline_matches_the_best_fixed_depth_at_d_1000() {
    // The `--pipeline auto` acceptance criterion: on the d = 1000 loopback
    // run, the adaptive controller (start at the grant, deepen on clean
    // trips, back off on mostly-failed ones) must complete in no more
    // round trips than the best fixed depth in {1, 2, 3, 4} on the same
    // seed. Everything here is deterministic for a fixed seed, so this is
    // an exact pin, not a statistical one.
    let d = 1000usize;
    let pool = distinct_keys(100_000 + d / 2, 0xADA_971E);
    let (alice_set, bob_set) = two_sided_pair(&pool, d);
    let truth: Vec<u64> = sorted(
        pool[..d.div_ceil(2)]
            .iter()
            .chain(&pool[100_000 - d / 2 + d.div_ceil(2)..])
            .copied()
            .collect(),
    );
    let seed = 0xAD_A901u64;

    let run = |pipeline: u32, auto: bool| {
        let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig::default(),
        )
        .expect("bind");
        let config = ClientConfig::builder()
            .seed(seed)
            .pipeline(if auto {
                Pipeline::Auto
            } else {
                Pipeline::Depth(pipeline)
            })
            .build();
        let report = sync(server.local_addr(), &alice_set, &config).expect("sync");
        assert!(report.verified, "pipeline={pipeline} auto={auto}");
        assert_eq!(sorted(report.recovered.clone()), truth);
        server.shutdown();
        report
    };

    let fixed_trips: Vec<u32> = [1u32, 2, 3, 4]
        .iter()
        .map(|&k| run(k, false).round_trips)
        .collect();
    let auto = run(1, true);
    let best = *fixed_trips.iter().min().expect("four runs");
    assert!(
        auto.round_trips <= best,
        "auto took {} trips; fixed depths took {:?}",
        auto.round_trips,
        fixed_trips
    );
    // And it must genuinely beat the unpipelined protocol.
    assert!(auto.round_trips < fixed_trips[0]);
}

#[test]
fn delta_requests_downgrade_cleanly() {
    let pool = distinct_keys(2_000, 0xD317A);
    let (alice_set, bob_set) = two_sided_pair(&pool, 20);

    // A client pinned below v3 refuses a delta request locally.
    {
        let config = ClientConfig::builder()
            .protocol_version(2)
            .delta_epoch(4)
            .build();
        match sync("127.0.0.1:1", &alice_set, &config) {
            Err(NetError::Protocol(msg)) => assert!(msg.contains("v3"), "{msg}"),
            other => panic!("expected local refusal, got {other:?}"),
        }
    }

    // A v3 client with an epoch cache against a v2-pinned server: the
    // negotiated session has no delta semantics, so the sync silently
    // falls back to a full reconciliation with no epoch baseline.
    {
        let store = Arc::new(MutableStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig {
                protocol_version: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let config = ClientConfig::builder()
            .delta_epoch(0)
            .known_d(20)
            .seed(5)
            .build();
        let report = sync(server.local_addr(), &alice_set, &config).expect("downgraded sync");
        assert!(report.verified);
        assert_eq!(report.negotiated_version, 2);
        assert!(report.delta_fallback);
        assert!(report.delta.is_none());
        assert_eq!(report.epoch, None, "v2 sessions carry no epoch ack");
        let stats = server.shutdown();
        // The downgrade never reached the delta machinery.
        assert_eq!(stats.delta_sessions + stats.delta_fallbacks, 0);
    }

    // On a full v3 session against an epoch-capable store, even a classic
    // (no-epoch-cache) sync receives the epoch baseline in its ack.
    {
        let store = Arc::new(MutableStore::new(bob_set.iter().copied()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&store) as Arc<_>,
            ServerConfig::default(),
        )
        .expect("bind");
        let config = ClientConfig::builder().known_d(20).seed(6).build();
        let report = sync(server.local_addr(), &alice_set, &config).expect("v3 sync");
        assert!(report.verified);
        assert_eq!(report.negotiated_version, PROTOCOL_VERSION);
        assert_eq!(report.epoch, Some(0), "baseline = the snapshot epoch");
        assert!(report.delta.is_none() && !report.delta_fallback);
        server.shutdown();
    }
}

#[test]
fn pipeline_depth_is_negotiated_down_to_the_server_cap() {
    // A client asking for depth 8 against a server capped at 2 must not be
    // refused mid-session: the handshake grants 2 and the sync proceeds at
    // that depth.
    let pool = distinct_keys(3_000, 0xCA9);
    let (alice_set, bob_set) = two_sided_pair(&pool, 30);
    let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            max_pipeline_depth: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let config = ClientConfig::builder()
        .known_d(30)
        .seed(9)
        .pipeline(Pipeline::Depth(8))
        .build();
    let report = sync(server.local_addr(), &alice_set, &config).expect("negotiated sync");
    assert!(report.verified);
    // Depth 2 granted: every full trip carries exactly two rounds.
    assert_eq!(report.rounds.div_ceil(2), report.round_trips);
    assert!(report.round_trips < report.rounds || report.rounds == 1);
    server.shutdown();
}

#[test]
fn mutable_store_feeds_sessions_between_mutations() {
    // A MutableStore-backed server: reconcile, mutate the store from the
    // server side, reconcile again — the second session sees the new
    // epoch's set, and the changelog reports both the local mutation and
    // the client's final transfer.
    let pool = distinct_keys(3_000, 0xFACE);
    let (alice_set, bob_set) = two_sided_pair(&pool, 20);
    let store = Arc::new(MutableStore::new(bob_set.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind");
    let config = ClientConfig::builder().known_d(20).seed(11).build();
    let report = sync(server.local_addr(), &alice_set, &config).expect("first sync");
    assert!(report.verified);
    let epoch_after_first = store.epoch();
    assert!(epoch_after_first >= 1, "final transfer bumps the epoch");

    // Server-side mutation between sessions: drop 10 elements.
    let removed: Vec<u64> = bob_set[..10].to_vec();
    store.apply(&[], &removed);
    let changes = store.changes_since(epoch_after_first).expect("log intact");
    assert_eq!(changes.len(), 1);
    assert_eq!(changes[0].removed.len(), 10);

    // The next session reconciles against the mutated set: a client
    // holding the full union sees exactly the removed elements as the
    // difference.
    let report2 = sync(
        server.local_addr(),
        &pool,
        &ClientConfig::builder().known_d(10).seed(12).build(),
    )
    .expect("second sync");
    assert!(report2.verified);
    assert_eq!(sorted(report2.recovered.clone()), sorted(removed));
    server.shutdown();
}

#[test]
fn server_round_cap_refuses_marathon_sessions() {
    // A deliberately under-parameterized client (known_d = 1 against 60
    // real differences) needs many split rounds; a server capped at 2
    // rounds refuses it with the round-limit error code.
    let pool = distinct_keys(2_000, 0xFEED);
    let (alice_set, bob_set) = two_sided_pair(&pool, 60);
    let store = Arc::new(InMemoryStore::new(bob_set.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig {
            round_cap: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let config = ClientConfig::builder().known_d(1).seed(3).build();
    match sync(server.local_addr(), &alice_set, &config) {
        Err(NetError::Remote { code, .. }) => {
            assert_eq!(code, pbs_net::frame::ErrorCode::RoundLimit)
        }
        Ok(report) => assert!(
            report.verified && report.rounds <= 2,
            "under-parameterized sync unexpectedly finished in {} rounds",
            report.rounds
        ),
        Err(other) => panic!("expected round-limit refusal, got {other:?}"),
    }
    server.shutdown();
}
