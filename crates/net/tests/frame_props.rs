//! Wire-robustness properties of the frame codec.
//!
//! Every frame type must round-trip bit-exactly through
//! `write_frame`/`read_frame`, and *no* input — truncated, bit-flipped,
//! oversized, or plain garbage — may panic a decoder: hostile bytes map to
//! errors, not crashes.

use bch::Sketch;
use pbs_core::messages::{BinInfo, GroupReport, GroupReportBody, GroupSketch};
use pbs_core::wire;
use pbs_net::frame::{
    read_frame, write_frame, ErrorCode, EstimatorMsg, Frame, Hello, DEFAULT_MAX_FRAME,
};
use pbs_net::NetError;
use proptest::prelude::*;

/// Build a sketch with `t` in-field syndromes for degree `m` from raw words.
fn sketch(m: u32, words: &[u64]) -> Sketch {
    let width = m.div_ceil(8) as usize;
    let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let mut bytes = Vec::with_capacity(words.len() * width);
    for &w in words {
        bytes.extend_from_slice(&(w & mask).to_le_bytes()[..width]);
    }
    Sketch::from_bytes(&bytes, m).expect("masked syndromes are in-field")
}

fn sketches_frame(m: u32, sessions: &[u64], words: &[u64]) -> Frame {
    let batch = sessions
        .iter()
        .enumerate()
        .map(|(i, &s)| GroupSketch {
            session: s,
            round: (i as u32) % 7 + 1,
            sketch: sketch(m, words),
            needs_checksum: i % 2 == 0,
        })
        .collect();
    Frame::Sketches { m, batch }
}

fn reports_frame(bins: &[(u64, u64)], with_failure: bool) -> Frame {
    let mut reports = vec![
        GroupReport {
            session: 3,
            body: GroupReportBody::Decoded {
                bins: bins
                    .iter()
                    .map(|&(p, x)| BinInfo {
                        position: p & 0xFFFF_FFFF,
                        xor_sum: x,
                    })
                    .collect(),
                checksum: Some(0xC0FFEE),
            },
        },
        GroupReport {
            session: u64::MAX,
            body: GroupReportBody::Decoded {
                bins: Vec::new(),
                checksum: None,
            },
        },
    ];
    if with_failure {
        reports.push(GroupReport {
            session: 9,
            body: GroupReportBody::DecodeFailed,
        });
    }
    Frame::Reports(reports)
}

fn round_trip(frame: &Frame) -> Frame {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame, DEFAULT_MAX_FRAME).expect("write");
    let (back, consumed) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).expect("read");
    assert_eq!(consumed, buf.len() as u64);
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_frames_round_trip(
        version in 1u16..=u16::MAX,
        universe_bits in 8u8..=64,
        delta in 1u32..1000,
        seed in any::<u64>(),
        known_d in any::<u64>(),
        success_millionths in 0u64..1_000_000,
        store in prop::collection::vec(32u8..127, 0..64),
        pipeline in 1u8..=255,
        has_epoch in any::<bool>(),
        epoch in any::<u64>(),
    ) {
        let delta_epoch = has_epoch.then_some(epoch);
        let hello = Hello {
            version,
            universe_bits,
            delta,
            target_rounds: delta % 7 + 1,
            max_rounds: delta % 11 + 1,
            target_success: success_millionths as f64 / 1e6,
            estimator_sketches: delta % 256 + 1,
            seed,
            known_d,
            // The store/pipeline fields only exist on the wire for v2+
            // shapes and the delta epoch for v3+: older shapes must
            // round-trip the missing fields to their defaults.
            store: String::from_utf8(store).unwrap(),
            pipeline,
            delta_epoch,
        };
        let frame = Frame::Hello(hello.clone());
        let mut expect = hello;
        if expect.version < 3 {
            expect.delta_epoch = None;
        }
        if expect.version < 2 {
            expect.store = String::new();
            expect.pipeline = 1;
        }
        prop_assert_eq!(round_trip(&frame), Frame::Hello(expect));
    }

    #[test]
    fn delta_frames_round_trip(
        epoch in any::<u64>(),
        added in prop::collection::vec(any::<u64>(), 0..80),
        removed in prop::collection::vec(any::<u64>(), 0..80),
    ) {
        let batch = Frame::DeltaBatch { epoch, added, removed };
        prop_assert_eq!(round_trip(&batch), batch);
        let done = Frame::DeltaDone { epoch };
        prop_assert_eq!(round_trip(&done), done);
        let resync = Frame::FullResyncRequired { epoch };
        prop_assert_eq!(round_trip(&resync), resync);
    }

    #[test]
    fn delta_chunking_is_lossless(
        epoch in any::<u64>(),
        added in prop::collection::vec(any::<u64>(), 0..200),
        removed in prop::collection::vec(any::<u64>(), 0..200),
        capacity in 1usize..50,
    ) {
        let frames = pbs_net::frame::delta_batch_frames(epoch, &added, &removed, capacity);
        let mut got_added = Vec::new();
        let mut got_removed = Vec::new();
        for frame in &frames {
            let decoded = round_trip(frame);
            let Frame::DeltaBatch { epoch: e, added: a, removed: r } = decoded else {
                panic!("chunking produced a non-DeltaBatch frame");
            };
            prop_assert_eq!(e, epoch);
            prop_assert!(a.len() + r.len() <= capacity);
            got_added.extend(a);
            got_removed.extend(r);
        }
        prop_assert_eq!(got_added, added);
        prop_assert_eq!(got_removed, removed);
    }

    #[test]
    fn estimator_frames_round_trip(
        bank in prop::collection::vec(any::<u8>(), 0..600),
        d_param in any::<u64>(),
        d_hat_millionths in 0u64..u32::MAX as u64,
    ) {
        let f1 = Frame::EstimatorExchange(EstimatorMsg::TowBank(bank));
        prop_assert_eq!(round_trip(&f1), f1.clone());
        let f2 = Frame::EstimatorExchange(EstimatorMsg::Estimate {
            d_param,
            d_hat: d_hat_millionths as f64 / 1e6,
        });
        prop_assert_eq!(round_trip(&f2), f2);
    }

    #[test]
    fn sketches_frames_round_trip(
        m in 3u32..=32,
        sessions in prop::collection::vec(any::<u64>(), 0..40),
        words in prop::collection::vec(any::<u64>(), 0..25),
    ) {
        let frame = sketches_frame(m, &sessions, &words);
        prop_assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn reports_and_done_frames_round_trip(
        bins in prop::collection::vec((any::<u64>(), any::<u64>()), 0..60),
        with_failure in any::<bool>(),
        elements in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let reports = reports_frame(&bins, with_failure);
        prop_assert_eq!(round_trip(&reports), reports);
        let done = Frame::Done(elements);
        prop_assert_eq!(round_trip(&done), done);
    }

    #[test]
    fn error_frames_round_trip(code in 1u8..=7, msg in prop::collection::vec(32u8..127, 0..120)) {
        let frame = Frame::Error {
            code: match code {
                1 => ErrorCode::BadMagic,
                2 => ErrorCode::Version,
                3 => ErrorCode::BadConfig,
                4 => ErrorCode::Protocol,
                5 => ErrorCode::RoundLimit,
                6 => ErrorCode::Decode,
                _ => ErrorCode::Internal,
            },
            message: String::from_utf8(msg).unwrap(),
        };
        // `Error` arrives as `NetError::Remote` through a `FramedStream`,
        // but the raw codec round-trips it like any other frame.
        prop_assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn truncated_frames_are_rejected(
        elements in prop::collection::vec(any::<u64>(), 0..50),
        keep_fraction in 0u32..100,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Done(elements), DEFAULT_MAX_FRAME).unwrap();
        let keep = (wire.len() - 1) * keep_fraction as usize / 100;
        prop_assert!(read_frame(&mut &wire[..keep], DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn corrupted_frames_are_rejected(
        sessions in prop::collection::vec(any::<u64>(), 1..20),
        words in prop::collection::vec(any::<u64>(), 1..10),
        at_fraction in 0u32..100,
        flip in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &sketches_frame(11, &sessions, &words),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        let at = wire.len() * at_fraction as usize / 100;
        wire[at] ^= flip;
        // Any single-byte change is caught: in the body by the CRC, in the
        // header by the CRC or the length bound. (Never a panic, never a
        // silently different frame.)
        prop_assert!(read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn hostile_length_prefixes_are_bounded(len in any::<u32>(), crc in any::<u32>()) {
        let max = 4096u32;
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&crc.to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        match read_frame(&mut wire.as_slice(), max) {
            Err(NetError::Frame(pbs_net::FrameError::TooLarge { len: l, max: m })) => {
                prop_assert!(l > m);
            }
            Err(_) => {} // short read / bad CRC / bad type — all fine
            Ok(_) => prop_assert!(false, "hostile header decoded to a frame"),
        }
    }

    #[test]
    fn garbage_never_panics_any_decoder(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // The return values are irrelevant; the property is "no panic".
        let _ = Frame::decode_body(&bytes);
        let _ = wire::decode_sketches(&bytes);
        let _ = wire::decode_reports(&bytes);
        let _ = read_frame(&mut bytes.as_slice(), 256);
        let _ = estimator::TowEstimator::from_bytes(&bytes);
        let _ = Sketch::from_bytes(&bytes, 11);
    }
}
