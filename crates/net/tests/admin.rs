//! Admin-endpoint integration tests: a live server is scraped over real
//! sockets and the rendered `/metrics` must reconcile *exactly* with the
//! [`ServerStats`] snapshot and the client-side wire-byte ledgers — the
//! telemetry layer is only trustworthy if it never drifts from the
//! counters the protocol tests already pin down.
//!
//! Covered here:
//! * `/metrics` after a batch of full reconciliations: every one of the
//!   21 `pbs_server_*_total` counters equals its snapshot field, the
//!   per-store `pbs_store_*{store="default"}` mirror agrees, and
//!   `bytes_in`/`bytes_out` equal the sums of the clients' own
//!   `SyncReport` byte ledgers;
//! * `/metrics` after a subscription push: the push counters move, the
//!   server's `bytes_out` delta equals the subscriber's received-byte
//!   ledger, and the phase/push-dispatch histograms carry the sessions;
//! * `/healthz` flips `200 ok` → `503 draining` when the server shuts
//!   down (the admin listener outlives the drain);
//! * `/stats.json` and 404/405 routing;
//! * the documentation lint: every metric family a fully-populated server
//!   registers is documented in `docs/OBSERVABILITY.md`.

use pbs_net::admin::{snapshot_fields, AdminServer, AdminState};
use pbs_net::server::{Server, ServerConfig, StatsSnapshot};
use pbs_net::store::StoreOptions;
use pbs_net::wal::DurableOptions;
use pbs_net::{StoreRegistry, SyncClient};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pbs_admin_{tag}_{}_{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One blocking HTTP/1.0 request; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    assert!(
        head.contains(&format!("Content-Length: {}", body.len())),
        "Content-Length must match the body"
    );
    (status, body.to_string())
}

/// Parse Prometheus text exposition into `name{labels}` → value.
fn parse_metrics(body: &str) -> HashMap<String, f64> {
    body.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("sample line");
            (
                name.to_string(),
                value.parse::<f64>().expect("sample value"),
            )
        })
        .collect()
}

/// Block until the server has reaped every started session (counters are
/// folded at reap time, so only a quiescent server reconciles exactly).
fn settle(server: &Server, started: u64) -> StatsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = server.stats().snapshot();
        if s.sessions_started == started && s.sessions_completed + s.sessions_failed == started {
            return s;
        }
        assert!(
            Instant::now() < deadline,
            "sessions failed to settle: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn counter(metrics: &HashMap<String, f64>, key: &str) -> u64 {
    *metrics.get(key).unwrap_or_else(|| {
        panic!("metric {key} missing from /metrics");
    }) as u64
}

#[test]
fn metrics_reconcile_with_stats_snapshot_and_wire_ledger() {
    let root = tempdir("reconcile");
    let registry = Arc::new(StoreRegistry::new());
    registry.set_persistence_root(&root);
    let (store, _recovery) = registry
        .register_durable("", DurableOptions::default(), StoreOptions::default())
        .expect("open durable store");
    store.apply(&(2..=100u64).collect::<Vec<_>>(), &[]);

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            // Keep keepalive pings out of the byte accounting.
            keepalive: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let admin = AdminServer::bind("127.0.0.1:0", AdminState::of(&server)).expect("bind admin");

    // ---- Phase A: full reconciliations, scraped and reconciled ----
    let client = SyncClient::connect(server.local_addr()).expect("resolve");
    let mut ledger_sent = 0u64;
    let mut ledger_received = 0u64;
    for salt in 0..3u64 {
        let alice: Vec<u64> = (1..=99).map(|e| e + salt).collect();
        let report = client.sync(&alice).expect("sync");
        assert!(report.verified);
        assert!(report.phases.total >= report.phases.rounds);
        ledger_sent += report.bytes_sent;
        ledger_received += report.bytes_received;
    }
    let snap = settle(&server, 3);
    let (status, body) = http_get(admin.local_addr(), "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        settle(&server, 3),
        snap,
        "server must be quiescent across the scrape"
    );
    let metrics = parse_metrics(&body);

    // Every snapshot counter appears verbatim, globally and per store.
    for (name, value) in snapshot_fields(&snap) {
        assert_eq!(
            counter(&metrics, &format!("pbs_server_{name}_total")),
            value,
            "pbs_server_{name}_total"
        );
        assert_eq!(
            counter(
                &metrics,
                &format!("pbs_store_{name}_total{{store=\"default\"}}")
            ),
            value,
            "single-store server: the store mirror must agree on {name}"
        );
    }
    // The server's wire counters equal the clients' own ledgers.
    assert_eq!(snap.bytes_in, ledger_sent, "client sent == server received");
    assert_eq!(
        snap.bytes_out, ledger_received,
        "server sent == client received"
    );

    // Phase histograms carried every session.
    for phase in ["handshake", "estimate", "rounds"] {
        assert_eq!(
            counter(
                &metrics,
                &format!("pbs_server_phase_seconds_count{{phase=\"{phase}\"}}")
            ),
            3,
            "phase {phase}"
        );
    }
    assert_eq!(counter(&metrics, "pbs_server_session_seconds_count"), 3);
    // Store-level gauges and timers registered and carry data.
    assert_eq!(
        counter(&metrics, "pbs_store_elements{store=\"default\"}"),
        store.len() as u64
    );
    assert!(counter(&metrics, "pbs_store_apply_seconds_count{store=\"default\"}") >= 1);
    assert!(
        counter(
            &metrics,
            "pbs_store_wal_append_seconds_count{store=\"default\"}"
        ) >= 1
    );

    // ---- Phase B: a subscription push, scraped again ----
    let mut sub = client.subscribe(store.epoch()).expect("subscribe");
    sub.next().expect("catch-up").expect("catch-up ok");
    // The first mutation may race the server's Subscribe processing and be
    // served by the catch-up (correctly not a push dispatch); once its
    // report arrives the session is provably Streaming, so the second
    // mutation must flow through the live push path and be timed.
    store.apply(&[777_777], &[]);
    let report = sub.next().expect("push").expect("push ok");
    assert_eq!(report.added, vec![777_777]);
    store.apply(&[888_888], &[]);
    let report = sub.next().expect("push").expect("push ok");
    assert_eq!(report.added, vec![888_888]);
    let sub_received = sub.bytes_received();
    drop(sub);

    let snap2 = settle(&server, 4);
    let (status, body) = http_get(admin.local_addr(), "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_metrics(&body);
    assert_eq!(counter(&metrics, "pbs_server_subscriptions_total"), 1);
    assert_eq!(
        counter(&metrics, "pbs_server_push_elements_total"),
        snap2.push_elements
    );
    assert!(snap2.push_batches >= 1);
    assert_eq!(
        snap2.bytes_out - snap.bytes_out,
        sub_received,
        "push-path bytes must match the subscriber's ledger"
    );
    assert_eq!(
        counter(
            &metrics,
            "pbs_server_phase_seconds_count{phase=\"delta_catchup\"}"
        ),
        1
    );
    assert!(counter(&metrics, "pbs_server_push_dispatch_seconds_count") >= 1);

    // ---- Routing and the stats.json view ----
    let (status, body) = http_get(admin.local_addr(), "/stats.json");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"server\":{\"sessions_started\":4,"));
    assert!(body.contains("\"stores\":{\"\":{\"sessions_started\":4,"));
    let (status, _) = http_get(admin.local_addr(), "/nope");
    assert_eq!(status, 404);
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // ---- Drain: /healthz flips while the admin listener stays up ----
    server.shutdown();
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 503);
    assert_eq!(body, "draining\n");
    admin.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Scraping `/metrics` *while* sessions are in flight: every scrape is a
/// consistent-enough view — counters only ever move forward, and
/// `started >= completed + failed` in every sample (sessions are counted
/// started before they are reaped) — and once the load drains the
/// counters reconcile exactly. This is the invariant a dashboard polling
/// a loaded server depends on; the load harness leans on the same
/// counters for its own accounting.
#[test]
fn concurrent_scrapes_reconcile_under_load() {
    const THREADS: usize = 12;
    const SYNCS_PER_THREAD: usize = 4;

    let base: Vec<u64> = (1..=400u64).collect();
    let store = Arc::new(pbs_net::store::MutableStore::new(base.iter().copied()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&store) as Arc<_>,
        ServerConfig::default(),
    )
    .expect("bind server");
    let admin = AdminServer::bind("127.0.0.1:0", AdminState::of(&server)).expect("bind admin");
    let addr = server.local_addr();

    let done = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let done = Arc::clone(&done);
            let base = base.clone();
            std::thread::spawn(move || {
                for i in 0..SYNCS_PER_THREAD {
                    // A small subset of the server's set: d is exactly
                    // the handful of dropped elements and nothing is
                    // pushed, so the store never mutates under the
                    // scrapes.
                    let drop_from = (t * SYNCS_PER_THREAD + i) * 7 % 350;
                    let local: Vec<u64> = base
                        .iter()
                        .copied()
                        .filter(|e| !(drop_from as u64..drop_from as u64 + 6).contains(e))
                        .collect();
                    let report = SyncClient::connect(addr)
                        .expect("resolve")
                        .sync(&local)
                        .expect("sync under scrape load");
                    assert!(report.verified);
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    // Scrape continuously while the load runs: monotone counters, the
    // accounting inequality in every sample.
    let mut scrapes = 0u64;
    let (mut last_started, mut last_completed, mut last_failed) = (0u64, 0u64, 0u64);
    loop {
        let finished = done.load(Ordering::SeqCst) == THREADS;
        let (status, body) = http_get(admin.local_addr(), "/metrics");
        assert_eq!(status, 200);
        let metrics = parse_metrics(&body);
        let started = counter(&metrics, "pbs_server_sessions_started_total");
        let completed = counter(&metrics, "pbs_server_sessions_completed_total");
        let failed = counter(&metrics, "pbs_server_sessions_failed_total");
        assert!(
            started >= last_started && completed >= last_completed && failed >= last_failed,
            "a counter moved backwards across scrapes: \
             started {last_started}→{started}, completed {last_completed}→{completed}, \
             failed {last_failed}→{failed}"
        );
        assert!(
            started >= completed + failed,
            "scrape {scrapes}: {started} started < {completed} completed + {failed} failed"
        );
        (last_started, last_completed, last_failed) = (started, completed, failed);
        scrapes += 1;
        if finished {
            break;
        }
    }
    for worker in workers {
        worker.join().expect("sync thread");
    }
    assert!(
        scrapes >= 3,
        "the load finished before the scrapes overlapped"
    );

    // Drained: the counters settle to the exact identity.
    let total = (THREADS * SYNCS_PER_THREAD) as u64;
    let snap = settle(&server, total);
    assert_eq!(snap.sessions_failed, 0);
    let (_, body) = http_get(admin.local_addr(), "/metrics");
    let metrics = parse_metrics(&body);
    assert_eq!(
        counter(&metrics, "pbs_server_sessions_started_total"),
        total
    );
    assert_eq!(
        counter(&metrics, "pbs_server_sessions_completed_total")
            + counter(&metrics, "pbs_server_sessions_failed_total"),
        total,
        "the drained scrape must reconcile exactly"
    );

    server.shutdown();
    admin.shutdown();
}

/// Documentation lint (the CI leg that keeps `docs/OBSERVABILITY.md`
/// honest): spin up a server whose store exercises every registration
/// path — durable store, so the WAL/recovery families exist too — and
/// assert each registered family name appears in the catalog.
#[test]
fn every_registered_metric_family_is_documented() {
    let root = tempdir("catalog");
    let registry = Arc::new(StoreRegistry::new());
    registry.set_persistence_root(&root);
    let (store, _recovery) = registry
        .register_durable("", DurableOptions::default(), StoreOptions::default())
        .expect("open durable store");
    store.apply(&(1..=50u64).collect::<Vec<_>>(), &[]);
    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig::default(),
    )
    .expect("bind server");
    // One sync so the lint covers a registry in its steady serving state
    // (families register at bind/attach time, but this guards against any
    // family that would only appear lazily).
    let alice: Vec<u64> = (1..=49).collect();
    SyncClient::connect(server.local_addr())
        .expect("resolve")
        .sync(&alice)
        .expect("sync");

    let doc_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/OBSERVABILITY.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let families = server.metrics().families();
    assert!(!families.is_empty(), "the server registered no metrics");
    let undocumented: Vec<String> = families
        .into_iter()
        .filter(|family| !doc.contains(family.as_str()))
        .collect();
    assert!(
        undocumented.is_empty(),
        "metric families missing from docs/OBSERVABILITY.md: {undocumented:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
