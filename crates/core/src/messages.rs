//! The wire messages of the PBS protocol.
//!
//! One reconciliation round exchanges two message batches:
//!
//! * Alice → Bob: one [`GroupSketch`] per still-unverified group pair — the
//!   BCH syndrome sketch ξ_A of her parity bitmap (Line 1 of Procedure 2),
//! * Bob → Alice: one [`GroupReport`] per sketch — either the decoded
//!   differing bin positions with their XOR sums and (on first contact) the
//!   group checksum (Line 3 of Procedure 2), or a BCH-decoding-failure flag
//!   (§3.2).
//!
//! Each message knows its own wire size in bits, following the accounting of
//! Formula (1): `t·log n` for the sketch and `log n + log|U|` per reported
//! bin plus `log|U|` for a checksum. The driver feeds these sizes into the
//! [`protocol::Transcript`] so communication overhead is measured, not
//! estimated.

use bch::Sketch;

/// Identifier of a group-pair session.
///
/// Top-level groups get ids `1..=g`; when a group suffers a BCH decoding
/// failure and is split three ways (§3.2), its children get ids derived
/// deterministically from the parent id, so both parties agree on the ids
/// (and on every hash seed derived from them) without any extra
/// communication.
pub type SessionId = u64;

/// Child session ids created by the three-way split of §3.2.
///
/// Ids are derived by hashing `(parent, k)`; the top bit is forced so child
/// ids can never collide with the small integers used for top-level groups,
/// and a 63-bit hash keeps collisions between children of different parents
/// out of practical reach.
pub fn child_sessions(parent: SessionId) -> [SessionId; 3] {
    let child = |k: u64| xhash::derive_seed(parent, 0xC41D_0000 + k) | (1u64 << 63);
    [child(1), child(2), child(3)]
}

/// Alice → Bob: the BCH sketch of one group's parity bitmap for this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSketch {
    /// Which group-pair session this sketch belongs to.
    pub session: SessionId,
    /// Round number (1-based); both sides derive the round's bin-partition
    /// hash function from it (§2.4 requires a fresh hash per round).
    pub round: u32,
    /// The syndrome sketch ξ_A of Alice's parity bitmap.
    pub sketch: Sketch,
    /// `true` when Alice has not yet received `c(B_i)` for this session and
    /// Bob should include it in his report (first round of a session).
    pub needs_checksum: bool,
}

impl GroupSketch {
    /// Wire size in bits: `t · log₂(n+1)` (Formula (1), first term).
    pub fn wire_bits(&self, m: u32) -> u64 {
        self.sketch.wire_bits(m)
    }
}

/// One differing bin, as decoded by Bob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinInfo {
    /// The 1-based bin position (a "bit error position" of §2.2.2).
    pub position: u64,
    /// The XOR sum of Bob's elements hashed to that bin (Procedure 1).
    pub xor_sum: u64,
}

/// The body of Bob's per-session report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupReportBody {
    /// BCH decoding succeeded: the differing bins and, if requested, the
    /// checksum `c(B_i)`.
    Decoded {
        /// Differing bins with Bob-side XOR sums.
        bins: Vec<BinInfo>,
        /// `c(B_i)`, included when Alice flagged `needs_checksum`.
        checksum: Option<u64>,
    },
    /// BCH decoding failed (more than `t` differing bins); both sides must
    /// split this session three ways before the next round (§3.2).
    DecodeFailed,
}

/// Bob → Alice: the decoded report for one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReport {
    /// Which session this report answers.
    pub session: SessionId,
    /// Decoded bins or a failure flag.
    pub body: GroupReportBody,
}

impl GroupReport {
    /// Wire size in bits, following Formula (1): each bin costs
    /// `log₂(n+1) + log|U|` (position + XOR sum), a checksum costs `log|U|`,
    /// and a decode-failure flag costs one byte.
    pub fn wire_bits(&self, m: u32, universe_bits: u32) -> u64 {
        match &self.body {
            GroupReportBody::Decoded { bins, checksum } => {
                let per_bin = (m + universe_bits) as u64;
                let checksum_bits = if checksum.is_some() {
                    universe_bits as u64
                } else {
                    0
                };
                bins.len() as u64 * per_bin + checksum_bits
            }
            GroupReportBody::DecodeFailed => 8,
        }
    }
}

/// Outcome of one round on Alice's side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStatus {
    /// Number of distinct elements recovered (and applied) in this round.
    pub recovered_this_round: usize,
    /// Number of sessions still unverified after this round.
    pub active_sessions: usize,
    /// `true` when every session's checksum has verified — reconciliation is
    /// complete.
    pub all_verified: bool,
    /// Per-group layer reports in the batch that decoded successfully.
    /// Together with [`RoundStatus::layers_failed`] this is the batch's
    /// layer-verification rate — what
    /// [`crate::AliceSession::next_pipeline_depth`] resizes an adaptive
    /// pipeline depth from.
    pub layers_decoded: u32,
    /// Per-group layer reports in the batch whose BCH decode failed.
    pub layers_failed: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_session_ids_are_unique_and_nested() {
        let mut all = std::collections::HashSet::new();
        for parent in 1..=20_000u64 {
            for c in child_sessions(parent) {
                assert!(c > 20_000, "child id {c} collides with a top-level id");
                assert!(all.insert(c), "duplicate child id {c}");
            }
        }
        // Grandchildren stay unique too.
        let grand = child_sessions(child_sessions(7)[2]);
        for g in grand {
            assert!(all.insert(g), "grandchild id collides");
        }
        // Deterministic: both parties derive the same ids.
        assert_eq!(child_sessions(42), child_sessions(42));
    }

    #[test]
    fn sketch_wire_size_is_t_log_n() {
        let sketch = Sketch::zero(13);
        let msg = GroupSketch {
            session: 1,
            round: 1,
            sketch,
            needs_checksum: true,
        };
        assert_eq!(msg.wire_bits(7), 13 * 7);
    }

    #[test]
    fn report_wire_size_follows_formula_one() {
        let report = GroupReport {
            session: 3,
            body: GroupReportBody::Decoded {
                bins: vec![
                    BinInfo {
                        position: 5,
                        xor_sum: 0xAA,
                    },
                    BinInfo {
                        position: 9,
                        xor_sum: 0xBB,
                    },
                ],
                checksum: Some(123),
            },
        };
        // 2 bins × (7 + 32) + 32-bit checksum
        assert_eq!(report.wire_bits(7, 32), 2 * 39 + 32);
        let no_checksum = GroupReport {
            session: 3,
            body: GroupReportBody::Decoded {
                bins: vec![BinInfo {
                    position: 5,
                    xor_sum: 0xAA,
                }],
                checksum: None,
            },
        };
        assert_eq!(no_checksum.wire_bits(7, 32), 39);
        let failed = GroupReport {
            session: 3,
            body: GroupReportBody::DecodeFailed,
        };
        assert_eq!(failed.wire_bits(7, 32), 8);
    }
}
